//! **Slipstream execution mode for CMP-based multiprocessors** — a
//! full-system reproduction of
//! *K. Z. Ibrahim, G. T. Byrd, and E. Rotenberg, "Slipstream Execution
//! Mode for CMP-Based Multiprocessors", HPCA 2003*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`kernel`] — discrete-event simulation kernel and machine
//!   configuration (Table 1 of the paper);
//! * [`prog`] — the kernel DSL for describing parallel scientific
//!   applications as access-pattern programs;
//! * [`mem`] — the memory system: L1/L2 caches, full-map invalidate
//!   directory with transparent loads and self-invalidation, network,
//!   and synchronization controllers;
//! * [`core`] — the slipstream runtime: execution modes, A-R
//!   synchronization, A-stream reduction and recovery, and the machine
//!   runner;
//! * [`workloads`] — the paper's nine benchmarks (Table 2);
//! * [`check`] — correctness and performance tooling: the static
//!   happens-before, lockset, lock-order, and pattern-contract verifier
//!   for generated programs; the static sharing analyzer
//!   ([`check::analyze`], [`check::cross_validate`]) with its
//!   communication bounds and `SP*` lints; and the dynamic
//!   coherence-protocol invariant checker (see
//!   `docs/static-analysis.md`);
//! * [`gen`] — the seeded sharing-pattern program generator and mutation
//!   engine behind the `fuzz` differential-testing binary.
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quick start
//!
//! ```
//! use slipstream::{run, RunSpec, ExecMode};
//! use slipstream::workloads::Sor;
//!
//! let sor = Sor::quick();
//! let single = run(&sor, &RunSpec::new(4, ExecMode::Single));
//! let slip = run(&sor, &RunSpec::new(4, ExecMode::Slipstream));
//! println!(
//!     "single: {} cycles, slipstream: {} cycles ({:.2}x)",
//!     single.exec_cycles,
//!     slip.exec_cycles,
//!     slip.speedup_over(&single)
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

pub use slipstream_check as check;
pub use slipstream_core as core;
pub use slipstream_gen as gen;
pub use slipstream_kernel as kernel;
pub use slipstream_mem as mem;
pub use slipstream_prog as prog;
pub use slipstream_workloads as workloads;

pub use slipstream_core::{
    run, run_sequential, ArSyncMode, ExecMode, MachineConfig, RunResult, RunSpec,
    SlipstreamConfig, StreamRole, TaskBuilderFn, TimeBreakdown, Workload,
};
