//! Randomized fuzzing of the full machine: randomly generated SPMD
//! programs must run to completion in every mode (no protocol deadlock,
//! no lost wakeup) and be bit-for-bit deterministic. Generation uses the
//! in-repo deterministic `SplitMix64`, so every CI run exercises the same
//! kernels and failures reproduce from the seed alone.

use slipstream::kernel::SplitMix64;
use slipstream::prog::{ArrayRef, BarrierId, Layout, LockId, Op, ProgBuilder};
use slipstream::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, TaskBuilderFn, Workload};

/// A randomly shaped (but well-formed) SPMD kernel: every task runs the
/// same phase structure, with phase bodies mixing private work, shared
/// reads of other tasks' blocks, shared writes of its own block, and
/// optional critical sections.
#[derive(Debug, Clone)]
struct FuzzKernel {
    phases: Vec<Phase>,
    lines_per_task: u64,
}

#[derive(Debug, Clone)]
struct Phase {
    reads_from: Vec<u8>, // offsets (in tasks) to read blocks from
    read_lines: u64,
    write_lines: u64,
    compute: u32,
    critical: bool,
}

impl Workload for FuzzKernel {
    fn name(&self) -> &str {
        "fuzz"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let lpt = self.lines_per_task;
        let blocks: Vec<ArrayRef> = (0..ntasks)
            .map(|t| layout.shared_owned(&format!("blk{t}"), lpt * 64, t))
            .collect();
        let phases = self.phases.clone();
        Box::new(move |layout, inst, task| {
            let scratch = layout.private(inst, "scratch", 4 * 64);
            let mut b = ProgBuilder::new();
            for (pi, ph) in phases.iter().enumerate() {
                let blocks = blocks.clone();
                let ph = ph.clone();
                let my = task;
                let n = blocks.len();
                if ph.critical {
                    b.lock(LockId((pi % 3) as u32));
                }
                b.block(move |_, out| {
                    for &d in &ph.reads_from {
                        let src = blocks[(my + d as usize) % n];
                        for l in 0..ph.read_lines.min(lpt) {
                            out.push(Op::load_shared(slipstream::kernel::Addr(
                                src.base().0 + l * 64,
                            )));
                        }
                    }
                    out.push(Op::Compute(ph.compute));
                    for l in 0..ph.write_lines.min(lpt) {
                        out.push(Op::store_shared(slipstream::kernel::Addr(
                            blocks[my].base().0 + l * 64,
                        )));
                    }
                });
                if ph.critical {
                    b.unlock(LockId((pi % 3) as u32));
                }
                // Private scratch traffic between phases.
                b.touch_lines(
                    scratch.base(),
                    4 * 64,
                    64,
                    true,
                    slipstream::prog::Space::Private,
                    2,
                );
                b.barrier(BarrierId(0));
            }
            b.build("fuzz-task")
        })
    }
}

fn random_phase(rng: &mut SplitMix64) -> Phase {
    let reads_from = (0..rng.next_below(3)).map(|_| rng.next_below(4) as u8).collect();
    Phase {
        reads_from,
        read_lines: rng.next_below(24),
        write_lines: rng.next_below(24),
        compute: rng.next_below(400) as u32,
        critical: rng.next_below(2) == 1,
    }
}

fn random_kernel(rng: &mut SplitMix64) -> FuzzKernel {
    let phases = (0..1 + rng.next_below(5)).map(|_| random_phase(rng)).collect();
    FuzzKernel { phases, lines_per_task: 8 + rng.next_below(24) }
}

/// Random kernels complete in every mode without deadlocking (the machine
/// panics on deadlock or non-quiescence) and produce positive, internally
/// consistent results.
#[test]
fn random_kernels_complete_in_all_modes() {
    let mut rng = SplitMix64::new(0xf022);
    for case in 0..24 {
        let k = random_kernel(&mut rng);
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let r = run(&k, &RunSpec::new(2, mode));
            assert!(r.exec_cycles > 0, "case {case}: {mode:?} on {k:?}");
        }
    }
}

/// Random kernels are deterministic under slipstream with every A-R
/// synchronization method.
#[test]
fn random_kernels_are_deterministic() {
    let mut rng = SplitMix64::new(0xd00d);
    for case in 0..24 {
        let k = random_kernel(&mut rng);
        for ar in ArSyncMode::ALL {
            let spec = RunSpec::new(2, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::with_self_invalidation(ar));
            let a = run(&k, &spec);
            let b = run(&k, &spec);
            assert_eq!(a.exec_cycles, b.exec_cycles, "case {case}, {ar:?}: {k:?}");
            assert_eq!(a.mem.net_messages, b.mem.net_messages, "case {case}, {ar:?}");
        }
    }
}
