//! Workspace-level integration tests: the facade crate, the paper's
//! headline behaviours at reduced sizes, and cross-crate invariants.

use slipstream::workloads::{by_name, quick_suite, Sor, WaterNs};
use slipstream::{
    run, run_sequential, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, StreamRole,
};

#[test]
fn facade_reexports_work() {
    let r = run(&Sor::quick(), &RunSpec::new(2, ExecMode::Single));
    assert!(r.exec_cycles > 0);
    assert!(by_name("sor", true).is_some());
}

#[test]
fn single_mode_scales_at_small_node_counts() {
    // Figure 4's left edge: going 1 -> 4 CMPs speeds every kernel up.
    for w in quick_suite() {
        let seq = run_sequential(w.as_ref());
        let four = run(w.as_ref(), &RunSpec::new(4, ExecMode::Single));
        assert!(
            four.exec_cycles < seq.exec_cycles,
            "{}: 4 CMPs ({}) not faster than sequential ({})",
            w.name(),
            four.exec_cycles,
            seq.exec_cycles
        );
    }
}

#[test]
fn slipstream_beats_single_on_sor() {
    // The paper's SOR anchor: slipstream ~14% faster than single mode.
    let sor = Sor::quick();
    let single = run(&sor, &RunSpec::new(4, ExecMode::Single));
    let slip = run(&sor, &RunSpec::new(4, ExecMode::Slipstream));
    let gain = single.exec_cycles as f64 / slip.exec_cycles as f64;
    assert!(gain > 1.05, "slipstream gain over single too small: {gain:.3}");
}

#[test]
fn self_invalidation_helps_migratory_sharing() {
    // §4.3: SI adds speedup for Water-NS over the same-sync prefetch-only
    // configuration.
    let w = WaterNs::quick();
    let ar = ArSyncMode::OneTokenGlobal;
    let pf = run(
        &w,
        &RunSpec::new(4, ExecMode::Slipstream).with_slip(SlipstreamConfig::prefetch_only(ar)),
    );
    let si = run(
        &w,
        &RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ar)),
    );
    assert!(
        si.exec_cycles < pf.exec_cycles,
        "SI ({}) should beat prefetch-only ({}) on Water-NS",
        si.exec_cycles,
        pf.exec_cycles
    );
    assert!(si.mem.si_invalidations > 0, "migratory lines must be self-invalidated");
}

#[test]
fn a_streams_never_define_completion_time() {
    let r = run(&Sor::quick(), &RunSpec::new(2, ExecMode::Slipstream));
    let r_max = r
        .streams
        .iter()
        .filter(|s| s.role == StreamRole::R)
        .map(|s| s.finish)
        .max()
        .expect("has R-streams");
    assert_eq!(r.exec_cycles, r_max);
}

#[test]
fn time_breakdowns_are_consistent() {
    for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
        let r = run(&Sor::quick(), &RunSpec::new(2, mode));
        for s in &r.streams {
            assert!(s.breakdown.total() <= s.finish + 1);
            assert!(s.breakdown.busy > 0);
        }
    }
}

#[test]
fn classification_covers_all_transactions() {
    // Every classified request lands in exactly one bucket; totals are
    // consistent with the request counters.
    let r = run(&Sor::quick(), &RunSpec::new(4, ExecMode::Slipstream));
    let reads = r.mem.class.reads.total();
    assert!(reads > 0);
    let p = r.mem.class.reads.percentages();
    let sum: f64 = p.iter().sum();
    assert!((sum - 100.0).abs() < 1e-6, "read percentages sum to {sum}");
}
