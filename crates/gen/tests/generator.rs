//! Generator self-checks: reproducibility, static cleanliness of every
//! pattern (including the structural contract, rule SC015), and the
//! mutation kill test — every planted bug must be caught by exactly the
//! rule that targets its defect class.

use slipstream_check::{
    analyze_tasks, instantiate_workload, verify_contract, verify_task_set, AnalysisConfig,
    Severity,
};
use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, Workload as _};
use slipstream_gen::corpus::{self, CORPUS_SEED};
use slipstream_gen::{GenWorkload, Mutation, Pattern, PatternSpec};
use slipstream_kernel::SplitMix64;
use slipstream_prog::Op;

const PAGE: u64 = 4096;

fn spec_for(pattern: Pattern, seed: u64) -> PatternSpec {
    PatternSpec::sample(pattern, &mut SplitMix64::new(seed))
}

/// All ops of every program in instantiation order, for equality checks.
fn fingerprint(w: &GenWorkload, ntasks: usize, slipstream: bool) -> Vec<Vec<Op>> {
    let set = instantiate_workload(w, PAGE, ntasks, slipstream);
    set.r
        .iter()
        .chain(&set.a)
        .map(|tp| tp.prog.iter().collect())
        .collect()
}

#[test]
fn generation_is_reproducible_from_seed_and_spec() {
    for (i, p) in Pattern::ALL.into_iter().enumerate() {
        let seed = 0xA5A5_0000 + i as u64;
        let w1 = GenWorkload::new(spec_for(p, seed), seed);
        let w2 = GenWorkload::new(spec_for(p, seed), seed);
        for slipstream in [false, true] {
            assert_eq!(
                fingerprint(&w1, 4, slipstream),
                fingerprint(&w2, 4, slipstream),
                "{}: two instantiations differ (slipstream={slipstream})",
                p.key()
            );
        }
        let other = GenWorkload::new(spec_for(p, seed + 1), seed + 1);
        assert_ne!(
            fingerprint(&w1, 4, false),
            fingerprint(&other, 4, false),
            "{}: different seeds produced identical programs",
            p.key()
        );
    }
}

/// A clean generated program set must be statically spotless: no
/// happens-before, lockset, lock-order, space, or skeleton diagnostics in
/// either instantiation, and no contract violations.
fn assert_clean(w: &GenWorkload, ntasks: usize) {
    for slipstream in [false, true] {
        let set = instantiate_workload(w, PAGE, ntasks, slipstream);
        let diags = verify_task_set(&set);
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{} ({} tasks, slipstream={slipstream}): {:#?}",
            w.name(),
            ntasks,
            diags
        );
        let cd = verify_contract(&set.r, &w.contract(ntasks));
        assert!(
            cd.is_empty(),
            "{} ({} tasks, slipstream={slipstream}): contract violations {:#?}",
            w.name(),
            ntasks,
            cd
        );
    }
}

#[test]
fn every_pattern_is_statically_clean_across_task_counts() {
    for (i, p) in Pattern::ALL.into_iter().enumerate() {
        for (j, base) in [0xBEEF_0000u64, 0xCAFE_0000].into_iter().enumerate() {
            let seed = base + (i * 7 + j) as u64;
            let w = GenWorkload::new(spec_for(p, seed), seed);
            for ntasks in [2usize, 4, 6] {
                assert_clean(&w, ntasks);
            }
        }
    }
}

#[test]
fn committed_corpus_prefix_is_clean() {
    // One full pattern rotation of the committed corpus; the fuzz binary
    // covers all CORPUS_COUNT entries (and the simulation side).
    for i in 0..2 * Pattern::ALL.len() {
        let w = corpus::corpus_entry(CORPUS_SEED, i);
        assert_clean(&w, 4);
    }
}

#[test]
fn every_mutation_is_caught_with_its_expected_rule() {
    for (i, m) in Mutation::ALL.into_iter().enumerate() {
        let w = corpus::mutant_entry(CORPUS_SEED, i);
        assert_eq!(w.mutation(), Some(m));
        let set = instantiate_workload(&w, PAGE, 4, m.needs_slipstream());
        let mut diags = verify_task_set(&set);
        diags.extend(verify_contract(&set.r, &w.contract(4)));
        // The analyzer's SP* lints are part of the kill pipeline too:
        // class-shifting mutations are invisible to the correctness passes.
        diags.extend(analyze_tasks(&set.layout, &set.r, &AnalysisConfig::default()).diagnostics);
        let rule = m.expected_rule();
        let severity = m.expected_severity();
        assert!(
            diags.iter().any(|d| d.rule == rule && d.severity == severity),
            "mutant `{}`: expected {} ({}), got {:?}",
            w.name(),
            rule.id(),
            rule.name(),
            diags.iter().map(|d| d.rule.id()).collect::<Vec<_>>()
        );
    }
}

/// Clean programs must also be *detectably* clean: the mutation kill test
/// only means something if the same pipeline passes the unmutated twin.
#[test]
fn mutant_twins_without_the_mutation_are_clean() {
    for (i, m) in Mutation::ALL.into_iter().enumerate() {
        let mutant = corpus::mutant_entry(CORPUS_SEED, i);
        let twin = GenWorkload::new(mutant.spec().clone(), mutant.seed());
        assert_clean(&twin, 4);
        let _ = m;
    }
}

/// The diverge-laced pattern must actually exercise slipstream's
/// kill/refork path: a slipstream run reports at least one recovery.
#[test]
fn diverge_laced_programs_trigger_recoveries() {
    let seed = 0xD1FE_0001;
    let w = GenWorkload::new(spec_for(Pattern::DivergeLaced, seed), seed);
    let spec = RunSpec::new(2, ExecMode::Slipstream)
        .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal));
    let r = run(&w, &spec);
    assert!(r.recoveries > 0, "expected kill/refork recoveries, got {:?}", r.recoveries);
}
