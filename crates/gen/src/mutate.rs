//! Seeded mutations: one planted bug per generated program.
//!
//! Each [`Mutation`] breaks exactly one discipline a clean generated
//! program upholds, targeting the pattern whose structure makes the bug
//! expressible — and, for the newer rules, makes it *invisible* to the
//! older passes (e.g. [`Mutation::StripLock`] removes a lock around an
//! access the explored schedule still orders, so only the lockset pass
//! SC013 can flag it). The fuzz pipeline and the generator tests assert
//! every mutation is caught with its expected rule, which is what makes
//! the clean corpus's "zero diagnostics" result trustworthy.

use slipstream_check::{Rule, Severity};

use crate::spec::Pattern;

/// One planted defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Remove task 0's last event post: the consumer waits forever.
    DropPost,
    /// Remove task 0's last barrier: everyone else strands there.
    DropBarrier,
    /// Remove task 0's last unlock: the lock leaks (and others starve).
    DropUnlock,
    /// Remove the lock/unlock around task 0's first access to record 0,
    /// keeping the accesses. The explored schedule still orders the
    /// accesses through task 0's later lock releases, so SC001 stays
    /// silent — only the schedule-independent lockset analysis sees it.
    StripLock,
    /// The last task writes task 0's word with no synchronization.
    StealWrite,
    /// Task 0 nests the sync-heavy lock pair in descending order while
    /// everyone else ascends: a cross-task lock-order cycle that the
    /// cooperative schedule never wedges on.
    SwapLockOrder,
    /// Suppress every `DivergeInA` op a diverge-laced spec promises.
    BreakContract,
    /// The last task loads another instance's private scratch region.
    CrossPrivate,
    /// Task 0 loads an address outside every layout region.
    UnmappedLoad,
    /// Shared access addresses shift by 8 bytes on odd (A-stream)
    /// instances: the A/R skeleton diverges.
    SkewAStream,
    /// Each task (up to 8) stores its own word of the read-mostly table's
    /// first line before round 0: every word is still single-writer and
    /// barrier-ordered against the readers (no race, no `SC*` error), but
    /// the line now ping-pongs between writers — a *class shift* only the
    /// sharing analyzer's false-sharing lint (SP001) can see.
    ShareFalsely,
}

impl Mutation {
    /// Every mutation, in a stable order.
    pub const ALL: [Mutation; 11] = [
        Mutation::DropPost,
        Mutation::DropBarrier,
        Mutation::DropUnlock,
        Mutation::StripLock,
        Mutation::StealWrite,
        Mutation::SwapLockOrder,
        Mutation::BreakContract,
        Mutation::CrossPrivate,
        Mutation::UnmappedLoad,
        Mutation::SkewAStream,
        Mutation::ShareFalsely,
    ];

    /// Short stable key used in reports.
    pub fn key(self) -> &'static str {
        match self {
            Mutation::DropPost => "drop-post",
            Mutation::DropBarrier => "drop-barrier",
            Mutation::DropUnlock => "drop-unlock",
            Mutation::StripLock => "strip-lock",
            Mutation::StealWrite => "steal-write",
            Mutation::SwapLockOrder => "swap-lock-order",
            Mutation::BreakContract => "break-contract",
            Mutation::CrossPrivate => "cross-private",
            Mutation::UnmappedLoad => "unmapped-load",
            Mutation::SkewAStream => "skew-a-stream",
            Mutation::ShareFalsely => "share-falsely",
        }
    }

    /// The pattern whose structure this mutation targets.
    pub fn pattern(self) -> Pattern {
        match self {
            Mutation::DropPost | Mutation::UnmappedLoad => Pattern::ProducerConsumer,
            Mutation::DropUnlock | Mutation::StripLock => Pattern::Migratory,
            Mutation::StealWrite => Pattern::FalseSharing,
            Mutation::DropBarrier | Mutation::CrossPrivate | Mutation::SkewAStream => {
                Pattern::ReadMostly
            }
            Mutation::SwapLockOrder => Pattern::SyncHeavy,
            Mutation::BreakContract => Pattern::DivergeLaced,
            Mutation::ShareFalsely => Pattern::ReadMostly,
        }
    }

    /// The static rule that must flag the mutant (at
    /// [`Mutation::expected_severity`]).
    pub fn expected_rule(self) -> Rule {
        match self {
            Mutation::DropPost => Rule::UnbalancedEvents,
            Mutation::DropBarrier => Rule::BarrierMismatch,
            Mutation::DropUnlock => Rule::LeakedLock,
            Mutation::StripLock => Rule::LocksetRace,
            Mutation::StealWrite => Rule::SharedRace,
            Mutation::SwapLockOrder => Rule::LockOrderCycle,
            Mutation::BreakContract => Rule::PatternContract,
            Mutation::CrossPrivate => Rule::PrivateIsolation,
            Mutation::UnmappedLoad => Rule::UnmappedAddress,
            Mutation::SkewAStream => Rule::InstanceDivergence,
            Mutation::ShareFalsely => Rule::FalseSharing,
        }
    }

    /// The severity the expected rule fires with: `Error` for the `SC*`
    /// correctness rules, `Warning` for the analyzer's `SP*` performance
    /// lints (a class-shifted program is still properly synchronized).
    pub fn expected_severity(self) -> Severity {
        match self {
            Mutation::ShareFalsely => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Whether the mutant must be verified under slipstream instantiation
    /// (the defect only exists across R/A instance pairs).
    pub fn needs_slipstream(self) -> bool {
        matches!(self, Mutation::SkewAStream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mutation_targets_a_distinct_rule() {
        let mut rules: Vec<&str> = Mutation::ALL.iter().map(|m| m.expected_rule().id()).collect();
        rules.sort_unstable();
        rules.dedup();
        assert_eq!(rules.len(), Mutation::ALL.len());
    }

    #[test]
    fn all_patterns_are_exercised_by_mutations() {
        for p in Pattern::ALL {
            assert!(
                Mutation::ALL.iter().any(|m| m.pattern() == p),
                "no mutation targets pattern {}",
                p.key()
            );
        }
    }
}
