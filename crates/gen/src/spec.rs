//! Typed pattern specifications.
//!
//! A [`PatternSpec`] fully determines a generated program set given a seed
//! and a task count: the corpus is reproducible from `(seed, spec)` alone.
//! Every spec also knows the structural [`PatternContract`] its programs
//! must satisfy (rule SC015), so the generator is checked against its own
//! declaration, not just against generic race/sync rules.

use slipstream_check::{ContractItem, PatternContract};
use slipstream_kernel::SplitMix64;

/// Coherence line granularity used by all generated patterns (matches the
/// machine configurations' `line_bytes`).
pub const LINE: u64 = 64;

/// The six sharing patterns the generator emits, spanning the axes that
/// drive CMP sharing-miss behaviour: who writes, who reads, at what
/// granularity, and under which synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Neighbour hand-off: each task produces a segment, posts an event,
    /// and consumes the previous task's segment (pairwise flags).
    ProducerConsumer,
    /// Lock-protected records touched read-modify-write by every task in
    /// turn — the classic migratory lines.
    Migratory,
    /// Distinct words of one line written by different tasks: line
    /// ping-pong with no data-level sharing at all.
    FalseSharing,
    /// One rotating writer per phase, everyone else re-reads the table.
    ReadMostly,
    /// A seeded mix of lock phases (nested and single critical sections)
    /// and barrier phases — lock-heavy vs barrier-heavy along one axis.
    SyncHeavy,
    /// Read-mostly laced with `DivergeInA` ops, exercising slipstream's
    /// kill/refork recovery path.
    DivergeLaced,
}

impl Pattern {
    /// All patterns, in corpus round-robin order.
    pub const ALL: [Pattern; 6] = [
        Pattern::ProducerConsumer,
        Pattern::Migratory,
        Pattern::FalseSharing,
        Pattern::ReadMostly,
        Pattern::SyncHeavy,
        Pattern::DivergeLaced,
    ];

    /// Short stable key used in workload names and reports.
    pub fn key(self) -> &'static str {
        match self {
            Pattern::ProducerConsumer => "pc",
            Pattern::Migratory => "mig",
            Pattern::FalseSharing => "fs",
            Pattern::ReadMostly => "rm",
            Pattern::SyncHeavy => "sync",
            Pattern::DivergeLaced => "div",
        }
    }

    /// Inverse of [`Pattern::key`].
    pub fn from_key(key: &str) -> Option<Pattern> {
        Pattern::ALL.into_iter().find(|p| p.key() == key)
    }
}

/// The parameter axes of one generated program set.
///
/// Ranges are deliberately small: generated programs are quick-suite
/// sized so the full differential pipeline (4 modes x 2 engines per
/// program) stays fast enough to run over hundreds of programs in CI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSpec {
    /// Which sharing pattern.
    pub pattern: Pattern,
    /// Outer repetitions of the pattern's phase structure (2..=4).
    pub rounds: u32,
    /// Lines per shared segment/table (1..=3).
    pub lines: u32,
    /// Tasks falsely sharing one line (2..=4; capped at 8 words/line).
    pub sharers: u32,
    /// Lock-protected records / counters (2..=4).
    pub locks: u32,
    /// Percentage of sync-heavy phases that are lock phases (0..=100).
    pub lock_mix_pct: u32,
    /// Re-reads of shared data per round (2..=4).
    pub reads_per_round: u32,
    /// Compute cycles between memory phases (5..=40).
    pub compute: u32,
    /// Wrong-path cycles per `DivergeInA` op (50_000..=200_000 — large
    /// enough that the A-stream reliably falls behind its R-stream within
    /// one session, forcing the kill/refork path).
    pub diverge_cycles: u32,
    /// Private scratch lines per instance (1..=2).
    pub private_lines: u32,
}

fn pick(rng: &mut SplitMix64, lo: u32, hi: u32) -> u32 {
    lo + rng.next_below((hi - lo + 1) as u64) as u32
}

impl PatternSpec {
    /// Samples a spec for `pattern` from `rng`. Every parameter is drawn
    /// even when the pattern ignores it, so the spec (and everything
    /// derived from the same rng afterwards) is stable across patterns.
    pub fn sample(pattern: Pattern, rng: &mut SplitMix64) -> PatternSpec {
        PatternSpec {
            pattern,
            rounds: pick(rng, 2, 4),
            lines: pick(rng, 1, 3),
            sharers: pick(rng, 2, 4),
            locks: pick(rng, 2, 4),
            lock_mix_pct: pick(rng, 0, 100),
            reads_per_round: pick(rng, 2, 4),
            compute: pick(rng, 5, 40),
            diverge_cycles: pick(rng, 50_000, 200_000),
            private_lines: pick(rng, 1, 2),
        }
    }

    /// Number of sync-heavy phases (two per round: the axis runs from
    /// all-barrier to all-lock as `lock_mix_pct` grows).
    pub fn sync_phases(&self) -> u32 {
        self.rounds * 2
    }

    /// How many of the sync-heavy phases are lock phases, given the
    /// per-program phase script seed (see `patterns::phase_script`).
    pub fn lock_phase_count(&self, seed: u64) -> u32 {
        crate::patterns::phase_script(self, seed).iter().filter(|&&l| l).count() as u32
    }

    /// The structural contract programs generated from this spec for
    /// `ntasks` tasks must satisfy (checked as rule SC015). `seed` must be
    /// the same seed the programs were generated from (the sync-heavy
    /// phase script depends on it).
    pub fn contract(&self, seed: u64, ntasks: usize) -> PatternContract {
        let n = ntasks as u64;
        let nu = ntasks;
        let items = match self.pattern {
            Pattern::ProducerConsumer => vec![
                ContractItem::EventHandshakes { total: self.rounds as u64 * n },
                ContractItem::BarriersPerTask { per_task: self.rounds as u64 },
                ContractItem::SingleWriterAddrs,
                ContractItem::SharedLines {
                    min_lines: nu * self.lines as usize,
                    min_tasks: nu.min(2),
                },
            ],
            Pattern::Migratory => {
                let mut items: Vec<ContractItem> = (0..self.locks)
                    .map(|k| ContractItem::LockAcquires {
                        lock: k,
                        total: self.rounds as u64 * n,
                    })
                    .collect();
                items.push(ContractItem::MinLockAcquires {
                    min: self.rounds as u64 * n * self.locks as u64,
                });
                items.push(ContractItem::SharedLines {
                    min_lines: self.locks as usize,
                    min_tasks: nu,
                });
                items.push(ContractItem::BarriersPerTask { per_task: 0 });
                items
            }
            Pattern::FalseSharing => vec![
                ContractItem::FalseSharedLines {
                    min_lines: nu / self.sharers as usize,
                    min_writers: self.sharers as usize,
                },
                ContractItem::SingleWriterAddrs,
                ContractItem::BarriersPerTask { per_task: 2 * self.rounds as u64 },
            ],
            Pattern::ReadMostly => vec![
                ContractItem::SharedLines { min_lines: self.lines as usize, min_tasks: nu },
                ContractItem::BarriersPerTask { per_task: 2 * self.rounds as u64 },
            ],
            Pattern::SyncHeavy => {
                let lock_phases = self.lock_phase_count(seed) as u64;
                let barrier_phases = self.sync_phases() as u64 - lock_phases;
                vec![
                    // Each lock phase: one nested pair + one single
                    // section per counter, per task.
                    ContractItem::MinLockAcquires {
                        min: lock_phases * (2 + self.locks as u64) * n,
                    },
                    ContractItem::BarriersPerTask { per_task: barrier_phases },
                ]
            }
            Pattern::DivergeLaced => vec![
                ContractItem::SharedLines { min_lines: self.lines as usize, min_tasks: nu },
                ContractItem::BarriersPerTask { per_task: 2 * self.rounds as u64 },
                ContractItem::MinDivergeOps { min: 1 },
            ],
        };
        PatternContract { pattern: self.pattern.key().to_string(), line_bytes: LINE, items }
    }

    /// Hand-rolled JSON rendering (workspace convention: no external
    /// dependencies), embedding every axis so `(seed, spec)` reproduces
    /// the program set.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"pattern\":\"{}\",\"rounds\":{},\"lines\":{},\"sharers\":{},\"locks\":{},\
             \"lock_mix_pct\":{},\"reads_per_round\":{},\"compute\":{},\"diverge_cycles\":{},\
             \"private_lines\":{}}}",
            self.pattern.key(),
            self.rounds,
            self.lines,
            self.sharers,
            self.locks,
            self.lock_mix_pct,
            self.reads_per_round,
            self.compute,
            self.diverge_cycles,
            self.private_lines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        for p in Pattern::ALL {
            let a = PatternSpec::sample(p, &mut SplitMix64::new(9));
            let b = PatternSpec::sample(p, &mut SplitMix64::new(9));
            assert_eq!(a, b);
            assert!((2..=4).contains(&a.rounds));
            assert!((1..=3).contains(&a.lines));
            assert!((2..=4).contains(&a.sharers));
            assert!((2..=4).contains(&a.locks));
            assert!(a.lock_mix_pct <= 100);
            assert!((2..=4).contains(&a.reads_per_round));
            assert!((5..=40).contains(&a.compute));
            assert!((50_000..=200_000).contains(&a.diverge_cycles));
            assert!((1..=2).contains(&a.private_lines));
        }
    }

    #[test]
    fn keys_round_trip() {
        for p in Pattern::ALL {
            assert_eq!(Pattern::from_key(p.key()), Some(p));
        }
        assert_eq!(Pattern::from_key("nope"), None);
    }

    #[test]
    fn json_names_the_pattern() {
        let s = PatternSpec::sample(Pattern::Migratory, &mut SplitMix64::new(1));
        let j = s.to_json();
        assert!(j.contains("\"pattern\":\"mig\""));
        assert!(j.contains("\"rounds\":"));
    }
}
