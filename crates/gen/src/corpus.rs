//! The committed corpus: a fixed master seed expanding to a deterministic
//! program list that CI and the differential tests pin against.
//!
//! `(CORPUS_SEED, i)` fully determines program `i`: its per-program seed,
//! its pattern (round-robin over [`Pattern::ALL`]), and its sampled
//! [`PatternSpec`]. Reproduce any corpus entry with
//! `fuzz --seed <CORPUS_SEED> --count <i+1>` or [`corpus_entry`].

use slipstream_kernel::SplitMix64;

use crate::{GenWorkload, Mutation, Pattern, PatternSpec};

/// Master seed of the committed corpus.
pub const CORPUS_SEED: u64 = 0x5119_5EED;

/// Size of the committed corpus: 36 programs per pattern.
pub const CORPUS_COUNT: usize = 216;

/// The per-program seed for corpus entry `i` under `master`.
pub fn program_seed(master: u64, i: usize) -> u64 {
    // SplitMix-style index whitening keeps per-program seeds independent
    // while leaving each reproducible from (master, i) alone.
    SplitMix64::new(master ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// The pattern of corpus entry `i` (round-robin over [`Pattern::ALL`]).
pub fn program_pattern(i: usize) -> Pattern {
    Pattern::ALL[i % Pattern::ALL.len()]
}

/// The spec of corpus entry `i` under `master`.
pub fn program_spec(master: u64, i: usize) -> PatternSpec {
    let mut rng = SplitMix64::new(program_seed(master, i));
    PatternSpec::sample(program_pattern(i), &mut rng)
}

/// Corpus entry `i` under `master`, as a runnable clean workload.
pub fn corpus_entry(master: u64, i: usize) -> GenWorkload {
    GenWorkload::new(program_spec(master, i), program_seed(master, i))
}

/// The first `count` corpus entries under `master`.
pub fn corpus(master: u64, count: usize) -> Vec<GenWorkload> {
    (0..count).map(|i| corpus_entry(master, i)).collect()
}

/// Mutant `i` under `master`: cycles through [`Mutation::ALL`], pairing
/// each mutation with a fresh spec of its target pattern.
pub fn mutant_entry(master: u64, i: usize) -> GenWorkload {
    let m = Mutation::ALL[i % Mutation::ALL.len()];
    // Offset the seed stream so mutants don't alias clean entries.
    let seed = program_seed(master ^ 0x4d55_5441_4e54, i);
    let mut rng = SplitMix64::new(seed);
    let mut spec = PatternSpec::sample(m.pattern(), &mut rng);
    if m == Mutation::SwapLockOrder {
        // The inverted nesting only exists inside lock phases; make sure
        // the sampled phase script contains some.
        spec.lock_mix_pct = 100;
    }
    GenWorkload::mutated(spec, seed, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_core::Workload as _;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus_entry(CORPUS_SEED, 17);
        let b = corpus_entry(CORPUS_SEED, 17);
        assert_eq!(a.spec(), b.spec());
        assert_eq!(a.seed(), b.seed());
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn corpus_spans_all_patterns() {
        let ws = corpus(CORPUS_SEED, Pattern::ALL.len());
        for (w, p) in ws.iter().zip(Pattern::ALL) {
            assert_eq!(w.spec().pattern, p);
            assert!(w.name().starts_with(&format!("gen:{}:", p.key())));
        }
    }

    #[test]
    fn mutants_cycle_all_mutations() {
        for (i, m) in Mutation::ALL.into_iter().enumerate() {
            let w = mutant_entry(CORPUS_SEED, i);
            assert_eq!(w.mutation(), Some(m));
            assert_eq!(w.spec().pattern, m.pattern());
        }
    }
}
