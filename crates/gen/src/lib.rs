//! Seeded sharing-pattern program generator.
//!
//! This crate closes the loop between the DSL, the static verifier
//! (`slipstream-check`), and the simulator: it emits parameterized
//! programs for six canonical CMP sharing patterns — producer-consumer
//! hand-off, migratory records, false sharing, read-mostly tables,
//! lock-heavy vs barrier-heavy synchronization, and diverge-laced
//! slipstream stressors — each fully reproducible from `(seed, spec)`.
//!
//! A [`GenWorkload`] is an ordinary [`Workload`], so generated programs
//! run through the same machine runner as the paper's nine benchmarks.
//! Each one also knows its structural [`PatternContract`]
//! (rule SC015), and can carry one seeded [`Mutation`] — a planted bug
//! the verifier must catch, which is what keeps the clean corpus's
//! "zero diagnostics" result meaningful.
//!
//! The `fuzz` binary in `crates/bench` drives the full differential
//! pipeline: generate, statically verify, simulate every execution mode
//! on both engines, run the checked protocol monitor, and then re-check
//! every mutant.

mod mutate;
mod patterns;
mod spec;

pub mod corpus;

pub use mutate::Mutation;
pub use spec::{Pattern, PatternSpec, LINE};

use slipstream_check::PatternContract;
use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::Layout;

/// One generated program set: a spec, the seed it is instantiated from,
/// and optionally a planted mutation.
pub struct GenWorkload {
    spec: PatternSpec,
    seed: u64,
    mutation: Option<Mutation>,
    name: String,
}

impl GenWorkload {
    /// A clean (mutation-free) generated workload.
    pub fn new(spec: PatternSpec, seed: u64) -> GenWorkload {
        let name = format!("gen:{}:{:08x}", spec.pattern.key(), seed);
        GenWorkload { spec, seed, mutation: None, name }
    }

    /// The same program set with one planted bug. The spec's pattern
    /// should be `mutation.pattern()` — the pattern whose structure the
    /// defect targets.
    pub fn mutated(spec: PatternSpec, seed: u64, mutation: Mutation) -> GenWorkload {
        let name = format!("gen:{}:{:08x}:{}", spec.pattern.key(), seed, mutation.key());
        GenWorkload { spec, seed, mutation: Some(mutation), name }
    }

    /// The spec this workload instantiates.
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The planted mutation, if any.
    pub fn mutation(&self) -> Option<Mutation> {
        self.mutation
    }

    /// The structural contract the generated programs promise to satisfy
    /// for `ntasks` tasks (rule SC015).
    pub fn contract(&self, ntasks: usize) -> PatternContract {
        self.spec.contract(self.seed, ntasks)
    }
}

impl Workload for GenWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        patterns::instantiate(self.spec.clone(), self.seed, self.mutation, ntasks, layout)
    }
}
