//! Pattern program builders.
//!
//! Every builder observes the [`slipstream_core::TaskBuilderFn`] contract:
//! shared addresses and synchronization depend only on the *task* index
//! (and the program seed), never on the instance — so a task's R- and
//! A-stream programs are skeleton-identical (rule SC012) by construction.
//! Only the private scratch region is allocated per instance, inside the
//! builder closure, exactly as the hand-written workloads do.
//!
//! Programs are generated as flat op vectors (they are quick-suite sized),
//! which is what makes seeded mutations simple, position-independent edits.

use slipstream_core::TaskBuilderFn;
use slipstream_kernel::{Addr, SplitMix64};
use slipstream_prog::{
    ArrayRef, BarrierId, EventId, InstanceId, Layout, LockId, Op, ProgBuilder, RegionKind, Space,
};

use crate::mutate::Mutation;
use crate::spec::{Pattern, PatternSpec, LINE};

/// The sync-heavy phase script: `script[p]` is true when phase `p` is a
/// lock phase. Derived from the program seed alone (not the task), so all
/// tasks agree on the phase structure — a precondition for barrier
/// alignment (SC003).
pub(crate) fn phase_script(spec: &PatternSpec, seed: u64) -> Vec<bool> {
    let mut rng = SplitMix64::new(seed ^ 0x5359_4e43_5048_5331);
    (0..spec.sync_phases())
        .map(|_| rng.next_below(100) < spec.lock_mix_pct as u64)
        .collect()
}

/// The globally agreed nested lock pair `(a, b)` with `a < b` used by
/// sync-heavy lock phases. Ascending order program-wide means the
/// acquired-while-holding graph stays acyclic — until the
/// `SwapLockOrder` mutation inverts it for one task.
pub(crate) fn nested_pair(spec: &PatternSpec, seed: u64) -> (u32, u32) {
    let mut rng = SplitMix64::new(seed ^ 0x4e45_5354_5041_4952);
    let a = rng.next_below((spec.locks - 1) as u64) as u32;
    let b = a + 1 + rng.next_below((spec.locks - a - 1) as u64) as u32;
    (a, b)
}

/// Per-task RNG. Seeded from `(seed, task)` only — never the instance —
/// so R- and A-stream programs of one task are identical.
fn task_rng(seed: u64, task: usize) -> SplitMix64 {
    SplitMix64::new(seed ^ (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Dispatches to the pattern's builder.
pub(crate) fn instantiate(
    spec: PatternSpec,
    seed: u64,
    mutation: Option<Mutation>,
    ntasks: usize,
    layout: &mut Layout,
) -> TaskBuilderFn {
    match spec.pattern {
        Pattern::ProducerConsumer => producer_consumer(spec, mutation, ntasks, layout),
        Pattern::Migratory => migratory(spec, mutation, ntasks, layout),
        Pattern::FalseSharing => false_sharing(spec, mutation, ntasks, layout),
        Pattern::ReadMostly => read_mostly(spec, seed, mutation, ntasks, layout, false),
        Pattern::SyncHeavy => sync_heavy(spec, seed, mutation, ntasks, layout),
        Pattern::DivergeLaced => read_mostly(spec, seed, mutation, ntasks, layout, true),
    }
}

/// Allocates the per-instance private scratch and returns its first line.
fn scratch(layout: &mut Layout, inst: InstanceId, private_lines: u32) -> Addr {
    layout
        .private(inst, &format!("gen.scratch{}", inst.0), private_lines as u64 * LINE)
        .base()
}

/// Applies the post-processing mutations and finalizes the op vector into
/// a [`slipstream_prog::Program`]. Generation-time mutations
/// (`SwapLockOrder`, `BreakContract`) are handled inside the builders.
fn finalize(
    mut ops: Vec<Op>,
    mutation: Option<Mutation>,
    layout: &Layout,
    inst: InstanceId,
    task: usize,
    ntasks: usize,
    name: &str,
) -> slipstream_prog::Program {
    if let Some(m) = mutation {
        apply_mutation(m, &mut ops, layout, inst, task, ntasks);
    }
    let mut b = ProgBuilder::new();
    for op in ops {
        b.op(op);
    }
    b.build(name)
}

fn apply_mutation(
    m: Mutation,
    ops: &mut Vec<Op>,
    layout: &Layout,
    inst: InstanceId,
    task: usize,
    ntasks: usize,
) {
    match m {
        Mutation::DropPost if task == 0 => {
            if let Some(i) = ops.iter().rposition(|o| matches!(o, Op::EventPost(_))) {
                ops.remove(i);
            }
        }
        Mutation::DropBarrier if task == 0 => {
            if let Some(i) = ops.iter().rposition(|o| matches!(o, Op::Barrier(_))) {
                ops.remove(i);
            }
        }
        Mutation::DropUnlock if task == 0 => {
            if let Some(i) = ops.iter().rposition(|o| matches!(o, Op::Unlock(_))) {
                ops.remove(i);
            }
        }
        Mutation::StripLock if task == 0 => {
            // Remove the *first* lock-0 critical section's lock/unlock,
            // keeping its accesses. Everything task 0 does afterwards —
            // including releasing the other records' locks — carries the
            // unlocked accesses in its vector clock, so the one schedule
            // the happens-before pass explores stays race-free and only
            // the lockset analysis (SC013) can flag the discipline break.
            if let Some(i) = ops.iter().position(|o| matches!(o, Op::Lock(LockId(0)))) {
                if let Some(j) =
                    ops[i..].iter().position(|o| matches!(o, Op::Unlock(LockId(0))))
                {
                    ops.remove(i + j);
                    ops.remove(i);
                }
            }
        }
        Mutation::StealWrite if ntasks >= 2 && task == ntasks - 1 => {
            // The first shared region's base is task 0's word of the
            // false-sharing array; storing it before any synchronization
            // races with task 0's round-0 write.
            if let Some(r) = layout
                .regions()
                .iter()
                .find(|r| !matches!(r.kind, RegionKind::Private(_)))
            {
                ops.insert(0, Op::store_shared(r.base));
            }
        }
        Mutation::CrossPrivate if ntasks >= 2 && task == ntasks - 1 => {
            // Instances are built in order, so the last task sees the
            // earlier instances' scratch regions in the layout.
            if let Some(r) = layout
                .regions()
                .iter()
                .find(|r| matches!(r.kind, RegionKind::Private(o) if o != inst))
            {
                ops.push(Op::Load { addr: r.base, space: Space::Private });
            }
        }
        Mutation::UnmappedLoad if task == 0 => {
            ops.push(Op::load_shared(Addr(1 << 44)));
        }
        Mutation::ShareFalsely if ntasks >= 2 && task < 8 => {
            // Each task claims its own word of the first shared region's
            // first line before round 0. Words are disjoint per task (the
            // cap of 8 writers keeps them inside one 64-byte line), and
            // round 0's reads don't start until after a barrier, so the
            // program stays properly synchronized — but the line now has
            // multiple writers on distinct words: false sharing, visible
            // only to the analyzer's SP001.
            if let Some(r) = layout
                .regions()
                .iter()
                .find(|r| !matches!(r.kind, RegionKind::Private(_)))
            {
                ops.insert(0, Op::store_shared(Addr(r.base.0 + task as u64 * 8)));
            }
        }
        Mutation::SkewAStream if inst.0 % 2 == 1 => {
            for op in ops.iter_mut() {
                if let Op::Load { addr, space: Space::Shared }
                | Op::Store { addr, space: Space::Shared } = op
                {
                    addr.0 += 8;
                }
            }
        }
        _ => {}
    }
}

/// Neighbour ring hand-off: produce own segment, post, wait for the
/// previous task's post, consume its segment, barrier.
fn producer_consumer(
    spec: PatternSpec,
    mutation: Option<Mutation>,
    ntasks: usize,
    layout: &mut Layout,
) -> TaskBuilderFn {
    let segs: Vec<ArrayRef> = (0..ntasks)
        .map(|t| layout.shared_owned(&format!("gen.pc.seg{t}"), spec.lines as u64 * LINE, t))
        .collect();
    Box::new(move |layout, inst, task| {
        let prev = (task + ntasks - 1) % ntasks;
        let pad = scratch(layout, inst, spec.private_lines);
        let mut ops = Vec::new();
        for _ in 0..spec.rounds {
            ops.push(Op::store_private(pad));
            ops.push(Op::Compute(spec.compute));
            for l in 0..spec.lines as u64 {
                ops.push(Op::store_shared(Addr(segs[task].base().0 + l * LINE)));
            }
            ops.push(Op::EventPost(EventId(task as u32)));
            ops.push(Op::EventWait(EventId(prev as u32)));
            for l in 0..spec.lines as u64 {
                ops.push(Op::load_shared(Addr(segs[prev].base().0 + l * LINE)));
            }
            ops.push(Op::Compute(spec.compute));
            ops.push(Op::Barrier(BarrierId(0)));
        }
        finalize(ops, mutation, layout, inst, task, ntasks, "gen.pc")
    })
}

/// Migratory records: every task read-modify-writes each record under its
/// lock, every round. No barriers — ordering comes from the locks alone.
fn migratory(
    spec: PatternSpec,
    mutation: Option<Mutation>,
    ntasks: usize,
    layout: &mut Layout,
) -> TaskBuilderFn {
    let rec = layout.shared("gen.mig.rec", spec.locks as u64 * LINE);
    Box::new(move |layout, inst, task| {
        let pad = scratch(layout, inst, spec.private_lines);
        let mut ops = Vec::new();
        for _ in 0..spec.rounds {
            ops.push(Op::store_private(pad));
            ops.push(Op::Compute(spec.compute));
            for k in 0..spec.locks {
                let addr = Addr(rec.base().0 + k as u64 * LINE);
                ops.push(Op::Lock(LockId(k)));
                ops.push(Op::load_shared(addr));
                ops.push(Op::store_shared(addr));
                ops.push(Op::Unlock(LockId(k)));
                ops.push(Op::Compute(spec.compute));
            }
        }
        finalize(ops, mutation, layout, inst, task, ntasks, "gen.mig")
    })
}

/// False sharing: task `t` owns word `t % sharers` of line `t / sharers`.
/// Writers never touch each other's words — the only sharing is the line.
fn false_sharing(
    spec: PatternSpec,
    mutation: Option<Mutation>,
    ntasks: usize,
    layout: &mut Layout,
) -> TaskBuilderFn {
    let groups = ntasks.div_ceil(spec.sharers as usize).max(1);
    let arr = layout.shared("gen.fs.arr", groups as u64 * LINE);
    Box::new(move |layout, inst, task| {
        let g = (task / spec.sharers as usize) as u64;
        let w = (task % spec.sharers as usize) as u64;
        let addr = Addr(arr.base().0 + g * LINE + w * 8);
        let pad = scratch(layout, inst, spec.private_lines);
        let mut ops = Vec::new();
        for _ in 0..spec.rounds {
            ops.push(Op::store_private(pad));
            ops.push(Op::store_shared(addr));
            ops.push(Op::Compute(spec.compute));
            ops.push(Op::Barrier(BarrierId(0)));
            for _ in 0..spec.reads_per_round {
                ops.push(Op::load_shared(addr));
            }
            ops.push(Op::Compute(spec.compute));
            ops.push(Op::Barrier(BarrierId(0)));
        }
        finalize(ops, mutation, layout, inst, task, ntasks, "gen.fs")
    })
}

/// Read-mostly table with a rotating writer; optionally laced with
/// `DivergeInA` ops (the diverge-laced pattern).
fn read_mostly(
    spec: PatternSpec,
    seed: u64,
    mutation: Option<Mutation>,
    ntasks: usize,
    layout: &mut Layout,
    laced: bool,
) -> TaskBuilderFn {
    let tbl = layout.shared("gen.rm.tbl", spec.lines as u64 * LINE);
    Box::new(move |layout, inst, task| {
        let pad = scratch(layout, inst, spec.private_lines);
        // Per-task, never per-instance: both streams of a task diverge at
        // the same program points (DivergeInA is a no-op outside A-streams).
        let mut rng = task_rng(seed, task);
        let diverge_allowed = laced && mutation != Some(Mutation::BreakContract);
        let mut ops = Vec::new();
        for r in 0..spec.rounds {
            ops.push(Op::store_private(pad));
            if task == r as usize % ntasks {
                for l in 0..spec.lines as u64 {
                    ops.push(Op::store_shared(Addr(tbl.base().0 + l * LINE)));
                }
            }
            ops.push(Op::Compute(spec.compute));
            ops.push(Op::Barrier(BarrierId(0)));
            let diverge = rng.next_below(100) < 50;
            if diverge_allowed && (diverge || (task == 0 && r == 0)) {
                ops.push(Op::DivergeInA(spec.diverge_cycles));
            }
            for _ in 0..spec.reads_per_round {
                for l in 0..spec.lines as u64 {
                    ops.push(Op::load_shared(Addr(tbl.base().0 + l * LINE)));
                }
            }
            ops.push(Op::Compute(spec.compute));
            ops.push(Op::Barrier(BarrierId(0)));
        }
        let name = if laced { "gen.div" } else { "gen.rm" };
        finalize(ops, mutation, layout, inst, task, ntasks, name)
    })
}

/// A seeded mix of lock phases (one globally-ascending nested section,
/// then one single critical section per counter) and barrier phases.
fn sync_heavy(
    spec: PatternSpec,
    seed: u64,
    mutation: Option<Mutation>,
    ntasks: usize,
    layout: &mut Layout,
) -> TaskBuilderFn {
    let ctr = layout.shared("gen.sync.ctr", spec.locks as u64 * LINE);
    let segs: Vec<ArrayRef> = (0..ntasks)
        .map(|t| layout.shared_owned(&format!("gen.sync.seg{t}"), LINE, t))
        .collect();
    let script = phase_script(&spec, seed);
    let (a, b) = nested_pair(&spec, seed);
    Box::new(move |layout, inst, task| {
        let pad = scratch(layout, inst, spec.private_lines);
        let ctr_at = |k: u32| Addr(ctr.base().0 + k as u64 * LINE);
        let (first, second) = if mutation == Some(Mutation::SwapLockOrder) && task == 0 {
            (b, a)
        } else {
            (a, b)
        };
        let mut ops = Vec::new();
        for &lock_phase in &script {
            if lock_phase {
                ops.push(Op::Lock(LockId(first)));
                ops.push(Op::Lock(LockId(second)));
                ops.push(Op::load_shared(ctr_at(a)));
                ops.push(Op::store_shared(ctr_at(b)));
                ops.push(Op::Unlock(LockId(second)));
                ops.push(Op::Unlock(LockId(first)));
                ops.push(Op::Compute(spec.compute));
                for k in 0..spec.locks {
                    ops.push(Op::Lock(LockId(k)));
                    ops.push(Op::load_shared(ctr_at(k)));
                    ops.push(Op::store_shared(ctr_at(k)));
                    ops.push(Op::Unlock(LockId(k)));
                }
                ops.push(Op::Compute(spec.compute));
            } else {
                ops.push(Op::store_private(pad));
                ops.push(Op::store_shared(segs[task].base()));
                ops.push(Op::Compute(spec.compute));
                ops.push(Op::Barrier(BarrierId(0)));
            }
        }
        finalize(ops, mutation, layout, inst, task, ntasks, "gen.sync")
    })
}
