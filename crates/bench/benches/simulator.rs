//! Criterion benchmarks of the simulator itself: end-to-end runs at
//! reduced sizes and protocol microbenchmarks. These measure the *host*
//! cost of simulation (how fast the reproduction runs), not simulated
//! performance — the figure binaries report that.

use criterion::{criterion_group, criterion_main, Criterion};
use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
use slipstream_kernel::config::MachineConfig;
use slipstream_kernel::{Addr, CpuId, Cycle, EventQueue, NodeId};
use slipstream_mem::{AccessKind, HomeMap, MemSystem, StreamRole};
use slipstream_workloads::{Mg, Sor, WaterNs};

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("sor_quick_single_4", |b| {
        let w = Sor::quick();
        b.iter(|| run(&w, &RunSpec::new(4, ExecMode::Single)));
    });
    g.bench_function("sor_quick_slipstream_4", |b| {
        let w = Sor::quick();
        b.iter(|| run(&w, &RunSpec::new(4, ExecMode::Slipstream)));
    });
    g.bench_function("mg_quick_slipstream_si_4", |b| {
        let w = Mg::quick();
        let spec = RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal));
        b.iter(|| run(&w, &spec));
    });
    g.bench_function("water_ns_quick_double_4", |b| {
        let w = WaterNs::quick();
        b.iter(|| run(&w, &RunSpec::new(4, ExecMode::Double)));
    });
    g.finish();
}

fn protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    // Streaming local misses: the simulator's hottest path.
    g.bench_function("local_miss_stream_10k", |b| {
        b.iter(|| {
            let cfg = MachineConfig::with_nodes(1);
            let home = HomeMap::uniform(1, cfg.page_bytes);
            let mut mem = MemSystem::new(&cfg, home, 1);
            let mut q = EventQueue::new();
            let cpu = CpuId::new(NodeId(0), 0);
            let mut out = Vec::new();
            let mut t = 0u64;
            for i in 0..10_000u64 {
                mem.access(
                    Cycle(t),
                    cpu,
                    StreamRole::Solo,
                    AccessKind::Read,
                    Addr(0x1000 + i * 64),
                    true,
                    false,
                    &mut q,
                );
                while let Some((at, ev)) = q.pop() {
                    out.clear();
                    mem.handle_event(at, ev, &mut q, &mut out);
                    if let Some(c) = out.first() {
                        t = at.raw().max(t);
                        let _ = c;
                    }
                }
                t += 1;
            }
            mem.stats().l2_misses
        });
    });
    g.finish();
}

criterion_group!(benches, end_to_end, protocol);
criterion_main!(benches);
