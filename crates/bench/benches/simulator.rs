//! Wall-clock benchmarks of the simulator itself: end-to-end runs at
//! reduced sizes and protocol microbenchmarks. These measure the *host*
//! cost of simulation (how fast the reproduction runs), not simulated
//! performance — the figure binaries report that.
//!
//! Hand-rolled harness (`harness = false`, no external bench framework):
//! each case is warmed once, then timed over a fixed iteration count, and
//! min/mean wall times are printed. Pass `--test` (as `cargo test --benches`
//! does) to run every case exactly once as a smoke test.

use std::hint::black_box;
use std::time::Instant;

use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
use slipstream_kernel::config::MachineConfig;
use slipstream_kernel::{Addr, CpuId, Cycle, EventQueue, NodeId};
use slipstream_mem::{AccessKind, HomeMap, MemSystem, StreamRole};
use slipstream_workloads::{Mg, Sor, WaterNs};

/// Time `iters` calls of `f` (after one untimed warm-up call) and print a
/// one-line report. Returns the checksum of the last call so the work
/// cannot be optimized away.
fn bench(name: &str, iters: u32, mut f: impl FnMut() -> u64) -> u64 {
    let mut checksum = black_box(f());
    let mut min = f64::INFINITY;
    let total_start = Instant::now();
    for _ in 0..iters {
        let start = Instant::now();
        checksum = black_box(f());
        min = min.min(start.elapsed().as_secs_f64());
    }
    let mean = total_start.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<28} {iters:>3} iters   min {:>9.3} ms   mean {:>9.3} ms",
        min * 1e3,
        mean * 1e3
    );
    checksum
}

/// Streaming local misses: the simulator's hottest path.
fn local_miss_stream_10k() -> u64 {
    let cfg = MachineConfig::with_nodes(1);
    let home = HomeMap::uniform(1, cfg.page_bytes);
    let mut mem = MemSystem::new(&cfg, home, 1);
    let mut q = EventQueue::new();
    let cpu = CpuId::new(NodeId(0), 0);
    let mut out = Vec::new();
    let mut t = 0u64;
    for i in 0..10_000u64 {
        mem.access(
            Cycle(t),
            cpu,
            StreamRole::Solo,
            AccessKind::Read,
            Addr(0x1000 + i * 64),
            true,
            false,
            &mut q,
        );
        while let Some((at, ev)) = q.pop() {
            out.clear();
            mem.handle_event(at, ev, &mut q, &mut out);
            if let Some(c) = out.first() {
                t = at.raw().max(t);
                let _ = c;
            }
        }
        t += 1;
    }
    mem.stats().l2_misses
}

fn main() {
    // `cargo test --benches` (and some CI wrappers) execute this binary with
    // `--test`; `cargo bench` passes `--bench`. In test mode run each case
    // once so the suite stays fast; ignore the other harness flags.
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters: u32 = if test_mode { 1 } else { 10 };

    println!("# simulator wall-clock benchmarks ({iters} iters/case)");

    let sor = Sor::quick();
    bench("sor_quick_single_4", iters, || {
        run(&sor, &RunSpec::new(4, ExecMode::Single)).exec_cycles
    });
    bench("sor_quick_slipstream_4", iters, || {
        run(&sor, &RunSpec::new(4, ExecMode::Slipstream)).exec_cycles
    });

    let mg = Mg::quick();
    let si_spec = RunSpec::new(4, ExecMode::Slipstream)
        .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal));
    bench("mg_quick_slipstream_si_4", iters, || run(&mg, &si_spec).exec_cycles);

    let water = WaterNs::quick();
    bench("water_ns_quick_double_4", iters, || {
        run(&water, &RunSpec::new(4, ExecMode::Double)).exec_cycles
    });

    bench("local_miss_stream_10k", iters, local_miss_stream_10k);
}
