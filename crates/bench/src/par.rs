//! Parallel sweep executor for the figure binaries.
//!
//! Every figure of the paper is a grid of independent simulations
//! (workload × mode × nodes × slipstream config). A [`Plan`] declares that
//! grid as a list of cells; [`Plan::execute`] deduplicates cells that
//! request the same run (shared single/double baselines appear in several
//! figures), fans the unique runs out over host threads with
//! `std::thread::scope`, and returns results **in plan order** — so output
//! is deterministic and independent of the number of jobs.
//!
//! Each simulation itself stays single-threaded and bit-for-bit
//! reproducible; parallelism exists only between independent runs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use slipstream_core::{
    host_note, run, run_full, run_full_with_tracer, ExecMode, HostProfile, HostProfileData,
    MachineConfig, RunResult, RunSpec, SlipstreamConfig, Workload,
};

/// Structured identity of one simulation cell: everything that influences
/// the result. Used as the dedup/cache key (replacing the former
/// `format!("{:?}", …)` string keys, which allocated per lookup and would
/// silently collide or diverge if a `Debug` impl changed).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload name (workloads are identified by name + the suite's
    /// problem size, which the caller fixes via `--quick`).
    pub name: String,
    /// CMP count.
    pub nodes: u16,
    /// Execution mode.
    pub mode: ExecMode,
    /// Slipstream knobs (ignored by the simulator outside slipstream mode,
    /// but part of the spec, so kept: identical results cached under one
    /// entry require identical specs).
    pub slip: SlipstreamConfig,
    /// Machine override, if any.
    pub machine: Option<MachineConfig>,
    /// Private-work batching quantum.
    pub quantum_cycles: u64,
    /// Cost of an `Input` op.
    pub input_cycles: u64,
    /// Intra-run worker threads. `0` (serial engine) and `K >= 1`
    /// (parallel engine) are distinct keys because the engines may differ
    /// in host-side accounting; all `K >= 1` produce bit-identical
    /// results, but figure binaries use one uniform `K`, so no dedup is
    /// lost by keeping the exact value.
    pub threads: u16,
    /// Directory scheme override, if any (`None` keeps the machine's
    /// default full-map directory). Limited-pointer runs change protocol
    /// traffic, so they must never dedup against full-map runs.
    pub dir_scheme: Option<slipstream_core::DirScheme>,
}

impl RunKey {
    /// The key identifying `workload` run under `spec`.
    pub fn new(workload: &dyn Workload, spec: &RunSpec) -> RunKey {
        RunKey {
            name: workload.name().to_string(),
            nodes: spec.nodes,
            mode: spec.mode,
            slip: spec.slip,
            machine: spec.machine.clone(),
            quantum_cycles: spec.quantum_cycles,
            input_cycles: spec.input_cycles,
            threads: spec.threads,
            dir_scheme: spec.dir_scheme,
        }
    }
}

/// A declarative list of `(workload, spec)` simulation cells.
///
/// Cells may repeat (e.g. the single-mode baseline of every figure row);
/// execution runs each distinct cell once.
#[derive(Default)]
pub struct Plan<'w> {
    cells: Vec<(&'w dyn Workload, RunSpec)>,
}

impl<'w> Plan<'w> {
    /// An empty plan.
    pub fn new() -> Plan<'w> {
        Plan { cells: Vec::new() }
    }

    /// Appends one cell.
    pub fn add(&mut self, workload: &'w dyn Workload, spec: RunSpec) {
        self.cells.push((workload, spec));
    }

    /// Number of cells (including duplicates).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cells and their dedup keys, in plan order.
    pub fn keys(&self) -> impl Iterator<Item = RunKey> + '_ {
        self.cells.iter().map(|(w, spec)| RunKey::new(*w, spec))
    }

    /// A copy of the plan with `threads` intra-run workers applied to
    /// every cell that doesn't already set its own count. The figure
    /// binaries use this to fan `--threads` out over a whole grid.
    pub fn with_threads(&self, threads: u16) -> Plan<'w> {
        Plan {
            cells: self
                .cells
                .iter()
                .map(|(w, spec)| {
                    let mut spec = spec.clone();
                    if spec.threads == 0 {
                        spec.threads = threads;
                    }
                    (*w, spec)
                })
                .collect(),
        }
    }

    /// A copy of the plan with host profiling applied to every cell that
    /// doesn't already enable it (`--host-profile` on the figure
    /// binaries). Profiling is not part of [`RunKey`] — it cannot change
    /// results — so dedup is unaffected.
    pub fn with_host(&self, host: &HostProfile) -> Plan<'w> {
        Plan {
            cells: self
                .cells
                .iter()
                .map(|(w, spec)| {
                    let mut spec = spec.clone();
                    if !spec.host.is_on() {
                        spec.host = host.clone();
                    }
                    (*w, spec)
                })
                .collect(),
        }
    }

    /// Executes the plan on up to `jobs` worker threads and returns one
    /// result per cell, in plan order.
    ///
    /// Duplicate cells are simulated once and the result is cloned into
    /// each requesting position. Work is handed out through an atomic
    /// cursor, so threads stay busy regardless of per-run cost; the result
    /// order (and every simulated number) is independent of `jobs`.
    pub fn execute(&self, jobs: usize) -> Vec<RunResult> {
        self.execute_opts(jobs, false)
    }

    /// [`Plan::execute`] with the coherence invariant checker optionally
    /// attached to every run (`--check` on the figure binaries).
    ///
    /// Checked runs are bit-identical to unchecked ones; a protocol
    /// violation prints the report and panics, failing the figure loudly
    /// rather than rendering numbers from a run the checker rejected.
    pub fn execute_opts(&self, jobs: usize, check: bool) -> Vec<RunResult> {
        self.execute_collect(jobs, check).into_iter().map(|(r, _)| r).collect()
    }

    /// [`Plan::execute_opts`], additionally returning each cell's host
    /// profile (`Some` only for cells whose spec enables `host` — see
    /// [`Plan::with_host`]). Duplicate cells share the first occurrence's
    /// profile, like they share its result.
    pub fn execute_collect(
        &self,
        jobs: usize,
        check: bool,
    ) -> Vec<(RunResult, Option<HostProfileData>)> {
        type CellOut = (RunResult, Option<HostProfileData>);
        // Dedup: map every cell to the first cell with the same key.
        let mut first_of: HashMap<RunKey, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new(); // cell index of each unique run
        let mut cell_slot: Vec<usize> = Vec::with_capacity(self.cells.len());
        for (i, (w, spec)) in self.cells.iter().enumerate() {
            let key = RunKey::new(*w, spec);
            let slot = *first_of.entry(key).or_insert_with(|| {
                unique.push(i);
                unique.len() - 1
            });
            cell_slot.push(slot);
        }

        let slots: Vec<Mutex<Option<CellOut>>> =
            unique.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let mut workers = jobs.max(1).min(unique.len().max(1));
        // Over-subscription guard: when cells themselves run multi-threaded
        // (RunSpec::threads), jobs × sim-threads can exceed the host and
        // every run slows down. Cap jobs so the product fits, unless the
        // caller explicitly opts in via SLIP_OVERSUBSCRIBE=1.
        let max_threads = unique
            .iter()
            .map(|&i| self.cells[i].1.threads.max(1) as usize)
            .max()
            .unwrap_or(1);
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if workers * max_threads > host && std::env::var_os("SLIP_OVERSUBSCRIBE").is_none() {
            let capped = (host / max_threads).max(1).min(workers);
            if capped < workers {
                host_note!(
                    "  [capping jobs {workers} -> {capped}: {workers} jobs x {max_threads} sim \
                     threads would oversubscribe {host} host cpus; set SLIP_OVERSUBSCRIBE=1 to \
                     override]"
                );
                workers = capped;
            }
        }
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let u = cursor.fetch_add(1, Ordering::Relaxed);
                    if u >= unique.len() {
                        break;
                    }
                    let (w, spec) = &self.cells[unique[u]];
                    let started = std::time::Instant::now();
                    let out = run_cell_full(*w, spec, check);
                    host_note!(
                        "  [ran {} {} @{} CMPs in {:.1}s: {} cycles]",
                        w.name(),
                        spec.mode,
                        spec.nodes,
                        started.elapsed().as_secs_f64(),
                        out.0.exec_cycles
                    );
                    *slots[u].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });

        cell_slot
            .iter()
            .map(|&slot| {
                slots[slot]
                    .lock()
                    .expect("result slot poisoned")
                    .clone()
                    .expect("every unique cell was executed")
            })
            .collect()
    }
}

/// Runs one cell, returning the host profile alongside the result (`Some`
/// only when `spec.host` is on). Checked runs attach the protocol
/// checker's tracer directly so the profile survives; the checker verdict
/// evaluation is charged to the profile's `check_s` phase.
///
/// # Panics
///
/// Panics if the checker reports any violation (after printing the full
/// report to stderr).
pub(crate) fn run_cell_full(
    w: &dyn Workload,
    spec: &RunSpec,
    check: bool,
) -> (RunResult, Option<HostProfileData>) {
    if !check {
        if !spec.host.is_on() {
            return (run(w, spec), None);
        }
        let out = run_full(w, spec);
        return (out.result, out.profile);
    }
    let (checker, tracer) = slipstream_check::ProtocolChecker::new();
    let mut out = run_full_with_tracer(w, spec, tracer);
    let check_started = std::time::Instant::now();
    let report = checker.finish();
    if let Some(p) = out.profile.as_mut() {
        p.phases.check_s = check_started.elapsed().as_secs_f64();
    }
    if !report.ok() {
        for v in &report.violations {
            eprintln!("{} {v}", w.name());
        }
        panic!(
            "protocol checker rejected {} {} @{} CMPs: {}",
            w.name(),
            spec.mode,
            spec.nodes,
            report.summary()
        );
    }
    (out.result, out.profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_workloads::by_name;

    #[test]
    fn dedup_counts_unique_cells_once() {
        let w = by_name("SOR", true).expect("quick SOR");
        let mut plan = Plan::new();
        plan.add(w.as_ref(), RunSpec::new(2, ExecMode::Single));
        plan.add(w.as_ref(), RunSpec::new(2, ExecMode::Single)); // duplicate
        plan.add(w.as_ref(), RunSpec::new(2, ExecMode::Double));
        let keys: Vec<RunKey> = plan.keys().collect();
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        let results = plan.execute(2);
        assert_eq!(results.len(), 3);
        // The duplicate positions carry the same (cloned) result.
        assert_eq!(results[0].exec_cycles, results[1].exec_cycles);
        assert_eq!(results[0].mem, results[1].mem);
    }

    #[test]
    fn with_threads_respects_explicit_cell_counts() {
        let w = by_name("SOR", true).expect("quick SOR");
        let mut plan = Plan::new();
        plan.add(w.as_ref(), RunSpec::new(2, ExecMode::Single)); // inherits
        plan.add(w.as_ref(), RunSpec::new(2, ExecMode::Single).with_threads(4)); // keeps 4
        let threaded = plan.with_threads(2);
        let keys: Vec<RunKey> = threaded.keys().collect();
        assert_eq!(keys[0].threads, 2);
        assert_eq!(keys[1].threads, 4);
        // The serial and threaded variants of the same cell are distinct
        // keys: the engines may differ in host-side accounting.
        let serial_key: Vec<RunKey> = plan.keys().collect();
        assert_ne!(serial_key[0], keys[0]);
    }

    #[test]
    fn plan_order_is_independent_of_jobs() {
        fn mk<'w>(plan: &mut Plan<'w>, w: &'w dyn Workload) {
            plan.add(w, RunSpec::new(2, ExecMode::Single));
            plan.add(w, RunSpec::new(2, ExecMode::Double));
            plan.add(w, RunSpec::new(2, ExecMode::Slipstream));
        }
        let w = by_name("SOR", true).expect("quick SOR");
        let mut p1 = Plan::new();
        mk(&mut p1, w.as_ref());
        let mut p4 = Plan::new();
        mk(&mut p4, w.as_ref());
        let serial = p1.execute(1);
        let parallel = p4.execute(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.exec_cycles, b.exec_cycles);
            assert_eq!(a.mem, b.mem);
            assert_eq!(a.recoveries, b.recoveries);
        }
    }
}
