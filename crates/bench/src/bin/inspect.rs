//! Inspect one run: benchmark, node count, mode, A-R sync, SI — prints
//! the stream time breakdowns and memory-system statistics.
//!
//! Usage: `inspect <BENCH> <NODES> <single|double|slip> [--quick] [--ar L1|L0|G1|G0] [--si]`
use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(|s| s.as_str()).unwrap_or("SOR");
    let nodes: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let mode = match args.get(2).map(|s| s.as_str()) {
        Some("double") => ExecMode::Double,
        Some("slip") => ExecMode::Slipstream,
        _ => ExecMode::Single,
    };
    let quick = args.iter().any(|a| a == "--quick");
    let w = slipstream_workloads::by_name(name, quick).expect("benchmark");
    let ar = match args.iter().position(|a| a == "--ar") {
        Some(i) => match args[i + 1].as_str() {
            "L1" => ArSyncMode::OneTokenLocal,
            "L0" => ArSyncMode::ZeroTokenLocal,
            "G0" => ArSyncMode::ZeroTokenGlobal,
            _ => ArSyncMode::OneTokenGlobal,
        },
        None => ArSyncMode::OneTokenGlobal,
    };
    let mut slip = SlipstreamConfig::prefetch_only(ar);
    if args.iter().any(|a| a == "--si") {
        slip = SlipstreamConfig::with_self_invalidation(ar);
    }
    let r = run(w.as_ref(), &RunSpec::new(nodes, mode).with_slip(slip));
    println!("{} {} @{}: {} cycles, recoveries={}", name, mode, nodes, r.exec_cycles, r.recoveries);
    for role in [slipstream_core::StreamRole::Solo, slipstream_core::StreamRole::R, slipstream_core::StreamRole::A] {
        let b = r.avg_breakdown(role);
        if b.total() > 0 {
            println!("  {:?}: {}", role, b);
        }
    }
    let m = &r.mem;
    println!(
        "  l1_hits={} l2_hits={} l2_miss={} merged={} local={} remote={} interv={} wb={} inv={} net={}",
        m.l1_hits, m.l2_hits, m.l2_misses, m.merged_misses, m.local_txns, m.remote_txns,
        m.interventions, m.writebacks, m.invalidations_sent, m.net_messages
    );
}
