//! Inspect one run: benchmark, node count, mode, A-R sync, SI — prints
//! the stream time breakdowns and memory-system statistics.
//!
//! Usage: `inspect <BENCH> <NODES> <single|double|slip> [--quick]
//!         [--ar L1|L0|G1|G0] [--si] [--json]
//!         [--trace FILE] [--metrics FILE] [--interval N]`
//!
//! `--json` prints the full [`RunResult`] as one JSON object instead of
//! the human-readable summary. `--trace FILE` writes a Chrome
//! `trace_event` JSON of the run (open in Perfetto); `--metrics FILE`
//! writes interval-metrics JSONL sampled every `--interval N` cycles
//! (default 10000). See docs/observability.md.
use slipstream_core::{
    run_result_json, run_traced, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, TraceConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: inspect <BENCH> <NODES> <single|double|slip> [--quick] \
         [--ar L1|L0|G1|G0] [--si] [--json] [--trace FILE] [--metrics FILE] [--interval N]"
    );
    eprintln!(
        "benchmarks: {}",
        slipstream_workloads::quick_suite()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(|s| s.as_str()).unwrap_or("SOR");
    let nodes: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let mode = match args.get(2).map(|s| s.as_str()) {
        Some("double") => ExecMode::Double,
        Some("slip") => ExecMode::Slipstream,
        _ => ExecMode::Single,
    };
    let quick = args.iter().any(|a| a == "--quick");
    let Some(w) = slipstream_workloads::by_name(name, quick) else {
        eprintln!("unknown benchmark: {name}");
        usage();
    };
    // A flag that takes a value must have one (a trailing `--ar` would
    // otherwise index out of bounds).
    let flag_value = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
            Some(v) => v,
            None => {
                eprintln!("{flag} requires a value");
                usage();
            }
        })
    };
    let ar = match flag_value("--ar").map(|s| s.as_str()) {
        Some("L1") => ArSyncMode::OneTokenLocal,
        Some("L0") => ArSyncMode::ZeroTokenLocal,
        Some("G0") => ArSyncMode::ZeroTokenGlobal,
        _ => ArSyncMode::OneTokenGlobal,
    };
    let mut slip = SlipstreamConfig::prefetch_only(ar);
    if args.iter().any(|a| a == "--si") {
        slip = SlipstreamConfig::with_self_invalidation(ar);
    }
    let trace_path = flag_value("--trace").cloned();
    let metrics_path = flag_value("--metrics").cloned();
    let interval: u64 = match flag_value("--interval") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--interval requires a number, got {v}");
            usage();
        }),
        None => 10_000,
    };
    let trace_cfg = TraceConfig {
        events: trace_path.is_some(),
        interval: if metrics_path.is_some() || trace_path.is_some() { interval } else { 0 },
        ..TraceConfig::default()
    };
    let spec = RunSpec::new(nodes, mode).with_slip(slip).with_trace(trace_cfg);
    let (r, trace) = run_traced(w.as_ref(), &spec);
    if let Some(data) = &trace {
        if let Some(path) = &trace_path {
            std::fs::write(path, data.chrome_trace_json()).expect("write trace file");
            eprintln!("wrote {path} ({} events, {} dropped)", data.records.len(), data.dropped);
        }
        if let Some(path) = &metrics_path {
            std::fs::write(path, data.metrics_jsonl()).expect("write metrics file");
            eprintln!("wrote {path} ({} samples)", data.samples.len());
        }
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", run_result_json(&r));
        return;
    }
    println!("{} {} @{}: {} cycles, recoveries={}", name, mode, nodes, r.exec_cycles, r.recoveries);
    for role in [slipstream_core::StreamRole::Solo, slipstream_core::StreamRole::R, slipstream_core::StreamRole::A] {
        let b = r.avg_breakdown(role);
        if b.total() > 0 {
            println!("  {:?}: {}", role, b);
        }
    }
    let m = &r.mem;
    println!(
        "  l1_hits={} l2_hits={} l2_miss={} merged={} local={} remote={} interv={} wb={} inv={} net={}",
        m.l1_hits, m.l2_hits, m.l2_misses, m.merged_misses, m.local_txns, m.remote_txns,
        m.interventions, m.writebacks, m.invalidations_sent, m.net_messages
    );
    // Contention-server utilization: busy cycles over exec_cycles * nodes
    // (one server instance per node).
    let total = r.exec_cycles.saturating_mul(r.nodes as u64);
    let util: Vec<String> = m
        .contention
        .named()
        .iter()
        .map(|(name, u)| format!("{name}={:.1}%", 100.0 * u.utilization(total)))
        .collect();
    println!("  contention: {}", util.join(" "));
}
