//! Figure 10: speedup of slipstream mode over the best of single and
//! double modes, for three slipstream configurations: prefetching only,
//! prefetching + transparent loads, and prefetching + transparent loads +
//! self-invalidation. One-token global synchronization; 16 CMPs (FFT: 4).

use slipstream_bench::{Cli, Runner};
use slipstream_core::{ArSyncMode, SlipstreamConfig};

fn main() {
    let cli = Cli::parse();
    let mut r = Runner::new();
    let ar = ArSyncMode::OneTokenGlobal;
    println!("# Figure 10: slipstream speedup over best(single, double), G1 sync");
    println!("{:<12} {:>10} {:>10} {:>10}", "benchmark", "prefetch", "+transp", "+SI");
    for w in cli.suite() {
        if matches!(w.name(), "LU" | "WATER-SP") && !cli.quick {
            continue; // excluded by the paper (§4.3): no stall time to attack
        }
        let nodes = if w.name() == "FFT" { 4 } else { *cli.sweep().last().unwrap_or(&16) };
        let best = r.best_conventional(w.as_ref(), nodes) as f64;
        let pf = r.slipstream(w.as_ref(), nodes, SlipstreamConfig::prefetch_only(ar));
        let tr = r.slipstream(w.as_ref(), nodes, SlipstreamConfig::with_transparent(ar));
        let si = r.slipstream(w.as_ref(), nodes, SlipstreamConfig::with_self_invalidation(ar));
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            w.name(),
            best / pf.exec_cycles as f64,
            best / tr.exec_cycles as f64,
            best / si.exec_cycles as f64
        );
    }
}
