//! Figure 10: speedup of slipstream mode over the best of single and
//! double modes, for three slipstream configurations: prefetching only,
//! prefetching + transparent loads, and prefetching + transparent loads +
//! self-invalidation. One-token global synchronization; 16 CMPs (FFT: 4).

use slipstream_bench::{Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};

/// Paper's node choice: 16 CMPs (FFT: 4); LU/Water-SP excluded (§4.3).
fn figure_nodes(cli: &Cli, name: &str) -> Option<u16> {
    if matches!(name, "LU" | "WATER-SP") && !cli.quick {
        return None;
    }
    Some(if name == "FFT" { 4 } else { *cli.sweep().last().unwrap_or(&16) })
}

fn main() {
    let cli = Cli::parse();
    let suite = cli.suite();
    let ar = ArSyncMode::OneTokenGlobal;
    let slips = [
        SlipstreamConfig::prefetch_only(ar),
        SlipstreamConfig::with_transparent(ar),
        SlipstreamConfig::with_self_invalidation(ar),
    ];

    let mut plan = Plan::new();
    for w in &suite {
        if let Some(nodes) = figure_nodes(&cli, w.name()) {
            plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Single));
            plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Double));
            for slip in slips {
                plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Slipstream).with_slip(slip));
            }
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 10: slipstream speedup over best(single, double), G1 sync");
    println!("{:<12} {:>10} {:>10} {:>10}", "benchmark", "prefetch", "+transp", "+SI");
    for w in &suite {
        let Some(nodes) = figure_nodes(&cli, w.name()) else { continue };
        let best = r.best_conventional(w.as_ref(), nodes) as f64;
        let pf = r.slipstream(w.as_ref(), nodes, slips[0]);
        let tr = r.slipstream(w.as_ref(), nodes, slips[1]);
        let si = r.slipstream(w.as_ref(), nodes, slips[2]);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            w.name(),
            best / pf.exec_cycles as f64,
            best / tr.exec_cycles as f64,
            best / si.exec_cycles as f64
        );
    }
    r.export_host_profile(&cli);
}
