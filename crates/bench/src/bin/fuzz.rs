//! Differential fuzzing driver: generated sharing-pattern programs vs the
//! static verifier vs the simulator.
//!
//! For every generated program the pipeline asserts, in order:
//!
//! 1. **Statically clean** — zero `Error` diagnostics from the full
//!    analysis (SC001..SC015, including the program's own pattern
//!    contract) under conventional instantiation at `nodes` and
//!    `2 * nodes` tasks and under slipstream instantiation at `nodes`.
//! 2. **Engine agreement** — for each execution mode (single, double,
//!    slipstream, slipstream+si), the serial event loop (`threads = 0`)
//!    and the conservative parallel engine (`threads = K`) produce the
//!    same simulated results.
//! 3. **Checked-run agreement** — a protocol-checked run (single and
//!    slipstream+si) reports zero violations and a bit-identical
//!    [`RunResult`] to the unchecked serial run.
//! 4. **Analyzer containment** — the static sharing analyzer's traffic
//!    bounds contain the measured `MemStats` counters of an instrumented
//!    single-mode run, and every region's observed sharing class matches
//!    the predicted class's observable projection
//!    (`slipstream_check::cross_validate_with`).
//!
//! Then every seeded mutation is re-checked: the planted bug must be
//! caught by its expected rule at its expected severity (`Error` for the
//! `SC*` correctness rules, `Warning` for the analyzer's `SP*` lints,
//! which class-shifting mutations target).
//!
//! Usage: `fuzz [--seed S] [--count N] [--nodes N] [--threads K]
//!              [--mutants M] [--quick] [--json PATH] [--quiet]`
//!   --seed S     master corpus seed (default: the committed CORPUS_SEED)
//!   --count N    number of generated programs (default: CORPUS_COUNT)
//!   --nodes N    CMP nodes per run (default: 2)
//!   --threads K  parallel-engine worker count to compare against the
//!                serial loop (default: 2)
//!   --mutants M  number of mutants to check (default: 3 rounds of the
//!                mutation set)
//!   --quick      CI smoke sizing: 36 programs (6 per pattern), one
//!                mutation round
//!   --json PATH  write a machine-readable corpus report
//!   --quiet      silence per-program progress on stderr
//!
//! Every failure is reported; the exit code is nonzero if any stage
//! failed. Reproduce one entry with `--seed <S> --count <i+1>`.

use std::fmt::Write as _;
use std::process::ExitCode;

use slipstream_check::{
    analyze_tasks, cross_validate_with, instantiate_workload, run_checked, verify_contract,
    verify_task_set, AnalysisConfig, Severity, ValidationReport,
};
use slipstream_core::{
    run, ArSyncMode, ExecMode, MachineConfig, RunResult, RunSpec, SlipstreamConfig, Workload,
};
use slipstream_gen::corpus::{corpus_entry, mutant_entry, CORPUS_COUNT, CORPUS_SEED};
use slipstream_gen::{GenWorkload, Mutation};

struct Args {
    seed: u64,
    count: usize,
    nodes: u16,
    threads: u16,
    mutants: usize,
    json: Option<String>,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: CORPUS_SEED,
        count: CORPUS_COUNT,
        nodes: 2,
        threads: 2,
        mutants: 3 * Mutation::ALL.len(),
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--seed" => args.seed = parse_u64(&val("--seed")),
            "--count" => args.count = val("--count").parse().expect("--count"),
            "--nodes" => args.nodes = val("--nodes").parse().expect("--nodes"),
            "--threads" => args.threads = val("--threads").parse().expect("--threads"),
            "--mutants" => args.mutants = val("--mutants").parse().expect("--mutants"),
            "--quick" => {
                args.count = 36;
                args.mutants = Mutation::ALL.len();
            }
            "--json" => args.json = Some(val("--json")),
            "--quiet" => args.quiet = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex seed")
    } else {
        s.parse().expect("seed")
    }
}

/// The four execution modes of the benchmark matrix.
fn mode_specs(nodes: u16) -> Vec<(&'static str, RunSpec)> {
    vec![
        ("single", RunSpec::new(nodes, ExecMode::Single)),
        ("double", RunSpec::new(nodes, ExecMode::Double)),
        (
            "slipstream",
            RunSpec::new(nodes, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal)),
        ),
        (
            "slipstream+si",
            RunSpec::new(nodes, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal)),
        ),
    ]
}

/// Static pipeline: verifier + contract over both instantiations.
/// Returns failure descriptions (empty = clean).
fn static_failures(w: &GenWorkload, cfg: &MachineConfig, nodes: u16) -> Vec<String> {
    let mut fails = Vec::new();
    let configs = [
        (nodes as usize, false),
        (2 * nodes as usize, false),
        (nodes as usize, true),
    ];
    for (ntasks, slipstream) in configs {
        let set = instantiate_workload(w, cfg.page_bytes, ntasks, slipstream);
        let mut diags = verify_task_set(&set);
        diags.extend(verify_contract(&set.r, &w.contract(ntasks)));
        for d in diags.iter().filter(|d| d.severity == Severity::Error) {
            fails.push(format!(
                "{} ({ntasks} tasks, slipstream={slipstream}): {}",
                w.name(),
                d
            ));
        }
    }
    fails
}

/// One simulated mode: serial vs parallel engine, and (for the checked
/// modes) the protocol-checked differential. Returns the serial cycles
/// and failure descriptions.
fn dynamic_mode(
    w: &GenWorkload,
    mode: &str,
    spec: &RunSpec,
    threads: u16,
    check: bool,
) -> (u64, Vec<String>) {
    let mut fails = Vec::new();
    let serial = run(w, &spec.clone().with_threads(0));
    let pdes = run(w, &spec.clone().with_threads(threads));
    if !sim_eq(&serial, &pdes) {
        fails.push(format!(
            "{} {mode}: serial and {threads}-worker results diverge \
             (cycles {} vs {}, recoveries {} vs {})",
            w.name(),
            serial.exec_cycles,
            pdes.exec_cycles,
            serial.recoveries,
            pdes.recoveries
        ));
    }
    if check {
        let (checked, report) = run_checked(w, spec);
        if !report.ok() {
            fails.push(format!("{} {mode}: protocol checker: {}", w.name(), report.summary()));
        }
        if checked != serial {
            fails.push(format!("{} {mode}: checked run diverged from unchecked", w.name()));
        }
    }
    (serial.exec_cycles, fails)
}

/// Simulated-machine equality across engines. The serial loop and the
/// parallel engine are separately deterministic but differ in *host-side*
/// accounting (`host_events`), so that observability counter is excluded;
/// everything simulated — cycles, streams, memory statistics, recoveries
/// — must match bit for bit.
fn sim_eq(a: &RunResult, b: &RunResult) -> bool {
    let mut b2 = b.clone();
    b2.host_events = a.host_events;
    *a == b2
}

struct ProgramReport {
    name: String,
    seed: u64,
    spec_json: String,
    cycles: Vec<(&'static str, u64)>,
    /// Static-vs-dynamic validation report (absent when the program failed
    /// the static stage and was never simulated).
    validation: Option<ValidationReport>,
    ok: bool,
}

/// Analyzer containment stage: cross-validate one clean program at the
/// fuzz node count. Returns the report plus failure descriptions.
fn validation_stage(
    w: &GenWorkload,
    cfg: &MachineConfig,
    nodes: u16,
) -> (ValidationReport, Vec<String>) {
    let acfg = AnalysisConfig { line_bytes: cfg.l2.line_bytes, ..AnalysisConfig::default() };
    let report = cross_validate_with(cfg, w, nodes as usize, &acfg);
    let fails = if report.ok {
        Vec::new()
    } else {
        vec![format!(
            "validation: {}",
            report.first_failure().unwrap_or_else(|| w.name().to_string())
        )]
    };
    (report, fails)
}

fn main() -> ExitCode {
    let args = parse_args();
    let cfg = MachineConfig::with_nodes(args.nodes);
    let specs = mode_specs(args.nodes);
    let mut failures: Vec<String> = Vec::new();
    let mut programs: Vec<ProgramReport> = Vec::new();

    for i in 0..args.count {
        let w = corpus_entry(args.seed, i);
        let mut fails = static_failures(&w, &cfg, args.nodes);
        let mut cycles = Vec::new();
        let mut validation = None;
        if fails.is_empty() {
            // Simulate only statically clean programs: a verifier failure
            // already fails the run, and the engines' behaviour on broken
            // programs (deadlocks) is not part of the contract.
            for (mode, spec) in &specs {
                let check = matches!(*mode, "single" | "slipstream+si");
                let (c, f) = dynamic_mode(&w, mode, spec, args.threads, check);
                cycles.push((*mode, c));
                fails.extend(f);
            }
            let (report, f) = validation_stage(&w, &cfg, args.nodes);
            validation = Some(report);
            fails.extend(f);
        }
        let ok = fails.is_empty();
        if !args.quiet {
            eprintln!(
                "[{}/{}] {} {}",
                i + 1,
                args.count,
                w.name(),
                if ok { "ok" } else { "FAIL" }
            );
        }
        programs.push(ProgramReport {
            name: w.name().to_string(),
            seed: w.seed(),
            spec_json: w.spec().to_json(),
            cycles,
            validation,
            ok,
        });
        failures.extend(fails);
    }

    let mut mutants_caught = 0usize;
    let mut mutant_rows: Vec<(String, &'static str, &'static str, bool)> = Vec::new();
    for i in 0..args.mutants {
        let w = mutant_entry(args.seed, i);
        let m = w.mutation().expect("mutant");
        let rule = m.expected_rule();
        let ntasks = args.nodes.max(2) as usize * 2;
        let set = instantiate_workload(&w, cfg.page_bytes, ntasks, m.needs_slipstream());
        let mut diags = verify_task_set(&set);
        diags.extend(verify_contract(&set.r, &w.contract(ntasks)));
        // Class-shifting mutations are race-free; only the analyzer's SP*
        // lints can see them, so its diagnostics join the kill pipeline.
        let acfg = AnalysisConfig { line_bytes: cfg.l2.line_bytes, ..AnalysisConfig::default() };
        diags.extend(analyze_tasks(&set.layout, &set.r, &acfg).diagnostics);
        let severity = m.expected_severity();
        let caught = diags.iter().any(|d| d.rule == rule && d.severity == severity);
        if caught {
            mutants_caught += 1;
        } else {
            failures.push(format!(
                "mutant {}: expected {} to fire, got {:?}",
                w.name(),
                rule.id(),
                diags.iter().map(|d| d.rule.id()).collect::<Vec<_>>()
            ));
        }
        if !args.quiet {
            eprintln!(
                "[mutant {}/{}] {} -> {} {}",
                i + 1,
                args.mutants,
                w.name(),
                rule.id(),
                if caught { "caught" } else { "MISSED" }
            );
        }
        mutant_rows.push((w.name().to_string(), m.key(), rule.id(), caught));
    }

    if let Some(path) = &args.json {
        let json = render_json(&args, &programs, &mutant_rows, &failures, mutants_caught);
        std::fs::write(path, json).expect("write json report");
        if !args.quiet {
            eprintln!("wrote {path}");
        }
    }

    let clean = programs.iter().filter(|p| p.ok).count();
    println!(
        "fuzz: {clean}/{} programs clean, {mutants_caught}/{} mutants caught, {} failure(s)",
        programs.len(),
        mutant_rows.len(),
        failures.len()
    );
    for f in &failures {
        println!("  FAIL: {f}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_json(
    args: &Args,
    programs: &[ProgramReport],
    mutants: &[(String, &'static str, &'static str, bool)],
    failures: &[String],
    mutants_caught: usize,
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"schema\": \"slipstream-fuzz/2\",\n  \"seed\": {},\n  \"count\": {},\n  \
         \"nodes\": {},\n  \"threads\": {},\n  \"programs\": [",
        args.seed, args.count, args.nodes, args.threads
    );
    for (i, p) in programs.iter().enumerate() {
        let cycles = p
            .cycles
            .iter()
            .map(|(m, c)| format!("\"{m}\":{c}"))
            .collect::<Vec<_>>()
            .join(",");
        let validation =
            p.validation.as_ref().map_or_else(|| "null".to_string(), |v| v.to_json());
        let _ = write!(
            s,
            "{}\n    {{\"i\":{i},\"name\":\"{}\",\"seed\":{},\"spec\":{},\"ok\":{},\
             \"cycles\":{{{cycles}}},\"validation\":{validation}}}",
            if i == 0 { "" } else { "," },
            p.name,
            p.seed,
            p.spec_json,
            p.ok
        );
    }
    let _ = write!(s, "\n  ],\n  \"mutants\": [");
    for (i, (name, key, rule, caught)) in mutants.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"name\":\"{name}\",\"mutation\":\"{key}\",\"expected\":\"{rule}\",\
             \"caught\":{caught}}}",
            if i == 0 { "" } else { "," }
        );
    }
    let _ = write!(s, "\n  ],\n  \"failures\": [");
    for (i, f) in failures.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    \"{}\"",
            if i == 0 { "" } else { "," },
            f.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    let clean = programs.iter().filter(|p| p.ok).count();
    let _ = write!(
        s,
        "\n  ],\n  \"summary\": {{\"clean\": {clean}, \"programs\": {}, \
         \"mutants_caught\": {mutants_caught}, \"mutants\": {}, \"failures\": {}}}\n}}\n",
        programs.len(),
        mutants.len(),
        failures.len()
    );
    s
}
