//! Figure 7: breakdown of memory requests for shared data (A/R x
//! Timely/Late/Only), for reads (top) and exclusive requests (bottom),
//! under each A-R synchronization method, at 16 CMPs.

use slipstream_bench::{Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ClassCounts, ExecMode, RunSpec, SlipstreamConfig};

fn row(label: &str, c: &ClassCounts) {
    let p = c.percentages();
    println!(
        "{label:<14} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
        p[0], p[1], p[2], p[3], p[4], p[5]
    );
}

fn main() {
    let cli = Cli::parse();
    let nodes = *cli.sweep().last().expect("at least one node count");
    let suite = cli.suite();

    let mut plan = Plan::new();
    for w in &suite {
        for ar in ArSyncMode::ALL {
            plan.add(
                w.as_ref(),
                RunSpec::new(nodes, ExecMode::Slipstream)
                    .with_slip(SlipstreamConfig::prefetch_only(ar)),
            );
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 7: shared-data request classification at {nodes} CMPs (%)");
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "A-Timely", "A-Late", "A-Only", "R-Timely", "R-Late", "R-Only"
    );
    for w in &suite {
        println!("\n## {} — reads", w.name());
        let mut excl_rows = Vec::new();
        for ar in ArSyncMode::ALL {
            let res = r.slipstream(w.as_ref(), nodes, SlipstreamConfig::prefetch_only(ar));
            row(ar.label(), &res.mem.class.reads);
            excl_rows.push((ar.label(), res.mem.class.excl));
        }
        println!("## {} — exclusive requests", w.name());
        for (label, excl) in excl_rows {
            row(label, &excl);
        }
    }
    r.export_host_profile(&cli);
}
