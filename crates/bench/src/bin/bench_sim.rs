//! Tracked wall-clock benchmark baseline: times the full quick suite under
//! every execution mode and writes `BENCH_sim.json` (wall-clock seconds,
//! host events processed, and events/sec per run, plus totals).
//!
//! The JSON is a *host-performance* artifact for catching simulator
//! slowdowns across commits; simulated results (cycles, miss rates) are
//! reported by the figure binaries and EXPERIMENTS.md.
//!
//! Usage: `bench_sim [--out PATH] [--iters N] [--threads K] [--scaling]
//!                   [--compare BASELINE [--tolerance PCT]]
//!                   [--host-profile [DIR]] [--quiet]`
//!   --out PATH        output file (default: BENCH_sim.json; not written in
//!                     compare mode unless given explicitly)
//!   --iters N         timed iterations per run; minimum wall time is kept
//!                     (default: 3)
//!   --threads K       run the matrix on K intra-run workers (the
//!                     conservative parallel engine; default 0 = serial)
//!   --scaling         also measure the parallel-engine scaling matrix
//!                     (events/sec vs worker count at 16/64/128/256 nodes)
//!                     and record it under "scaling" in the JSON; rows that
//!                     would oversubscribe the host (sim threads > host
//!                     cpus) are skipped, and every kept row does one
//!                     untimed profiled run to record its worker-imbalance
//!                     ratio
//!   --compare PATH    re-measure and compare events/sec against a baseline
//!                     JSON written by this tool; exits nonzero if any run
//!                     (or the total) regresses by more than the tolerance.
//!                     Warns when the baseline was measured on a host with
//!                     a different cpu count (cross-host numbers are
//!                     informational, not a like-for-like gate). With
//!                     `--scaling`, also warns (never fails) when a scaling
//!                     row's imbalance ratio regressed by more than 25%
//!   --tolerance PCT   allowed events/sec regression in percent for
//!                     `--compare` (default: 15)
//!   --host-profile [DIR]  do one extra untimed profiled run per matrix
//!                     case (timed runs stay unprofiled), attach a "host"
//!                     summary to each JSON row, and — when DIR is given —
//!                     export the full per-worker profiles as
//!                     DIR/host_profile.json
//!   --quiet           silence progress narration on stderr
//!
//! Profiled runs are bit-identical to unprofiled ones, so the extra run
//! never perturbs the recorded simulated numbers.

use std::time::Instant;

use slipstream_bench::write_host_profile_json;
use slipstream_core::{
    host_note, run, run_full, ArSyncMode, ExecMode, HostProfile, HostProfileData, RunResult,
    RunSpec, SlipstreamConfig, Workload,
};
use slipstream_workloads::quick_suite;

struct Case {
    name: String,
    workload: Box<dyn Workload>,
    spec: RunSpec,
    mode: &'static str,
}

struct Measured {
    name: String,
    workload: String,
    mode: &'static str,
    nodes: u16,
    wall_s: f64,
    events: u64,
    exec_cycles: u64,
    /// Host profile from one extra untimed run (`--host-profile` only).
    profile: Option<HostProfileData>,
}

/// The benchmark matrix: every quick-suite workload under every execution
/// mode (single, double, slipstream, slipstream+si), 4 nodes each, so a
/// hot-path regression in any mode-specific machinery (pair bookkeeping,
/// token protocol, self-invalidation sweeps) is visible in the baseline.
fn cases(threads: u16) -> Vec<Case> {
    let si = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);
    let modes: [(&'static str, &dyn Fn() -> RunSpec); 4] = [
        ("single", &|| RunSpec::new(4, ExecMode::Single)),
        ("double", &|| RunSpec::new(4, ExecMode::Double)),
        ("slipstream", &|| RunSpec::new(4, ExecMode::Slipstream)),
        ("slipstream+si", &|| {
            RunSpec::new(4, ExecMode::Slipstream).with_slip(si)
        }),
    ];
    let mut out = Vec::new();
    for (mode, mk_spec) in modes {
        for workload in quick_suite() {
            let tag = workload.name().to_ascii_lowercase().replace('-', "_");
            out.push(Case {
                name: format!("{tag}_quick_{}_4", mode.replace('+', "_")),
                workload,
                spec: mk_spec().with_threads(threads),
                mode,
            });
        }
    }
    out
}

/// One row of the parallel-engine scaling matrix.
struct ScalingRow {
    workload: String,
    nodes: u16,
    threads: u16,
    wall_s: f64,
    events: u64,
    /// Worker load-imbalance ratio (max/mean busy time) from one extra
    /// untimed profiled run.
    imbalance: f64,
}

impl ScalingRow {
    /// The row's label in the JSON (`"case"`, deliberately not `"name"`,
    /// so it stays out of the events/sec regression gate).
    fn case(&self) -> String {
        format!("scaling_{}_{}n_{}t", self.workload.to_ascii_lowercase(), self.nodes, self.threads)
    }
}

/// One extra run of `spec` with host profiling on. Profiled runs are
/// bit-identical to unprofiled ones; this exists purely to collect the
/// host-side telemetry.
fn profile_run(w: &dyn Workload, spec: &RunSpec) -> HostProfileData {
    let spec = spec.clone().with_host_profile(HostProfile::enabled());
    run_full(w, &spec).profile.expect("profiling was enabled")
}

/// Measures the conservative parallel engine's throughput as the worker
/// count grows, at CMP counts where partitioning has room to help. The
/// workload (quick SOR, slipstream mode) is fixed so rows differ only in
/// `nodes` × `threads`; `threads = 1` is the parallel engine on one
/// worker, i.e. the engine's own baseline (its results are bit-identical
/// for every worker count, so the rows time identical simulations).
fn scaling_matrix(iters: u32, profiles: &mut Vec<(String, HostProfileData)>) -> Vec<ScalingRow> {
    let workload = quick_suite()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case("SOR"))
        .expect("quick suite has SOR");
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rows = Vec::new();
    for nodes in [16u16, 64, 128, 256] {
        for threads in [1u16, 2, 4, 8] {
            // Oversubscribed rows (more PDES workers than host cpus) time
            // scheduler thrash, not engine scaling; skip them so the
            // recorded matrix only holds meaningful points.
            if usize::from(threads) > host_cpus {
                host_note!(
                    "  [skipping sor @{nodes} CMPs x{threads} workers: host has {host_cpus} \
                     cpu(s); oversubscribed rows measure scheduling noise, not PDES scaling]"
                );
                continue;
            }
            let spec = RunSpec::new(nodes, ExecMode::Slipstream).with_threads(threads);
            let mut result: RunResult = run(workload.as_ref(), &spec);
            let mut wall_s = f64::INFINITY;
            for _ in 0..iters.max(1) {
                let start = Instant::now();
                result = run(workload.as_ref(), &spec);
                wall_s = wall_s.min(start.elapsed().as_secs_f64());
            }
            // One untimed profiled run per row: the imbalance ratio is part
            // of the scaling record (and the profile is exported when
            // --host-profile DIR is given).
            let profile = profile_run(workload.as_ref(), &spec);
            let row = ScalingRow {
                workload: workload.name().to_string(),
                nodes,
                threads,
                wall_s,
                events: result.host_events,
                imbalance: profile.imbalance_ratio(),
            };
            host_note!(
                "  [scaling sor @{nodes:>3} CMPs x{threads} workers {:>9.3} ms  \
                 {:>12.0} events/s  imbalance {:.2}]",
                wall_s * 1e3,
                events_per_sec(result.host_events, wall_s),
                row.imbalance
            );
            profiles.push((row.case(), profile));
            rows.push(row);
        }
    }
    rows
}

/// Run one case `iters` times (after an untimed warm-up) and keep the
/// fastest wall time; the simulator is deterministic, so every iteration
/// returns the identical `RunResult`. With `profile` set, one extra
/// untimed profiled run collects host telemetry (timed runs stay
/// unprofiled so the baseline numbers measure the production path).
fn measure(case: &Case, iters: u32, profile: bool) -> Measured {
    let mut result: RunResult = run(case.workload.as_ref(), &case.spec);
    let mut wall_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        result = run(case.workload.as_ref(), &case.spec);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
    }
    Measured {
        name: case.name.clone(),
        workload: case.workload.name().to_string(),
        mode: case.mode,
        nodes: case.spec.nodes,
        wall_s,
        events: result.host_events,
        exec_cycles: result.exec_cycles,
        profile: profile.then(|| profile_run(case.workload.as_ref(), &case.spec)),
    }
}

fn events_per_sec(events: u64, wall_s: f64) -> f64 {
    if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 }
}

/// Extracts the `"name"`/`"events_per_sec"` pairs (and the total) from a
/// baseline written by this tool. The schema is our own line-oriented
/// output, so a string scan is all the parsing needed — no JSON dependency.
fn parse_baseline(text: &str) -> (Vec<(String, f64)>, Option<f64>) {
    let mut runs = Vec::new();
    let mut total = None;
    for line in text.lines() {
        if line.contains("\"total\"") {
            total = num_field(line, "events_per_sec");
        } else if let (Some(name), Some(eps)) =
            (str_field(line, "name"), num_field(line, "events_per_sec"))
        {
            runs.push((name, eps));
        }
    }
    (runs, total)
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the `"case"`/`"imbalance"` pairs of the baseline's scaling
/// rows (for the imbalance warn — never a gate).
fn parse_baseline_scaling(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|l| Some((str_field(l, "case")?, num_field(l, "imbalance")?)))
        .collect()
}

/// The `host_cpus` the baseline was measured on, if recorded.
fn baseline_host_cpus(text: &str) -> Option<usize> {
    text.lines()
        .find(|l| l.contains("\"host_cpus\""))
        .and_then(|l| num_field(l, "host_cpus"))
        .map(|n| n as usize)
}

/// Compares fresh measurements against a baseline. Returns the number of
/// regressions beyond `tolerance_pct`; new runs absent from the baseline
/// are reported but never fail the gate (the baseline just needs
/// refreshing), while baseline runs that disappeared do fail it.
fn compare(measured: &[Measured], baseline: &str, tolerance_pct: f64, host_cpus: usize) -> usize {
    let (base_runs, base_total) = parse_baseline(baseline);
    if base_runs.is_empty() {
        eprintln!("baseline has no runs; was it written by bench_sim?");
        return 1;
    }
    let cross_host = match baseline_host_cpus(baseline) {
        Some(base_cpus) if base_cpus != host_cpus => {
            eprintln!(
                "  WARNING: baseline was measured on a {base_cpus}-cpu host, this host has \
                 {host_cpus} cpus; treat deltas as informational, not a like-for-like gate"
            );
            true
        }
        None => {
            eprintln!(
                "  WARNING: baseline records no host_cpus; cannot confirm it came from a \
                 comparable host"
            );
            true
        }
        _ => false,
    };
    let annot = if cross_host { " [cross-host]" } else { "" };
    let mut failures = 0;
    for (name, base_eps) in &base_runs {
        let Some(m) = measured.iter().find(|m| &m.name == name) else {
            eprintln!("  FAIL {name:<32} present in baseline but no longer measured");
            failures += 1;
            continue;
        };
        let eps = events_per_sec(m.events, m.wall_s);
        let delta_pct = (eps / base_eps - 1.0) * 100.0;
        let ok = delta_pct >= -tolerance_pct;
        eprintln!(
            "  {} {name:<32} {base_eps:>12.0} -> {eps:>12.0} events/s ({delta_pct:+6.1}%){annot}",
            if ok { "ok  " } else { "FAIL" },
        );
        if !ok {
            failures += 1;
        }
    }
    for m in measured {
        if !base_runs.iter().any(|(name, _)| name == &m.name) {
            eprintln!("  new  {:<32} (not in baseline)", m.name);
        }
    }
    let total_events: u64 = measured.iter().map(|m| m.events).sum();
    let total_wall: f64 = measured.iter().map(|m| m.wall_s).sum();
    if let Some(base_eps) = base_total {
        let eps = events_per_sec(total_events, total_wall);
        let delta_pct = (eps / base_eps - 1.0) * 100.0;
        let ok = delta_pct >= -tolerance_pct;
        eprintln!(
            "  {} {:<32} {base_eps:>12.0} -> {eps:>12.0} events/s ({delta_pct:+6.1}%){annot}",
            if ok { "ok  " } else { "FAIL" },
            "TOTAL",
        );
        if !ok {
            failures += 1;
        }
    }
    failures
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut iters: u32 = 3;
    let mut threads: u16 = 0;
    let mut scaling = false;
    let mut compare_path: Option<String> = None;
    let mut tolerance_pct: f64 = 15.0;
    let mut host_profile = false;
    let mut host_dir: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a count")
                    .parse()
                    .expect("--iters needs an integer")
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a worker count")
                    .parse()
                    .expect("--threads needs an integer")
            }
            "--scaling" => scaling = true,
            "--compare" => {
                compare_path = Some(args.next().expect("--compare needs a baseline path"))
            }
            "--tolerance" => {
                tolerance_pct = args
                    .next()
                    .expect("--tolerance needs a percentage")
                    .parse()
                    .expect("--tolerance needs a number")
            }
            "--host-profile" => {
                host_profile = true;
                // The export directory is optional: a following token that
                // isn't a flag is the destination.
                if args.peek().is_some_and(|v| !v.starts_with('-')) {
                    host_dir = args.next();
                }
            }
            "--quiet" => slipstream_core::telemetry::set_quiet(true),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_sim [--out PATH] [--iters N] [--threads K] [--scaling] \
                     [--compare BASELINE [--tolerance PCT]] [--host-profile [DIR]] [--quiet]"
                );
                std::process::exit(2);
            }
        }
    }

    let measured: Vec<Measured> = cases(threads)
        .iter()
        .map(|c| {
            let m = measure(c, iters, host_profile);
            host_note!(
                "  [{:<32} {:>9.3} ms  {:>9} events  {:>12.0} events/s]",
                m.name,
                m.wall_s * 1e3,
                m.events,
                events_per_sec(m.events, m.wall_s)
            );
            m
        })
        .collect();

    let total_wall: f64 = measured.iter().map(|m| m.wall_s).sum();
    let total_events: u64 = measured.iter().map(|m| m.events).sum();
    let host_cpus =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Scaling runs before compare so its imbalance ratios can be checked
    // against the baseline's.
    let mut scaling_profiles: Vec<(String, HostProfileData)> = Vec::new();
    let scaling_rows =
        if scaling { scaling_matrix(iters, &mut scaling_profiles) } else { Vec::new() };

    // Export the collected host profiles (case profiles when --host-profile,
    // scaling profiles always collected with --scaling) before any
    // compare-mode early exit.
    let named: Vec<(String, &HostProfileData)> = measured
        .iter()
        .filter_map(|m| m.profile.as_ref().map(|p| (m.name.clone(), p)))
        .chain(scaling_profiles.iter().map(|(n, p)| (n.clone(), p)))
        .collect();
    if host_profile {
        for (name, p) in &named {
            host_note!("host profile {name}:\n{}", p.render_table());
        }
    }
    if let Some(dir) = &host_dir {
        let path = write_host_profile_json(dir, &named);
        eprintln!("wrote {path} ({} runs)", named.len());
    }

    if let Some(baseline_path) = &compare_path {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading {baseline_path}: {e}"));
        eprintln!("comparing against {baseline_path} (tolerance {tolerance_pct}%):");
        if threads > 0 {
            eprintln!(
                "  note: measuring with --threads {threads}; a serial baseline's events/sec \
                 are from a different engine configuration"
            );
        }
        let failures = compare(&measured, &baseline, tolerance_pct, host_cpus);
        // Worker imbalance is noisy host telemetry, so a regression warns
        // but never fails the gate.
        let base_scaling = parse_baseline_scaling(&baseline);
        for r in &scaling_rows {
            let case = r.case();
            if let Some((_, base)) = base_scaling.iter().find(|(c, _)| c == &case) {
                if *base > 0.0 && r.imbalance > base * 1.25 {
                    eprintln!(
                        "  WARN {case:<32} imbalance {base:.2} -> {:.2} (> +25%: PDES workers \
                         are less balanced; informational, not a gate)",
                        r.imbalance
                    );
                }
            }
        }
        if failures > 0 {
            println!("{failures} run(s) regressed by more than {tolerance_pct}%");
            std::process::exit(1);
        }
        println!("no events/sec regression beyond {tolerance_pct}% in any run");
        if out_path.is_none() {
            return; // compare mode only rewrites the baseline on request
        }
    }

    // Hand-written JSON: the schema is flat and fully under our control, so
    // no serialization dependency is warranted.
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_sim.json"));
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"slipstream-bench-sim/3\",\n");
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, m) in measured.iter().enumerate() {
        // Host summary from the extra profiled run (--host-profile). Key
        // names stay distinct from the gate's "name"/"events_per_sec"
        // scan, so the summary can never enter the regression comparison.
        let host = m.profile.as_ref().map_or_else(String::new, |p| {
            let busy_ns = p.workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
            let wait_ns = p.workers.iter().map(|w| w.wait_ns).max().unwrap_or(0);
            format!(
                ", \"host\": {{\"workers\": {}, \"imbalance\": {:.4}, \
                 \"busy_s\": {:.6}, \"wait_s\": {:.6}}}",
                p.workers.len(),
                p.imbalance_ratio(),
                busy_ns as f64 / 1e9,
                wait_ns as f64 / 1e9
            )
        });
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \
             \"nodes\": {}, \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"exec_cycles\": {}{}}}{}\n",
            m.name,
            m.workload,
            m.mode,
            m.nodes,
            m.wall_s,
            m.events,
            events_per_sec(m.events, m.wall_s),
            m.exec_cycles,
            host,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Scaling rows deliberately use "case" (not "name") as their label key:
    // parse_baseline's line scanner only treats "name" + "events_per_sec"
    // lines as comparable runs, so scaling rows never enter the regression
    // gate (they measure host parallelism, not single-engine throughput).
    json.push_str("  \"scaling\": [\n");
    for (i, r) in scaling_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"workload\": \"{}\", \"nodes\": {}, \
             \"sim_threads\": {}, \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"imbalance\": {:.4}}}{}\n",
            r.case(),
            r.workload,
            r.nodes,
            r.threads,
            r.wall_s,
            r.events,
            events_per_sec(r.events, r.wall_s),
            r.imbalance,
            if i + 1 < scaling_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}}}\n",
        total_wall,
        total_events,
        events_per_sec(total_events, total_wall)
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({} runs, {total_events} events)", measured.len());
}
