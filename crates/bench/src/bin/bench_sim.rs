//! Tracked wall-clock benchmark baseline: times a fixed set of
//! representative quick-suite runs and writes `BENCH_sim.json` (wall-clock
//! seconds, host events processed, and events/sec per run, plus totals).
//!
//! The JSON is a *host-performance* artifact for catching simulator
//! slowdowns across commits; simulated results (cycles, miss rates) are
//! reported by the figure binaries and EXPERIMENTS.md.
//!
//! Usage: `bench_sim [--out PATH] [--iters N]`
//!   --out PATH   output file (default: BENCH_sim.json)
//!   --iters N    timed iterations per run; minimum wall time is kept
//!                (default: 3)

use std::time::Instant;

use slipstream_core::{run, ArSyncMode, ExecMode, RunResult, RunSpec, SlipstreamConfig, Workload};
use slipstream_workloads::{Mg, Sor, WaterNs};

struct Case {
    name: &'static str,
    workload: Box<dyn Workload>,
    spec: RunSpec,
    mode: &'static str,
}

struct Measured {
    name: &'static str,
    workload: String,
    mode: &'static str,
    nodes: u16,
    wall_s: f64,
    events: u64,
    exec_cycles: u64,
}

/// Run one case `iters` times (after an untimed warm-up) and keep the
/// fastest wall time; the simulator is deterministic, so every iteration
/// returns the identical `RunResult`.
fn measure(case: &Case, iters: u32) -> Measured {
    let mut result: RunResult = run(case.workload.as_ref(), &case.spec);
    let mut wall_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        result = run(case.workload.as_ref(), &case.spec);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
    }
    Measured {
        name: case.name,
        workload: case.workload.name().to_string(),
        mode: case.mode,
        nodes: case.spec.nodes,
        wall_s,
        events: result.host_events,
        exec_cycles: result.exec_cycles,
    }
}

fn events_per_sec(events: u64, wall_s: f64) -> f64 {
    if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 }
}

fn main() {
    let mut out_path = String::from("BENCH_sim.json");
    let mut iters: u32 = 3;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a count")
                    .parse()
                    .expect("--iters needs an integer")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_sim [--out PATH] [--iters N]");
                std::process::exit(2);
            }
        }
    }

    let si = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);
    let cases = [
        Case {
            name: "sor_quick_single_4",
            workload: Box::new(Sor::quick()),
            spec: RunSpec::new(4, ExecMode::Single),
            mode: "single",
        },
        Case {
            name: "sor_quick_slipstream_4",
            workload: Box::new(Sor::quick()),
            spec: RunSpec::new(4, ExecMode::Slipstream),
            mode: "slipstream",
        },
        Case {
            name: "mg_quick_slipstream_si_4",
            workload: Box::new(Mg::quick()),
            spec: RunSpec::new(4, ExecMode::Slipstream).with_slip(si),
            mode: "slipstream+si",
        },
        Case {
            name: "water_ns_quick_double_4",
            workload: Box::new(WaterNs::quick()),
            spec: RunSpec::new(4, ExecMode::Double),
            mode: "double",
        },
    ];

    let measured: Vec<Measured> = cases
        .iter()
        .map(|c| {
            let m = measure(c, iters);
            eprintln!(
                "  [{:<26} {:>9.3} ms  {:>9} events  {:>12.0} events/s]",
                m.name,
                m.wall_s * 1e3,
                m.events,
                events_per_sec(m.events, m.wall_s)
            );
            m
        })
        .collect();

    let total_wall: f64 = measured.iter().map(|m| m.wall_s).sum();
    let total_events: u64 = measured.iter().map(|m| m.events).sum();
    let host_cpus =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Hand-written JSON: the schema is flat and fully under our control, so
    // no serialization dependency is warranted.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"slipstream-bench-sim/1\",\n");
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, m) in measured.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"mode\": \"{}\", \
             \"nodes\": {}, \"wall_s\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"exec_cycles\": {}}}{}\n",
            m.name,
            m.workload,
            m.mode,
            m.nodes,
            m.wall_s,
            m.events,
            events_per_sec(m.events, m.wall_s),
            m.exec_cycles,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"total\": {{\"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}}}\n",
        total_wall,
        total_events,
        events_per_sec(total_events, total_wall)
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path} ({} runs, {total_events} events)", measured.len());
}
