//! Figure 1: speedup of two tasks per CMP (double mode) relative to one
//! task per CMP (single mode), for 2-16 CMPs.

use slipstream_bench::{print_header, print_row, Cli, Runner};

fn main() {
    let cli = Cli::parse();
    let sweep = cli.sweep();
    let mut r = Runner::new();
    println!("# Figure 1: double-mode speedup over single mode");
    print_header("benchmark", &sweep.iter().map(|n| format!("{n}CMP")).collect::<Vec<_>>());
    for w in cli.suite() {
        let cells: Vec<f64> = sweep
            .iter()
            .map(|&n| {
                let single = r.single(w.as_ref(), n);
                r.double(w.as_ref(), n).speedup_over(&single)
            })
            .collect();
        print_row(w.name(), &cells);
    }
}
