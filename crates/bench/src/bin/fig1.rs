//! Figure 1: speedup of two tasks per CMP (double mode) relative to one
//! task per CMP (single mode), for 2-16 CMPs.

use slipstream_bench::{print_header, print_row, Cli, Plan, Runner};
use slipstream_core::{ExecMode, RunSpec};

fn main() {
    let cli = Cli::parse();
    let sweep = cli.sweep();
    let suite = cli.suite();

    let mut plan = Plan::new();
    for w in &suite {
        for &n in &sweep {
            plan.add(w.as_ref(), RunSpec::new(n, ExecMode::Single));
            plan.add(w.as_ref(), RunSpec::new(n, ExecMode::Double));
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 1: double-mode speedup over single mode");
    print_header("benchmark", &sweep.iter().map(|n| format!("{n}CMP")).collect::<Vec<_>>());
    for w in &suite {
        let cells: Vec<f64> = sweep
            .iter()
            .map(|&n| {
                let single = r.single(w.as_ref(), n);
                r.double(w.as_ref(), n).speedup_over(&single)
            })
            .collect();
        print_row(w.name(), &cells);
    }
    r.export_host_profile(&cli);
}
