//! `predict` — the static sharing-class & communication-bound analyzer,
//! stand-alone (`slipstream-predict`).
//!
//! ```text
//! predict [--quick] [--bench NAME] [--tasks N,N,...] [--json]
//! predict --validate [--quick] [--bench NAME] [--tasks N,N,...] [--json]
//! predict --corpus N [--seed S] [--validate] [--json]
//! ```
//!
//! Without `--validate`, the analyzer runs alone — no simulation at all:
//! per-region sharing classes, static traffic-bound windows for a
//! single-mode run, the critical-path cycle estimate, and any `SP*`
//! performance lints, for every workload in the suite (or `--bench NAME`).
//! `--validate` additionally runs each configuration once, instrumented,
//! and checks the measurements against the bounds
//! (`slipstream_check::cross_validate`) — the same harness the `fuzz`
//! pipeline applies to the whole generated corpus. `--corpus N` points
//! both at the first `N` generated corpus programs instead of the
//! workload suite.
//!
//! Exit status: 0 clean, 1 validation failures, 2 usage error.

use std::process::ExitCode;

use slipstream_check::{
    analyze, cross_validate, instantiate_workload, Analysis, AnalysisConfig,
};
use slipstream_core::{MachineConfig, Workload};
use slipstream_gen::corpus::{corpus_entry, CORPUS_COUNT, CORPUS_SEED};
use slipstream_workloads::{by_name, paper_suite, quick_suite};

struct Cli {
    quick: bool,
    bench: Option<String>,
    tasks: Vec<usize>,
    corpus: Option<usize>,
    seed: u64,
    validate: bool,
    json: bool,
}

impl Cli {
    fn parse() -> Result<Cli, String> {
        let mut cli = Cli {
            quick: false,
            bench: None,
            tasks: vec![2, 4],
            corpus: None,
            seed: CORPUS_SEED,
            validate: false,
            json: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--validate" => cli.validate = true,
                "--json" => cli.json = true,
                "--bench" => cli.bench = Some(value("--bench")?),
                "--corpus" => {
                    let n: usize =
                        value("--corpus")?.parse().map_err(|e| format!("--corpus: {e}"))?;
                    cli.corpus = Some(n.min(CORPUS_COUNT));
                }
                "--seed" => {
                    let s = value("--seed")?;
                    cli.seed = if let Some(hex) = s.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?
                    } else {
                        s.parse().map_err(|e| format!("--seed: {e}"))?
                    };
                }
                "--tasks" => {
                    cli.tasks = value("--tasks")?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--tasks: {e}")))
                        .collect::<Result<_, _>>()?;
                    if cli.tasks.is_empty() {
                        return Err("--tasks needs at least one count".to_string());
                    }
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --quick --bench NAME --tasks N,N \
                         --corpus N --seed S --validate --json"
                    ))
                }
            }
        }
        Ok(cli)
    }
}

/// The machine configuration the runner would pick for this workload —
/// the analyzer only needs its line size and page size.
fn machine_for(w: &dyn Workload, ntasks: usize) -> MachineConfig {
    let nodes = ntasks.max(1) as u16;
    if w.small_l2() {
        MachineConfig::water(nodes)
    } else {
        MachineConfig::with_nodes(nodes)
    }
}

/// Analyzer output for one `(workload, ntasks)` as a JSON object.
fn analysis_json(name: &str, ntasks: usize, a: &Analysis) -> String {
    let mut s = String::with_capacity(512);
    s.push_str(&format!(
        "{{\"bench\":\"{}\",\"ntasks\":{ntasks},\"phases\":{},\"predicted_cycles\":{}",
        slipstream_check::json_escape(name),
        a.phases,
        a.cost.total_cycles
    ));
    let b = &a.bounds;
    s.push_str(&format!(
        ",\"bounds\":{{\"accesses\":{},\"loads\":{},\"stores\":{},\"first_touches\":{},\
         \"shared_first_touches\":{},\"shared_accesses\":{},\"max_invalidations\":{},\
         \"max_interventions\":{}}}",
        b.accesses,
        b.loads,
        b.stores,
        b.first_touches,
        b.shared_first_touches,
        b.shared_accesses,
        b.max_invalidations,
        b.max_interventions
    ));
    s.push_str(",\"regions\":[");
    for (i, r) in a.regions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"class\":\"{}\",\"readers\":{},\"writers\":{},\
             \"loads\":{},\"stores\":{}}}",
            slipstream_check::json_escape(&r.name),
            r.class.name(),
            r.reader_tasks,
            r.writer_tasks,
            r.loads,
            r.stores
        ));
    }
    s.push_str("],\"lints\":[");
    for (i, d) in a.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&d.to_json());
    }
    s.push_str("]}");
    s
}

/// Analyze (and optionally validate) one workload at one task count.
/// Returns false on a validation failure.
fn run_one(cli: &Cli, w: &dyn Workload, ntasks: usize) -> bool {
    let cfg = machine_for(w, ntasks);
    let acfg = AnalysisConfig { line_bytes: cfg.l2.line_bytes, ..AnalysisConfig::default() };
    let set = instantiate_workload(w, cfg.page_bytes, ntasks, false);
    let a = analyze(&set, &acfg);

    if cli.json {
        println!("{}", analysis_json(w.name(), ntasks, &a));
    } else {
        println!(
            "{:<24} ntasks={ntasks:<3} phases={:<4} predicted={:<10} \
             requests=[{}, {}] inv<={} int<={} lints={}",
            w.name(),
            a.phases,
            a.cost.total_cycles,
            a.bounds.first_touches,
            a.bounds.accesses,
            a.bounds.max_invalidations,
            a.bounds.max_interventions,
            a.diagnostics.len()
        );
        for r in &a.regions {
            println!(
                "    {:<28} {:<15} readers={:<3} writers={:<3} loads={:<8} stores={}",
                r.name,
                r.class.name(),
                r.reader_tasks,
                r.writer_tasks,
                r.loads,
                r.stores
            );
        }
        for d in &a.diagnostics {
            println!("    {d}");
        }
    }

    if !cli.validate {
        return true;
    }
    let report = cross_validate(w, ntasks);
    if cli.json {
        println!("{}", report.to_json());
    } else {
        let verdict = if report.ok {
            "within bounds".to_string()
        } else {
            report.first_failure().unwrap_or_else(|| "FAIL".to_string())
        };
        println!(
            "    validated: cycles={} predicted={} -> {}",
            report.exec_cycles, report.cost.total_cycles, verdict
        );
    }
    report.ok
}

fn main() -> ExitCode {
    let cli = match Cli::parse() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("predict: {e}");
            return ExitCode::from(2);
        }
    };

    let mut ok = true;
    let mut configs = 0usize;
    if let Some(n) = cli.corpus {
        for i in 0..n {
            let w = corpus_entry(cli.seed, i);
            for &ntasks in &cli.tasks {
                ok &= run_one(&cli, &w, ntasks);
                configs += 1;
            }
        }
    } else {
        let suite: Result<Vec<Box<dyn Workload>>, String> = match &cli.bench {
            Some(name) => by_name(name, cli.quick)
                .map(|w| vec![w])
                .ok_or_else(|| format!("unknown benchmark `{name}`")),
            None => Ok(if cli.quick { quick_suite() } else { paper_suite() }),
        };
        let suite = match suite {
            Ok(s) => s,
            Err(e) => {
                eprintln!("predict: {e}");
                return ExitCode::from(2);
            }
        };
        for w in suite {
            for &ntasks in &cli.tasks {
                ok &= run_one(&cli, w.as_ref(), ntasks);
                configs += 1;
            }
        }
    }
    if !cli.json {
        println!(
            "predict: {configs} config(s) analyzed{}",
            if cli.validate {
                if ok { ", all measurements within static bounds" } else { ", VALIDATION FAILURES" }
            } else {
                ""
            }
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
