//! Figure 4: speedup of single-mode execution over sequential execution
//! for 2-16 CMPs.

use slipstream_bench::{print_header, print_row, Cli, Plan, Runner};
use slipstream_core::{ExecMode, RunSpec};

fn main() {
    let cli = Cli::parse();
    let sweep = cli.sweep();
    let suite = cli.suite();

    let mut plan = Plan::new();
    for w in &suite {
        // The sequential baseline (`run_sequential`) is exactly a
        // single-mode run on one node, so it joins the grid like any cell.
        plan.add(w.as_ref(), RunSpec::new(1, ExecMode::Single));
        for &n in &sweep {
            plan.add(w.as_ref(), RunSpec::new(n, ExecMode::Single));
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 4: single-mode speedup over sequential execution");
    print_header("benchmark", &sweep.iter().map(|n| format!("{n}CMP")).collect::<Vec<_>>());
    for w in &suite {
        let seq = r.single(w.as_ref(), 1);
        eprintln!("  [sequential {}: {} cycles]", w.name(), seq.exec_cycles);
        let cells: Vec<f64> = sweep
            .iter()
            .map(|&n| r.single(w.as_ref(), n).speedup_over(&seq))
            .collect();
        print_row(w.name(), &cells);
    }
    r.export_host_profile(&cli);
}
