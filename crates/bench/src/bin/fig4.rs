//! Figure 4: speedup of single-mode execution over sequential execution
//! for 2-16 CMPs.

use slipstream_bench::{print_header, print_row, Cli, Runner};
use slipstream_core::run_sequential;

fn main() {
    let cli = Cli::parse();
    let sweep = cli.sweep();
    let mut r = Runner::new();
    println!("# Figure 4: single-mode speedup over sequential execution");
    print_header("benchmark", &sweep.iter().map(|n| format!("{n}CMP")).collect::<Vec<_>>());
    for w in cli.suite() {
        let seq = run_sequential(w.as_ref());
        eprintln!("  [sequential {}: {} cycles]", w.name(), seq.exec_cycles);
        let cells: Vec<f64> = sweep
            .iter()
            .map(|&n| r.single(w.as_ref(), n).speedup_over(&seq))
            .collect();
        print_row(w.name(), &cells);
    }
}
