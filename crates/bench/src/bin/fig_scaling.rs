//! Scaling study (extension): simulated speedup and slipstream/SI benefit
//! as the machine grows from 4 to 256 nodes, on weak-scaled SOR (the grid
//! keeps 4 rows per node, so every node has work at every size), plus the
//! limited-pointer directory ablation.
//!
//! The paper stops at 16 CMPs; this figure exercises the compact
//! [`SharerSet`](slipstream_kernel::SharerSet) directory representation
//! beyond the old 128-node cap. Each node count gets its own 1-node
//! sequential baseline of the *same* problem size, so the speedups are
//! honest weak-scaling numbers. The second section switches the directory
//! to `DirScheme::LimitedPointer` (overflow = broadcast) and reports how
//! protocol traffic diverges from the default full-map scheme.

use slipstream_bench::{print_header, Cli, Plan, Renamed, Runner};
use slipstream_core::{
    ArSyncMode, DirScheme, ExecMode, RunSpec, SlipstreamConfig, Workload,
};
use slipstream_workloads::Sor;

/// Pointer budget for the limited-pointer ablation: small enough that
/// boundary-row re-reads overflow it, matching the DiriB schemes the
/// directory literature studies.
const ABLATION_PTRS: u8 = 1;

fn main() {
    let cli = Cli::parse();
    let sweep = cli.nodes.clone().unwrap_or_else(|| vec![4, 16, 64, 128, 256]);
    let si = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);
    let lp = DirScheme::limited(ABLATION_PTRS);

    // Weak scaling: one SOR instance per node count, each under a distinct
    // name so the run cache never conflates sizes.
    let sors: Vec<(u16, Renamed<Sor>)> = sweep
        .iter()
        .map(|&n| {
            let mut w = Sor::scaled(n);
            if cli.quick {
                // CI smoke: half the rows per node, one fewer sweep pair.
                w.n = (2 * u64::from(n)).max(128);
                w.iters = 2;
            }
            (n, Renamed::new(format!("SOR{}", w.n), w))
        })
        .collect();

    let mut plan = Plan::new();
    for (n, w) in &sors {
        plan.add(w, RunSpec::new(1, ExecMode::Single));
        plan.add(w, RunSpec::new(*n, ExecMode::Single));
        plan.add(w, RunSpec::new(*n, ExecMode::Slipstream));
        plan.add(w, RunSpec::new(*n, ExecMode::Slipstream).with_slip(si));
        // Limited-pointer ablation: the write-heavy single mode, where
        // invalidation fan-out is on the critical path.
        plan.add(w, RunSpec::new(*n, ExecMode::Single).with_dir_scheme(lp));
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Scaling study: weak-scaled SOR, speedup over the 1-node sequential run");
    println!("# (grid rows = 4N; each node count is its own problem size and baseline)");
    print_header(
        "nodes",
        &["grid", "single", "slip", "slip+si", "slip/sgl", "si/slip"]
            .map(String::from),
    );
    for (n, w) in &sors {
        let seq = r.run(w, &RunSpec::new(1, ExecMode::Single));
        let single = r.run(w, &RunSpec::new(*n, ExecMode::Single));
        let slip = r.run(w, &RunSpec::new(*n, ExecMode::Slipstream));
        let slipsi = r.run(w, &RunSpec::new(*n, ExecMode::Slipstream).with_slip(si));
        let s_single = single.speedup_over(&seq);
        let s_slip = slip.speedup_over(&seq);
        let s_si = slipsi.speedup_over(&seq);
        println!(
            "{:<12} {:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            n,
            format!("{0}x{0}", w.name().trim_start_matches("SOR")),
            s_single,
            s_slip,
            s_si,
            s_slip / s_single,
            s_si / s_slip,
        );
    }

    println!();
    println!(
        "# Limited-pointer directory ablation: DiriB with {ABLATION_PTRS} pointer(s), \
         overflow = broadcast (single mode)"
    );
    println!("# full-map columns first, then the limited-pointer deltas");
    println!(
        "{:<12} {:>12} {:>10} {:>12} {:>10} {:>10} {:>9}",
        "nodes", "fm_cycles", "fm_inv", "lp_cycles", "lp_inv", "lp_bcast", "cycles%"
    );
    for (n, w) in &sors {
        let fm = r.run(w, &RunSpec::new(*n, ExecMode::Single));
        let l = r.run(w, &RunSpec::new(*n, ExecMode::Single).with_dir_scheme(lp));
        println!(
            "{:<12} {:>12} {:>10} {:>12} {:>10} {:>10} {:>+8.2}%",
            n,
            fm.exec_cycles,
            fm.mem.invalidations_sent,
            l.exec_cycles,
            l.mem.invalidations_sent,
            l.mem.broadcast_invalidations,
            100.0 * (l.exec_cycles as f64 / fm.exec_cycles as f64 - 1.0),
        );
    }
    r.export_host_profile(&cli);
}
