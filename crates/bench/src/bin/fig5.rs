//! Figure 5: speedup of slipstream mode (all four A-R synchronization
//! methods) and double mode, relative to single mode, for 2-16 CMPs.

use slipstream_bench::{print_header, print_row, Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};

fn main() {
    let cli = Cli::parse();
    let sweep = cli.sweep();
    let suite = cli.suite();

    let mut plan = Plan::new();
    for w in &suite {
        for &n in &sweep {
            plan.add(w.as_ref(), RunSpec::new(n, ExecMode::Single));
            plan.add(w.as_ref(), RunSpec::new(n, ExecMode::Double));
            for ar in ArSyncMode::ALL {
                plan.add(
                    w.as_ref(),
                    RunSpec::new(n, ExecMode::Slipstream)
                        .with_slip(SlipstreamConfig::prefetch_only(ar)),
                );
            }
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 5: slipstream (L1/L0/G1/G0) and double vs single mode");
    for w in &suite {
        println!("\n## {}", w.name());
        print_header("config", &sweep.iter().map(|n| format!("{n}CMP")).collect::<Vec<_>>());
        let singles: Vec<_> = sweep.iter().map(|&n| r.single(w.as_ref(), n)).collect();
        let cells: Vec<f64> = sweep
            .iter()
            .zip(&singles)
            .map(|(&n, s)| r.double(w.as_ref(), n).speedup_over(s))
            .collect();
        print_row("double", &cells);
        for ar in ArSyncMode::ALL {
            let cells: Vec<f64> = sweep
                .iter()
                .zip(&singles)
                .map(|(&n, s)| {
                    r.slipstream(w.as_ref(), n, SlipstreamConfig::prefetch_only(ar)).speedup_over(s)
                })
                .collect();
            print_row(ar.label(), &cells);
        }
    }
    r.export_host_profile(&cli);
}
