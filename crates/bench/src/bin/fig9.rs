//! Figure 9: transparent-load breakdown — the percentage of A-stream read
//! requests issued as transparent loads, split into those receiving
//! transparent replies and those upgraded to normal loads. One-token
//! global synchronization, 16 CMPs (4 for FFT), as in §4.3.

use slipstream_bench::{Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};

/// The paper focuses on 16 CMPs, except FFT at 4, and excludes LU/Water-SP
/// (no stall time to recover).
fn figure_nodes(cli: &Cli, name: &str) -> Option<u16> {
    if matches!(name, "LU" | "WATER-SP") && !cli.quick {
        return None;
    }
    Some(if name == "FFT" { 4 } else { *cli.sweep().last().unwrap_or(&16) })
}

fn main() {
    let cli = Cli::parse();
    let suite = cli.suite();
    let slip = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);

    let mut plan = Plan::new();
    for w in &suite {
        if let Some(nodes) = figure_nodes(&cli, w.name()) {
            plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Slipstream).with_slip(slip));
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 9: transparent load breakdown (% of A-stream read requests)");
    println!("{:<12} {:>12} {:>14} {:>12}", "benchmark", "transparent", "trans-replies", "upgraded");
    for w in &suite {
        let Some(nodes) = figure_nodes(&cli, w.name()) else { continue };
        let res = r.slipstream(w.as_ref(), nodes, slip);
        let total = res.mem.transparent_pct();
        let trans = total * res.mem.transparent_reply_pct() / 100.0;
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>12.1}",
            w.name(),
            total,
            trans,
            total - trans
        );
    }
    r.export_host_profile(&cli);
}
