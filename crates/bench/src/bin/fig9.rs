//! Figure 9: transparent-load breakdown — the percentage of A-stream read
//! requests issued as transparent loads, split into those receiving
//! transparent replies and those upgraded to normal loads. One-token
//! global synchronization, 16 CMPs (4 for FFT), as in §4.3.

use slipstream_bench::{Cli, Runner};
use slipstream_core::{ArSyncMode, SlipstreamConfig};

fn main() {
    let cli = Cli::parse();
    let mut r = Runner::new();
    println!("# Figure 9: transparent load breakdown (% of A-stream read requests)");
    println!("{:<12} {:>12} {:>14} {:>12}", "benchmark", "transparent", "trans-replies", "upgraded");
    for w in cli.suite() {
        // The paper focuses on 16 CMPs, except FFT at 4, and excludes
        // LU/Water-SP (no stall time to recover).
        if matches!(w.name(), "LU" | "WATER-SP") && !cli.quick {
            continue;
        }
        let nodes = if w.name() == "FFT" { 4 } else { *cli.sweep().last().unwrap_or(&16) };
        let res = r.slipstream(
            w.as_ref(),
            nodes,
            SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal),
        );
        let total = res.mem.transparent_pct();
        let trans = total * res.mem.transparent_reply_pct() / 100.0;
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>12.1}",
            w.name(),
            total,
            trans,
            total - trans
        );
    }
}
