//! Table 2: the benchmark suite and its data-set sizes, plus the derived
//! program characteristics of our access-pattern reimplementations.

use slipstream_bench::Cli;
use slipstream_prog::Layout;

fn main() {
    let cli = Cli::parse();
    println!("# Table 2: benchmarks and data set sizes");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>10}",
        "benchmark", "shared bytes", "ops/task", "barriers", "locks"
    );
    for w in cli.suite() {
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let prog = build(&mut layout, slipstream_prog::InstanceId(0), 0);
        let mut ops = 0u64;
        let mut barriers = 0u64;
        let mut locks = 0u64;
        for op in prog.iter() {
            ops += 1;
            match op {
                slipstream_prog::Op::Barrier(_) => barriers += 1,
                slipstream_prog::Op::Lock(_) => locks += 1,
                _ => {}
            }
        }
        let shared: u64 = layout
            .regions()
            .iter()
            .filter(|r| !matches!(r.kind, slipstream_prog::RegionKind::Private(_)))
            .map(|r| r.bytes)
            .sum();
        println!("{:<12} {:>14} {:>12} {:>12} {:>10}", w.name(), shared, ops, barriers, locks);
    }
}
