//! Figure 6: execution-time breakdown for single (S), double (D), and
//! slipstream (R- and A-stream) modes at 16 CMPs, relative to single mode,
//! using the best prefetch-only A-R synchronization method per benchmark.

use slipstream_bench::{Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ExecMode, RunResult, RunSpec, SlipstreamConfig, StreamRole, TimeBreakdown};

fn pct(b: &TimeBreakdown, base: u64) -> [f64; 5] {
    let f = |x: u64| 100.0 * x as f64 / base as f64;
    [f(b.busy), f(b.mem_stall), f(b.ar_sync), f(b.barrier), f(b.lock)]
}

fn row(label: &str, cells: [f64; 5]) {
    let total: f64 = cells.iter().sum();
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>7.1}");
    }
    println!(" {total:>7.1}");
}

fn main() {
    let cli = Cli::parse();
    let nodes = *cli.sweep().last().expect("at least one node count");
    let suite = cli.suite();

    let mut plan = Plan::new();
    for w in &suite {
        plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Single));
        plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Double));
        for ar in ArSyncMode::ALL {
            plan.add(
                w.as_ref(),
                RunSpec::new(nodes, ExecMode::Slipstream)
                    .with_slip(SlipstreamConfig::prefetch_only(ar)),
            );
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Figure 6: execution time breakdown at {nodes} CMPs (% of single mode)");
    println!("{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}", "", "busy", "stall", "A-R", "barrier", "lock", "total");
    for w in &suite {
        let single = r.single(w.as_ref(), nodes);
        let double = r.double(w.as_ref(), nodes);
        // Best prefetch-only A-R sync method for this benchmark.
        let best: RunResult = ArSyncMode::ALL
            .iter()
            .map(|&ar| r.slipstream(w.as_ref(), nodes, SlipstreamConfig::prefetch_only(ar)))
            .min_by_key(|res| res.exec_cycles)
            .expect("four candidates");
        let base = single.exec_cycles;
        println!("\n## {} (best A-R sync of slipstream run shown)", w.name());
        row("S: single", pct(&single.avg_breakdown(StreamRole::Solo), base));
        row("D: double", pct(&double.avg_breakdown(StreamRole::Solo), base));
        row("R: R-stream", pct(&best.avg_breakdown(StreamRole::R), base));
        row("A: A-stream", pct(&best.avg_breakdown(StreamRole::A), base));
    }
    r.export_host_profile(&cli);
}
