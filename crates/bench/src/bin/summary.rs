//! Headline comparison (§3.4 / abstract): slipstream vs the best of
//! single and double mode at 16 CMPs (FFT: 4), with the best A-R
//! synchronization method per benchmark, prefetching only and with SI.

use slipstream_bench::{Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};

fn headline_nodes(cli: &Cli, name: &str) -> u16 {
    if name == "FFT" { 4 } else { *cli.sweep().last().unwrap_or(&16) }
}

fn main() {
    let cli = Cli::parse();
    let suite = cli.suite();
    let si_slip = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);

    let mut plan = Plan::new();
    for w in &suite {
        let nodes = headline_nodes(&cli, w.name());
        plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Single));
        plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Double));
        for ar in ArSyncMode::ALL {
            plan.add(
                w.as_ref(),
                RunSpec::new(nodes, ExecMode::Slipstream)
                    .with_slip(SlipstreamConfig::prefetch_only(ar)),
            );
        }
        plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Slipstream).with_slip(si_slip));
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Slipstream vs best conventional mode");
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "benchmark", "CMPs", "best-conv", "prefetch", "best-AR", "gain%", "gain+SI%"
    );
    for w in &suite {
        let nodes = headline_nodes(&cli, w.name());
        let best = r.best_conventional(w.as_ref(), nodes) as f64;
        let (best_ar, pf) = ArSyncMode::ALL
            .iter()
            .map(|&ar| (ar, r.slipstream(w.as_ref(), nodes, SlipstreamConfig::prefetch_only(ar))))
            .min_by_key(|(_, res)| res.exec_cycles)
            .expect("four candidates");
        let si = r.slipstream(w.as_ref(), nodes, si_slip);
        println!(
            "{:<12} {:>6} {:>10.0} {:>10.0} {:>8} {:>9.1}% {:>9.1}%",
            w.name(),
            nodes,
            best,
            pf.exec_cycles as f64,
            best_ar.label(),
            100.0 * (best / pf.exec_cycles as f64 - 1.0),
            100.0 * (best / si.exec_cycles as f64 - 1.0),
        );
    }
    r.export_host_profile(&cli);
}
