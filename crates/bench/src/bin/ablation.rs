//! Ablation studies over the slipstream design choices called out in
//! DESIGN.md: exclusive-prefetch conversion, the self-invalidation drain
//! rate, the transparent-load policy, and the A-R token budget.

use slipstream_bench::{Cli, Runner};
use slipstream_core::{ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};

fn main() {
    let cli = Cli::parse();
    let nodes = *cli.sweep().last().unwrap_or(&8);
    let mut r = Runner::new();
    let ar = ArSyncMode::OneTokenGlobal;

    println!("# Ablation 0: migratory-sharing directory optimization (extension)");
    println!("{:<12} {:>12} {:>12} {:>8}", "benchmark", "off", "on", "delta%");
    for w in cli.suite() {
        let off = r.run(w.as_ref(), &RunSpec::new(nodes, ExecMode::Single));
        let mut mc = slipstream_core::MachineConfig::with_nodes(nodes);
        if w.small_l2() {
            mc = slipstream_core::MachineConfig::water(nodes);
        }
        mc.migratory_opt = true;
        let on = r.run(
            w.as_ref(),
            &RunSpec::new(nodes, ExecMode::Single).with_machine(mc),
        );
        println!(
            "{:<12} {:>12} {:>12} {:>7.1}%",
            w.name(),
            off.exec_cycles,
            on.exec_cycles,
            100.0 * (off.exec_cycles as f64 / on.exec_cycles as f64 - 1.0)
        );
    }

    println!("# Ablation 1: exclusive-prefetch conversion (S3.3), {nodes} CMPs");
    println!("{:<12} {:>12} {:>12} {:>8}", "benchmark", "with", "without", "delta%");
    for w in cli.suite() {
        let on = r.slipstream(w.as_ref(), nodes, SlipstreamConfig::prefetch_only(ar));
        let mut cfg = SlipstreamConfig::prefetch_only(ar);
        cfg.exclusive_prefetch = false;
        let off = r.slipstream(w.as_ref(), nodes, cfg);
        println!(
            "{:<12} {:>12} {:>12} {:>7.1}%",
            w.name(),
            on.exec_cycles,
            off.exec_cycles,
            100.0 * (off.exec_cycles as f64 / on.exec_cycles as f64 - 1.0)
        );
    }

    println!("\n# Ablation 2: self-invalidation drain interval (paper: 4 cycles/line)");
    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "benchmark", "1", "4", "16", "64");
    for w in cli.suite() {
        let cells: Vec<String> = [1u64, 4, 16, 64]
            .iter()
            .map(|&iv| {
                let mut cfg = SlipstreamConfig::with_self_invalidation(ar);
                cfg.si_interval = iv;
                format!("{}", r.slipstream(w.as_ref(), nodes, cfg).exec_cycles)
            })
            .collect();
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            w.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    println!("\n# Ablation 3: A-R token budget cap (sessions the A-stream may bank)");
    println!("{:<12} {:>10} {:>10} {:>10}", "benchmark", "cap=1", "cap=2", "uncapped");
    for w in cli.suite() {
        let cells: Vec<String> = [1u32, 2, u32::MAX]
            .iter()
            .map(|&cap| {
                let mut cfg = SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenLocal);
                cfg.max_tokens = cap;
                format!("{}", r.run(w.as_ref(), &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(cfg)).exec_cycles)
            })
            .collect();
        println!("{:<12} {:>10} {:>10} {:>10}", w.name(), cells[0], cells[1], cells[2]);
    }
}
