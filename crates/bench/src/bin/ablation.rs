//! Ablation studies over the slipstream design choices called out in
//! DESIGN.md: exclusive-prefetch conversion, the self-invalidation drain
//! rate, the transparent-load policy, and the A-R token budget.

use slipstream_bench::{Cli, Plan, Runner};
use slipstream_core::{ArSyncMode, ExecMode, MachineConfig, RunSpec, SlipstreamConfig, Workload};

/// Paper machine with the migratory directory optimization switched on,
/// honoring the workload's small-L2 request.
fn migratory_machine(w: &dyn Workload, nodes: u16) -> MachineConfig {
    let mut mc =
        if w.small_l2() { MachineConfig::water(nodes) } else { MachineConfig::with_nodes(nodes) };
    mc.migratory_opt = true;
    mc
}

fn no_excl_prefetch(ar: ArSyncMode) -> SlipstreamConfig {
    let mut cfg = SlipstreamConfig::prefetch_only(ar);
    cfg.exclusive_prefetch = false;
    cfg
}

fn si_with_interval(ar: ArSyncMode, interval: u64) -> SlipstreamConfig {
    let mut cfg = SlipstreamConfig::with_self_invalidation(ar);
    cfg.si_interval = interval;
    cfg
}

fn token_capped(cap: u32) -> SlipstreamConfig {
    let mut cfg = SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenLocal);
    cfg.max_tokens = cap;
    cfg
}

fn main() {
    let cli = Cli::parse();
    let nodes = *cli.sweep().last().unwrap_or(&8);
    let suite = cli.suite();
    let ar = ArSyncMode::OneTokenGlobal;

    let mut plan = Plan::new();
    for w in &suite {
        // Ablation 0: migratory directory optimization.
        plan.add(w.as_ref(), RunSpec::new(nodes, ExecMode::Single));
        plan.add(
            w.as_ref(),
            RunSpec::new(nodes, ExecMode::Single).with_machine(migratory_machine(w.as_ref(), nodes)),
        );
        // Ablation 1: exclusive-prefetch conversion.
        plan.add(
            w.as_ref(),
            RunSpec::new(nodes, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::prefetch_only(ar)),
        );
        plan.add(
            w.as_ref(),
            RunSpec::new(nodes, ExecMode::Slipstream).with_slip(no_excl_prefetch(ar)),
        );
        // Ablation 2: SI drain interval.
        for iv in [1u64, 4, 16, 64] {
            plan.add(
                w.as_ref(),
                RunSpec::new(nodes, ExecMode::Slipstream).with_slip(si_with_interval(ar, iv)),
            );
        }
        // Ablation 3: token budget cap.
        for cap in [1u32, 2, u32::MAX] {
            plan.add(
                w.as_ref(),
                RunSpec::new(nodes, ExecMode::Slipstream).with_slip(token_capped(cap)),
            );
        }
    }
    let mut r = Runner::for_cli(&cli);
    r.prewarm(&plan, cli.jobs());

    println!("# Ablation 0: migratory-sharing directory optimization (extension)");
    println!("{:<12} {:>12} {:>12} {:>8}", "benchmark", "off", "on", "delta%");
    for w in &suite {
        let off = r.run(w.as_ref(), &RunSpec::new(nodes, ExecMode::Single));
        let on = r.run(
            w.as_ref(),
            &RunSpec::new(nodes, ExecMode::Single)
                .with_machine(migratory_machine(w.as_ref(), nodes)),
        );
        println!(
            "{:<12} {:>12} {:>12} {:>7.1}%",
            w.name(),
            off.exec_cycles,
            on.exec_cycles,
            100.0 * (off.exec_cycles as f64 / on.exec_cycles as f64 - 1.0)
        );
    }

    println!("# Ablation 1: exclusive-prefetch conversion (S3.3), {nodes} CMPs");
    println!("{:<12} {:>12} {:>12} {:>8}", "benchmark", "with", "without", "delta%");
    for w in &suite {
        let on = r.slipstream(w.as_ref(), nodes, SlipstreamConfig::prefetch_only(ar));
        let off = r.slipstream(w.as_ref(), nodes, no_excl_prefetch(ar));
        println!(
            "{:<12} {:>12} {:>12} {:>7.1}%",
            w.name(),
            on.exec_cycles,
            off.exec_cycles,
            100.0 * (off.exec_cycles as f64 / on.exec_cycles as f64 - 1.0)
        );
    }

    println!("\n# Ablation 2: self-invalidation drain interval (paper: 4 cycles/line)");
    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "benchmark", "1", "4", "16", "64");
    for w in &suite {
        let cells: Vec<String> = [1u64, 4, 16, 64]
            .iter()
            .map(|&iv| {
                format!("{}", r.slipstream(w.as_ref(), nodes, si_with_interval(ar, iv)).exec_cycles)
            })
            .collect();
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            w.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    println!("\n# Ablation 3: A-R token budget cap (sessions the A-stream may bank)");
    println!("{:<12} {:>10} {:>10} {:>10}", "benchmark", "cap=1", "cap=2", "uncapped");
    for w in &suite {
        let cells: Vec<String> = [1u32, 2, u32::MAX]
            .iter()
            .map(|&cap| {
                format!(
                    "{}",
                    r.run(
                        w.as_ref(),
                        &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(token_capped(cap))
                    )
                    .exec_cycles
                )
            })
            .collect();
        println!("{:<12} {:>10} {:>10} {:>10}", w.name(), cells[0], cells[1], cells[2]);
    }
    r.export_host_profile(&cli);
}
