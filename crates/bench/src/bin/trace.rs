//! Full observability capture for one run: structured event trace,
//! interval metrics, and the hot-line profile — plus a determinism check
//! that the traced run is bit-identical to an untraced one.
//!
//! Usage: `trace <BENCH> <NODES> <single|double|slip> [--quick]
//!         [--ar L1|L0|G1|G0] [--si] [--interval N] [--top K] [--out DIR]`
//!
//! Writes to `--out DIR` (default `results/trace`):
//!
//! * `trace.json` — Chrome `trace_event` JSON; open at <https://ui.perfetto.dev>
//! * `events.jsonl` — the same events as line-delimited JSON records
//! * `metrics.jsonl` — interval metrics (one object per `--interval` cycles)
//! * `hotlines.txt` — top-K lines by coherence activity
//!
//! After capturing, the same spec is re-run untraced and the two
//! [`RunResult`]s are compared; a mismatch means tracing perturbed the
//! simulation and the process exits nonzero (CI runs this as a smoke
//! test). See docs/observability.md for the schemas.
use slipstream_core::{run, run_traced, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, TraceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: trace <BENCH> <NODES> <single|double|slip> [--quick] \
         [--ar L1|L0|G1|G0] [--si] [--interval N] [--top K] [--out DIR]"
    );
    eprintln!(
        "benchmarks: {}",
        slipstream_workloads::quick_suite()
            .iter()
            .map(|w| w.name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(|s| s.as_str()).unwrap_or("SOR");
    let nodes: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let mode = match args.get(2).map(|s| s.as_str()) {
        Some("double") => ExecMode::Double,
        Some("slip") | None => ExecMode::Slipstream,
        _ => ExecMode::Single,
    };
    let quick = args.iter().any(|a| a == "--quick");
    let Some(w) = slipstream_workloads::by_name(name, quick) else {
        eprintln!("unknown benchmark: {name}");
        usage();
    };
    let flag_value = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| match args.get(i + 1) {
            Some(v) => v,
            None => {
                eprintln!("{flag} requires a value");
                usage();
            }
        })
    };
    let parse_num = |flag: &str, default: u64| -> u64 {
        match flag_value(flag) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} requires a number, got {v}");
                usage();
            }),
            None => default,
        }
    };
    let ar = match flag_value("--ar").map(|s| s.as_str()) {
        Some("L1") => ArSyncMode::OneTokenLocal,
        Some("L0") => ArSyncMode::ZeroTokenLocal,
        Some("G0") => ArSyncMode::ZeroTokenGlobal,
        _ => ArSyncMode::OneTokenGlobal,
    };
    let mut slip = SlipstreamConfig::prefetch_only(ar);
    if args.iter().any(|a| a == "--si") {
        slip = SlipstreamConfig::with_self_invalidation(ar);
    }
    let interval = parse_num("--interval", 10_000);
    let top_k = parse_num("--top", 32) as usize;
    let out_dir = flag_value("--out").cloned().unwrap_or_else(|| "results/trace".to_string());

    let cfg = TraceConfig { top_k, ..TraceConfig::full(interval) };
    let spec = RunSpec::new(nodes, mode).with_slip(slip).with_trace(cfg);
    let (result, data) = run_traced(w.as_ref(), &spec);
    let data = data.expect("trace config is enabled");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let write = |file: &str, contents: String| {
        let path = format!("{out_dir}/{file}");
        std::fs::write(&path, contents).expect("write output file");
        println!("wrote {path}");
    };
    write("trace.json", data.chrome_trace_json());
    write("events.jsonl", data.events_jsonl());
    write("metrics.jsonl", data.metrics_jsonl());
    write("hotlines.txt", data.hotline_report(top_k));

    println!(
        "{}: {} events recorded ({} dropped), {} samples, \
         {} lines profiled, queue pushed={} peak={}",
        result,
        data.records.len(),
        data.dropped,
        data.samples.len(),
        data.hot.len(),
        data.queue_total_pushed,
        data.queue_high_water,
    );

    // Determinism check: tracing must be observation-only. Re-run the
    // exact spec untraced and require a bit-identical result.
    let untraced = run(w.as_ref(), &RunSpec { trace: TraceConfig::default(), ..spec });
    if untraced != result {
        eprintln!("DETERMINISM VIOLATION: traced and untraced runs differ");
        eprintln!("  traced:   {} cycles, {} recoveries", result.exec_cycles, result.recoveries);
        eprintln!("  untraced: {} cycles, {} recoveries", untraced.exec_cycles, untraced.recoveries);
        std::process::exit(1);
    }
    println!("determinism check passed: traced run identical to untraced run");
}
