//! Shared harness code for the figure-reproduction binaries.
//!
//! Each `bin` target regenerates one table or figure of the paper; run
//! them with `cargo run -p slipstream-bench --release --bin figN`.
//! Common flags:
//!
//! * `--quick` — reduced problem sizes (same shapes, faster);
//! * `--bench NAME` — restrict to one benchmark;
//! * `--nodes N[,N...]` — override the CMP-count sweep;
//! * `--jobs N` — worker threads for the simulation grid (defaults to the
//!   host's available parallelism; results are identical for any value);
//! * `--threads K` — worker threads *inside* each simulation (the
//!   conservative parallel engine; results are bit-identical for any
//!   `K >= 1`, `0` = classic serial loop);
//! * `--check` — attach the coherence invariant checker
//!   ([`slipstream_check::ProtocolChecker`]) to every run; a violation
//!   fails the figure instead of rendering suspect numbers.
//! * `--host-profile [DIR]` — profile the simulator itself
//!   ([`slipstream_core::telemetry`]): per-run host profiles are printed
//!   as tables on stderr and, when `DIR` is given, exported as
//!   `DIR/host_profile.json`. Results are bit-identical with profiling
//!   on or off.
//! * `--heartbeat SECS` — periodic progress line per run on stderr
//!   (events/s, elapsed); implies profile collection (not export).
//! * `--quiet` — silence progress narration on stderr (per-run lines,
//!   CPU-cap warnings, heartbeat); figure output and errors still print.
//!
//! The binaries follow one pattern: declare the full grid of runs as a
//! [`Plan`], execute it across cores with [`Runner::prewarm`], then render
//! the figure from the warm cache.

use std::collections::HashMap;

use slipstream_core::{
    host_note, telemetry, ExecMode, HostProfile, HostProfileData, RunResult, RunSpec,
    SlipstreamConfig, Workload,
};
use slipstream_workloads::{paper_suite, quick_suite};

mod par;

pub use par::{Plan, RunKey};

/// Parsed command-line options shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// Use reduced problem sizes.
    pub quick: bool,
    /// Restrict to one benchmark (case-insensitive).
    pub only: Option<String>,
    /// Override the node-count sweep.
    pub nodes: Option<Vec<u16>>,
    /// Worker threads for executing the simulation grid.
    pub jobs: Option<usize>,
    /// Worker threads inside each simulation (`RunSpec::threads`); `0`
    /// (default) is the serial event loop.
    pub threads: u16,
    /// Run every simulation with the protocol invariant checker attached.
    pub check: bool,
    /// Collect host profiles for every run (`--host-profile`).
    pub host_profile: bool,
    /// Directory to write `host_profile.json` into (the optional value of
    /// `--host-profile [DIR]`).
    pub host_profile_dir: Option<String>,
    /// Heartbeat period in seconds (`--heartbeat SECS`, 0 = off). Implies
    /// profile collection, not export.
    pub heartbeat: f64,
    /// Silence progress narration on stderr (`--quiet`).
    pub quiet: bool,
}

impl Cli {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--bench" => {
                    cli.only = Some(args.next().expect("--bench needs a name"));
                }
                "--nodes" => {
                    let v = args.next().expect("--nodes needs a list, e.g. 2,4,8,16");
                    cli.nodes = Some(
                        v.split(',')
                            .map(|s| s.parse().expect("node counts are integers"))
                            .collect(),
                    );
                }
                "--jobs" => {
                    let v = args.next().expect("--jobs needs a thread count");
                    cli.jobs = Some(v.parse().expect("--jobs takes an integer"));
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a worker count");
                    cli.threads = v.parse().expect("--threads takes an integer");
                }
                "--check" => cli.check = true,
                "--host-profile" => {
                    cli.host_profile = true;
                    // The directory operand is optional: a following token
                    // that isn't a flag is the export destination.
                    if args.peek().is_some_and(|v| !v.starts_with('-')) {
                        cli.host_profile_dir = args.next();
                    }
                }
                "--heartbeat" => {
                    let v = args.next().expect("--heartbeat needs a period in seconds");
                    cli.heartbeat = v.parse().expect("--heartbeat takes a number of seconds");
                }
                "--quiet" => cli.quiet = true,
                other => panic!(
                    "unknown flag {other}; supported: --quick --bench NAME --nodes N,N --jobs N \
                     --threads K --check --host-profile [DIR] --heartbeat SECS --quiet"
                ),
            }
        }
        telemetry::set_quiet(cli.quiet);
        cli
    }

    /// The host-profiling spec the flags ask for (`HostProfile::default()`
    /// — off — when neither `--host-profile` nor `--heartbeat` is given).
    pub fn host_spec(&self) -> HostProfile {
        HostProfile {
            enabled: self.host_profile || self.heartbeat > 0.0,
            heartbeat_secs: self.heartbeat,
            expected_events: 0,
        }
    }

    /// The benchmark suite selected by the flags.
    pub fn suite(&self) -> Vec<Box<dyn Workload>> {
        let all = if self.quick { quick_suite() } else { paper_suite() };
        match &self.only {
            None => all,
            Some(name) => all
                .into_iter()
                .filter(|w| w.name().eq_ignore_ascii_case(name))
                .collect(),
        }
    }

    /// The CMP-count sweep (paper: 2, 4, 8, 16).
    pub fn sweep(&self) -> Vec<u16> {
        self.nodes.clone().unwrap_or_else(|| vec![2, 4, 8, 16])
    }

    /// Worker threads to use: `--jobs` if given, else the host's available
    /// parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    }
}

/// Memoizing run cache so figures that need the same baselines don't
/// re-simulate them. Keys are structured ([`RunKey`]), not Debug strings.
#[derive(Default)]
pub struct Runner {
    cache: HashMap<RunKey, RunResult>,
    check: bool,
    threads: u16,
    host: HostProfile,
    /// Host profiles in first-run order (one per unique profiled run).
    profiles: Vec<(RunKey, HostProfileData)>,
}

impl Runner {
    /// Creates an empty cache.
    pub fn new() -> Runner {
        Runner::default()
    }

    /// Creates a runner honouring the CLI's `--check` flag (every
    /// simulation, prewarmed or on-demand, then runs with the protocol
    /// invariant checker attached, and a violation aborts the figure),
    /// its `--threads` flag (every simulation whose spec doesn't set its
    /// own count runs on that many intra-run workers), and its
    /// `--host-profile`/`--heartbeat` flags (host profiles are collected
    /// per run; see [`Runner::export_host_profile`]).
    pub fn for_cli(cli: &Cli) -> Runner {
        Runner {
            cache: HashMap::new(),
            check: cli.check,
            threads: cli.threads,
            host: cli.host_spec(),
            profiles: Vec::new(),
        }
    }

    /// The spec as this runner will actually execute it: the runner-wide
    /// intra-run thread count applied unless the spec sets its own. Both
    /// [`Runner::prewarm`] and [`Runner::run`] key the cache on this, so
    /// prewarmed cells are always hits for the reporting pass.
    fn effective(&self, spec: &RunSpec) -> RunSpec {
        let mut spec = spec.clone();
        if spec.threads == 0 {
            spec.threads = self.threads;
        }
        if !spec.host.is_on() {
            spec.host = self.host.clone();
        }
        spec
    }

    /// Executes `plan` across `jobs` threads and absorbs every result into
    /// the cache. Subsequent [`Runner::run`] calls for those cells are
    /// cache hits, so the reporting pass stays strictly serial and ordered
    /// while the simulations use all cores.
    pub fn prewarm(&mut self, plan: &Plan<'_>, jobs: usize) {
        let plan = plan.with_threads(self.threads).with_host(&self.host);
        let outs = plan.execute_collect(jobs, self.check);
        for (key, (result, profile)) in plan.keys().zip(outs) {
            if let Some(p) = profile {
                if !self.cache.contains_key(&key) {
                    self.profiles.push((key.clone(), p));
                }
            }
            self.cache.entry(key).or_insert(result);
        }
    }

    /// Runs (or returns the cached result of) `workload` under `spec`.
    pub fn run(&mut self, workload: &dyn Workload, spec: &RunSpec) -> RunResult {
        let spec = self.effective(spec);
        let key = RunKey::new(workload, &spec);
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let started = std::time::Instant::now();
        let (r, profile) = par::run_cell_full(workload, &spec, self.check);
        host_note!(
            "  [ran {} {} @{} CMPs in {:.1}s: {} cycles]",
            workload.name(),
            spec.mode,
            spec.nodes,
            started.elapsed().as_secs_f64(),
            r.exec_cycles
        );
        if let Some(p) = profile {
            self.profiles.push((key.clone(), p));
        }
        self.cache.insert(key, r.clone());
        r
    }

    /// Display name of a profiled run, e.g. `SOR_slipstream_8n_t4`.
    fn profile_name(key: &RunKey) -> String {
        format!("{}_{}_{}n_t{}", key.name, key.mode, key.nodes, key.threads)
    }

    /// Host profiles collected so far, with display names, in first-run
    /// order.
    pub fn host_profiles(&self) -> Vec<(String, &HostProfileData)> {
        self.profiles.iter().map(|(k, p)| (Runner::profile_name(k), p)).collect()
    }

    /// Renders collected host profiles (tables on stderr, honours
    /// `--quiet`) and, when `--host-profile DIR` was given, writes
    /// `DIR/host_profile.json`. Call once after the figure's reporting
    /// pass; a no-op when profiling was off.
    ///
    /// # Panics
    ///
    /// Panics if the export directory can't be created or written.
    pub fn export_host_profile(&self, cli: &Cli) {
        if self.profiles.is_empty() {
            return;
        }
        for (key, p) in &self.profiles {
            host_note!("host profile {}:\n{}", Runner::profile_name(key), p.render_table());
        }
        let Some(dir) = &cli.host_profile_dir else {
            return;
        };
        let named = self.host_profiles();
        let path = write_host_profile_json(dir, &named);
        eprintln!("wrote {path} ({} runs)", named.len());
    }

    /// Single-mode baseline at `nodes` CMPs.
    pub fn single(&mut self, w: &dyn Workload, nodes: u16) -> RunResult {
        self.run(w, &RunSpec::new(nodes, ExecMode::Single))
    }

    /// Double-mode run at `nodes` CMPs.
    pub fn double(&mut self, w: &dyn Workload, nodes: u16) -> RunResult {
        self.run(w, &RunSpec::new(nodes, ExecMode::Double))
    }

    /// Slipstream run with the given configuration.
    pub fn slipstream(&mut self, w: &dyn Workload, nodes: u16, slip: SlipstreamConfig) -> RunResult {
        self.run(w, &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(slip))
    }

    /// Execution cycles of the better of single and double mode (the
    /// paper's "next best mode" baseline).
    pub fn best_conventional(&mut self, w: &dyn Workload, nodes: u16) -> u64 {
        let s = self.single(w, nodes).exec_cycles;
        let d = self.double(w, nodes).exec_cycles;
        s.min(d)
    }
}

/// Writes `DIR/host_profile.json` from named host profiles — the
/// versioned export ([`slipstream_core::HOST_PROFILE_SCHEMA`]) shared by
/// the figure binaries (via [`Runner::export_host_profile`]) and
/// `bench_sim`. Returns the path written.
///
/// # Panics
///
/// Panics if the directory can't be created or the file can't be written.
pub fn write_host_profile_json(dir: &str, runs: &[(String, &HostProfileData)]) -> String {
    std::fs::create_dir_all(dir).expect("create host-profile directory");
    let rows: Vec<String> = runs
        .iter()
        .map(|(name, p)| {
            // Splice a name field into the profile's flat JSON object.
            let body = p.to_json();
            format!("{{\"name\":\"{name}\",{}", &body[1..])
        })
        .collect();
    let json = format!(
        "{{\"schema\":\"{}\",\"runs\":[{}]}}\n",
        slipstream_core::HOST_PROFILE_SCHEMA,
        rows.join(",")
    );
    let path = format!("{dir}/host_profile.json");
    std::fs::write(&path, json).expect("write host_profile.json");
    path
}

/// A workload re-labelled with a distinct name.
///
/// The run cache ([`Runner`]) and plan dedup ([`Plan`]) identify
/// simulations by `(name, spec)`; a study that varies the *problem size*
/// of one workload (e.g. `fig_scaling`'s weak-scaled SOR) wraps each size
/// so differently-sized runs never collide in the cache.
pub struct Renamed<W: Workload> {
    name: String,
    inner: W,
}

impl<W: Workload> Renamed<W> {
    /// Wraps `inner` under `name`.
    pub fn new(name: impl Into<String>, inner: W) -> Renamed<W> {
        Renamed { name: name.into(), inner }
    }
}

impl<W: Workload> Workload for Renamed<W> {
    fn name(&self) -> &str {
        &self.name
    }

    fn small_l2(&self) -> bool {
        self.inner.small_l2()
    }

    fn instantiate(
        &self,
        ntasks: usize,
        layout: &mut slipstream_prog::Layout,
    ) -> slipstream_core::TaskBuilderFn {
        self.inner.instantiate(ntasks, layout)
    }
}

/// Prints a row of `f64` cells after a left-justified label.
pub fn print_row(label: &str, cells: &[f64]) {
    print!("{label:<12}");
    for c in cells {
        print!(" {c:>8.3}");
    }
    println!();
}

/// Prints a header row.
pub fn print_header(label: &str, cols: &[String]) {
    print!("{label:<12}");
    for c in cols {
        print!(" {c:>8}");
    }
    println!();
}
