//! Shared harness code for the figure-reproduction binaries.
//!
//! Each `bin` target regenerates one table or figure of the paper; run
//! them with `cargo run -p slipstream-bench --release --bin figN`.
//! Common flags:
//!
//! * `--quick` — reduced problem sizes (same shapes, faster);
//! * `--bench NAME` — restrict to one benchmark;
//! * `--nodes N[,N...]` — override the CMP-count sweep.

use std::collections::HashMap;

use slipstream_core::{run, ExecMode, RunResult, RunSpec, SlipstreamConfig, Workload};
use slipstream_workloads::{paper_suite, quick_suite};

/// Parsed command-line options shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// Use reduced problem sizes.
    pub quick: bool,
    /// Restrict to one benchmark (case-insensitive).
    pub only: Option<String>,
    /// Override the node-count sweep.
    pub nodes: Option<Vec<u16>>,
}

impl Cli {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cli.quick = true,
                "--bench" => {
                    cli.only = Some(args.next().expect("--bench needs a name"));
                }
                "--nodes" => {
                    let v = args.next().expect("--nodes needs a list, e.g. 2,4,8,16");
                    cli.nodes = Some(
                        v.split(',')
                            .map(|s| s.parse().expect("node counts are integers"))
                            .collect(),
                    );
                }
                other => panic!("unknown flag {other}; supported: --quick --bench NAME --nodes N,N"),
            }
        }
        cli
    }

    /// The benchmark suite selected by the flags.
    pub fn suite(&self) -> Vec<Box<dyn Workload>> {
        let all = if self.quick { quick_suite() } else { paper_suite() };
        match &self.only {
            None => all,
            Some(name) => all
                .into_iter()
                .filter(|w| w.name().eq_ignore_ascii_case(name))
                .collect(),
        }
    }

    /// The CMP-count sweep (paper: 2, 4, 8, 16).
    pub fn sweep(&self) -> Vec<u16> {
        self.nodes.clone().unwrap_or_else(|| vec![2, 4, 8, 16])
    }
}

/// Memoizing run cache so figures that need the same baselines don't
/// re-simulate them.
#[derive(Default)]
pub struct Runner {
    cache: HashMap<String, RunResult>,
}

impl Runner {
    /// Creates an empty cache.
    pub fn new() -> Runner {
        Runner::default()
    }

    /// Runs (or returns the cached result of) `workload` under `spec`.
    pub fn run(&mut self, workload: &dyn Workload, spec: &RunSpec) -> RunResult {
        let key = format!(
            "{}|{}|{}|{:?}|{:?}",
            workload.name(),
            spec.nodes,
            spec.mode,
            spec.slip,
            spec.machine
        );
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let started = std::time::Instant::now();
        let r = run(workload, spec);
        eprintln!(
            "  [ran {} {} @{} CMPs in {:.1}s: {} cycles]",
            workload.name(),
            spec.mode,
            spec.nodes,
            started.elapsed().as_secs_f64(),
            r.exec_cycles
        );
        self.cache.insert(key, r.clone());
        r
    }

    /// Single-mode baseline at `nodes` CMPs.
    pub fn single(&mut self, w: &dyn Workload, nodes: u16) -> RunResult {
        self.run(w, &RunSpec::new(nodes, ExecMode::Single))
    }

    /// Double-mode run at `nodes` CMPs.
    pub fn double(&mut self, w: &dyn Workload, nodes: u16) -> RunResult {
        self.run(w, &RunSpec::new(nodes, ExecMode::Double))
    }

    /// Slipstream run with the given configuration.
    pub fn slipstream(&mut self, w: &dyn Workload, nodes: u16, slip: SlipstreamConfig) -> RunResult {
        self.run(w, &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(slip))
    }

    /// Execution cycles of the better of single and double mode (the
    /// paper's "next best mode" baseline).
    pub fn best_conventional(&mut self, w: &dyn Workload, nodes: u16) -> u64 {
        let s = self.single(w, nodes).exec_cycles;
        let d = self.double(w, nodes).exec_cycles;
        s.min(d)
    }
}

/// Prints a row of `f64` cells after a left-justified label.
pub fn print_row(label: &str, cells: &[f64]) {
    print!("{label:<12}");
    for c in cells {
        print!(" {c:>8.3}");
    }
    println!();
}

/// Prints a header row.
pub fn print_header(label: &str, cols: &[String]) {
    print!("{label:<12}");
    for c in cols {
        print!(" {c:>8}");
    }
    println!();
}
