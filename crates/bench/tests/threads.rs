//! Differential tests for the conservative parallel engine
//! (`RunSpec::threads`): the worker count is a pure scheduling knob, so
//! every `K >= 1` must produce bit-identical results — the full
//! [`RunResult`], the trace event stream, and the protocol checker's
//! observations — over the whole quick suite in every execution mode.
//!
//! `threads = 0` (the classic serial loop) is deliberately *not* compared
//! here: the two engines differ in host-side accounting and event
//! interleaving, and each is separately pinned by its own determinism
//! tests.

use slipstream_core::{
    run, run_traced, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, TraceConfig, Workload,
};
use slipstream_workloads::quick_suite;

/// The four execution modes of the benchmark matrix, at `nodes` CMPs.
fn mode_specs(nodes: u16) -> Vec<RunSpec> {
    vec![
        RunSpec::new(nodes, ExecMode::Single),
        RunSpec::new(nodes, ExecMode::Double),
        RunSpec::new(nodes, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal)),
        RunSpec::new(nodes, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal)),
    ]
}

fn ctx(w: &dyn Workload, spec: &RunSpec, k: u16) -> String {
    format!("{} {:?} @{} CMPs, threads {k}", w.name(), spec.mode, spec.nodes)
}

/// Full quick suite × all four modes: `threads ∈ {2, 3, 4}` reproduce the
/// one-worker result bit for bit — cycles, memory statistics, per-stream
/// breakdowns, recoveries, and the `host_events` counter.
#[test]
fn worker_count_is_result_invariant_over_quick_suite() {
    let suite = quick_suite();
    for w in &suite {
        for spec in mode_specs(4) {
            let one = run(w.as_ref(), &spec.clone().with_threads(1));
            for k in [2u16, 3, 4] {
                let many = run(w.as_ref(), &spec.clone().with_threads(k));
                assert_eq!(one, many, "{} diverged from one worker", ctx(w.as_ref(), &spec, k));
            }
        }
    }
}

/// With full tracing enabled, the merged event stream is also
/// worker-count-invariant: records, access counters, hot-line rankings,
/// interval samples, drop counts, and even the queue lifetime counters
/// (summed over node queues, so deterministic per node).
#[test]
fn traced_runs_are_identical_across_worker_counts() {
    let suite = quick_suite();
    for w in suite.iter().take(3) {
        for mode in [ExecMode::Single, ExecMode::Slipstream] {
            let spec = RunSpec::new(4, mode).with_trace(TraceConfig::full(10_000));
            let (r1, t1) = run_traced(w.as_ref(), &spec.clone().with_threads(1));
            let t1 = t1.expect("traced");
            for k in [2u16, 4] {
                let (rk, tk) = run_traced(w.as_ref(), &spec.clone().with_threads(k));
                let tk = tk.expect("traced");
                let c = ctx(w.as_ref(), &spec, k);
                assert_eq!(r1, rk, "{c} RunResult");
                assert_eq!(t1.records, tk.records, "{c} records");
                assert_eq!(t1.counts, tk.counts, "{c} counts");
                assert_eq!(t1.hot, tk.hot, "{c} hot lines");
                assert_eq!(t1.samples, tk.samples, "{c} samples");
                assert_eq!(t1.dropped, tk.dropped, "{c} dropped");
                assert_eq!(t1.end_cycle, tk.end_cycle, "{c} end cycle");
                assert_eq!(t1.queue_total_pushed, tk.queue_total_pushed, "{c} queue pushes");
                assert_eq!(t1.queue_high_water, tk.queue_high_water, "{c} queue high water");
            }
        }
    }
}

/// Epoch-boundary stress: shrinking the window to the minimum legal
/// lookahead (one cycle — the maximum possible number of barriers) and to
/// an odd in-between value cannot change any result. This exercises every
/// cross-epoch hand-off path: events landing exactly on a boundary,
/// streams suspended across barriers, and inbox deliveries racing local
/// work.
#[test]
fn epoch_window_is_result_invariant() {
    let suite = quick_suite();
    for w in suite.iter().take(4) {
        for spec in mode_specs(4) {
            let full = run(w.as_ref(), &spec.clone().with_threads(2));
            for window in [1u64, 7] {
                for k in [2u16, 3] {
                    let tight =
                        run(w.as_ref(), &spec.clone().with_threads(k).with_epoch_window(window));
                    assert_eq!(
                        full,
                        tight,
                        "{} window {window} diverged",
                        ctx(w.as_ref(), &spec, k)
                    );
                }
            }
        }
    }
}

/// The protocol checker observes the merged deterministic event order, so
/// a checked run reports the same (clean) verdict and the same result on
/// any worker count. Uses the canonical checked configurations (the ones
/// the serial differential suite pins): prefetch-only at 4 CMPs and
/// self-invalidation at 2 CMPs.
#[test]
fn checker_verdict_is_worker_count_invariant() {
    let suite = quick_suite();
    let specs = vec![
        RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal)),
        RunSpec::new(2, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal)),
    ];
    for w in suite.iter().take(3) {
        for spec in &specs {
            let (r1, rep1) = slipstream_check::run_checked(w.as_ref(), &spec.clone().with_threads(1));
            assert!(
                rep1.ok(),
                "{}: checker rejected the one-worker run: {}",
                ctx(w.as_ref(), spec, 1),
                rep1.summary()
            );
            let (r2, rep2) = slipstream_check::run_checked(w.as_ref(), &spec.clone().with_threads(2));
            let c = ctx(w.as_ref(), spec, 2);
            assert!(rep2.ok(), "{c}: checker rejected the two-worker run: {}", rep2.summary());
            assert_eq!(r1, r2, "{c}: checked results diverged");
        }
    }
}
