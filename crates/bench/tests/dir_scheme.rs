//! Differential tests for the directory-scheme knob (`DirScheme`).
//!
//! The `SharerSet` refactor replaced the directory's raw `u128` sharer
//! bit-vectors; these tests pin its three guarantees:
//!
//! 1. the default full-map scheme is bit-identical to the pre-refactor
//!    simulator (exec_cycles pinned from the committed benchmark matrix,
//!    quick suite x 4 modes x threads {0, 2});
//! 2. a limited-pointer directory whose budget is never exceeded is
//!    bit-identical to full-map (the scheme only diverges on overflow);
//! 3. an overflowing limited-pointer directory diverges (broadcast
//!    invalidations appear) while still satisfying every coherence
//!    invariant, and >128-node machines — impossible before the refactor —
//!    run to completion under the checker.

use slipstream_core::{
    run, run_full_with_tracer, ArSyncMode, DirScheme, ExecMode, RunResult, RunSpec,
    SlipstreamConfig, Workload,
};
use slipstream_workloads::{by_name, quick_suite, Sor};

/// The four execution modes of the benchmark matrix (`bench_sim`'s
/// `cases`), at `nodes` CMPs.
fn mode_spec(mode: &str, nodes: u16) -> RunSpec {
    match mode {
        "single" => RunSpec::new(nodes, ExecMode::Single),
        "double" => RunSpec::new(nodes, ExecMode::Double),
        "slipstream" => RunSpec::new(nodes, ExecMode::Slipstream),
        "slipstream+si" => RunSpec::new(nodes, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal)),
        other => panic!("unknown mode {other}"),
    }
}

/// Simulated cycle counts of the quick benchmark matrix *before* the
/// `SharerSet` refactor: the serial engine's values as committed in
/// BENCH_sim.json, and the parallel engine's (threads = 2) as measured on
/// the pre-refactor tree. (The two engines differ slightly in event
/// interleaving, so each is pinned separately.) The default directory
/// scheme must keep reproducing both exactly.
const PRE_REFACTOR_EXEC_CYCLES: &[(&str, &str, u64, u64)] = &[
    ("CG", "single", 308223, 309735),
    ("FFT", "single", 796684, 795316),
    ("LU", "single", 1085819, 1085819),
    ("MG", "single", 328802, 328852),
    ("OCEAN", "single", 1546373, 1546373),
    ("SOR", "single", 1075354, 1075354),
    ("SP", "single", 385842, 384738),
    ("WATER-NS", "single", 1018265, 1020861),
    ("WATER-SP", "single", 526484, 526504),
    ("CG", "double", 266232, 268520),
    ("FFT", "double", 604526, 605858),
    ("LU", "double", 751761, 751847),
    ("MG", "double", 214914, 214884),
    ("OCEAN", "double", 1248059, 1248109),
    ("SOR", "double", 737942, 737942),
    ("SP", "double", 228763, 228057),
    ("WATER-NS", "double", 769025, 767118),
    ("WATER-SP", "double", 316776, 316776),
    ("CG", "slipstream", 271633, 272230),
    ("FFT", "slipstream", 480734, 483222),
    ("LU", "slipstream", 1040903, 1041063),
    ("MG", "slipstream", 259540, 276882),
    ("OCEAN", "slipstream", 1443472, 1443472),
    ("SOR", "slipstream", 939475, 939475),
    ("SP", "slipstream", 344539, 345961),
    ("WATER-NS", "slipstream", 1068603, 1066619),
    ("WATER-SP", "slipstream", 573864, 573800),
    ("CG", "slipstream+si", 286973, 285845),
    ("FFT", "slipstream+si", 465337, 462500),
    ("LU", "slipstream+si", 1028348, 1028388),
    ("MG", "slipstream+si", 319350, 319536),
    ("OCEAN", "slipstream+si", 1437977, 1437917),
    ("SOR", "slipstream+si", 959855, 959855),
    ("SP", "slipstream+si", 332371, 331957),
    ("WATER-NS", "slipstream+si", 997512, 999416),
    ("WATER-SP", "slipstream+si", 573895, 573841),
];

/// The default (full-map) scheme reproduces the pre-refactor simulated
/// cycle counts bit-for-bit, on both the serial and the parallel engine.
#[test]
fn default_scheme_reproduces_pre_refactor_results() {
    for &(name, mode, serial_cycles, parallel_cycles) in PRE_REFACTOR_EXEC_CYCLES {
        let w = by_name(name, true).expect("quick suite workload");
        for (threads, cycles) in [(0u16, serial_cycles), (2, parallel_cycles)] {
            let spec = mode_spec(mode, 4).with_threads(threads);
            let r = run(w.as_ref(), &spec);
            assert_eq!(
                r.exec_cycles, cycles,
                "{name} {mode} threads={threads}: default scheme diverged from pre-refactor"
            );
        }
    }
}

/// Everything the simulation reports, compared field by field (the
/// `RunResult` types all derive `PartialEq`).
fn assert_results_identical(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(a.exec_cycles, b.exec_cycles, "{ctx}: exec_cycles");
    assert_eq!(a.mem, b.mem, "{ctx}: memory statistics");
    assert_eq!(a.streams, b.streams, "{ctx}: stream reports");
    assert_eq!(a.recoveries, b.recoveries, "{ctx}: recoveries");
    assert_eq!(a.host_events, b.host_events, "{ctx}: host events");
}

/// A limited-pointer directory whose budget can never overflow (more
/// pointers than nodes) produces the full `RunResult` of the full-map
/// default — the representation change alone is invisible.
#[test]
fn unoverflowed_limited_pointer_matches_full_map() {
    let lp = DirScheme::limited(u8::MAX);
    for w in quick_suite() {
        for mode in ["single", "slipstream+si"] {
            for threads in [0u16, 2] {
                let spec = mode_spec(mode, 4).with_threads(threads);
                let a = run(w.as_ref(), &spec);
                let b = run(w.as_ref(), &spec.clone().with_dir_scheme(lp));
                let ctx = format!("{} {mode} threads={threads}", w.name());
                assert_results_identical(&a, &b, &ctx);
            }
        }
    }
}

/// Runs `spec` with the coherence invariant checker attached, panicking
/// on any violation.
fn run_checked(w: &dyn Workload, spec: &RunSpec) -> RunResult {
    let (checker, tracer) = slipstream_check::ProtocolChecker::new();
    let out = run_full_with_tracer(w, spec, tracer);
    let report = checker.finish();
    assert!(
        report.ok(),
        "{} {:?}: checker rejected the run: {}",
        w.name(),
        spec.mode,
        report.summary()
    );
    out.result
}

/// A 1-pointer directory on a sharing-heavy workload overflows: broadcast
/// invalidations appear and traffic diverges from full-map, yet every
/// coherence invariant still holds under the checker.
#[test]
fn overflowing_limited_pointer_diverges_but_stays_coherent() {
    let w = by_name("SOR", true).expect("quick SOR");
    let spec = RunSpec::new(8, ExecMode::Single);
    let full = run(w.as_ref(), &spec);
    let lp = run_checked(w.as_ref(), &spec.clone().with_dir_scheme(DirScheme::limited(1)));
    assert!(
        lp.mem.broadcast_invalidations > 0,
        "1-pointer SOR at 8 nodes should overflow into broadcasts"
    );
    assert!(
        lp.mem.invalidations_sent > full.mem.invalidations_sent,
        "broadcasts should send more invalidations than the precise sharer list"
    );
    assert_eq!(full.mem.broadcast_invalidations, 0, "full-map never broadcasts");
}

/// A 256-node machine — beyond the old 128-bit sharer-mask cap — runs to
/// completion under the coherence checker on both engines. (The engines
/// interleave events slightly differently, so their simulated results are
/// each deterministic but not compared to each other.)
#[test]
fn machine_with_256_nodes_runs_checked() {
    let w = Sor::quick(); // 256 rows: one per node
    let si = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);
    for threads in [0u16, 2] {
        let spec = RunSpec::new(256, ExecMode::Slipstream).with_slip(si).with_threads(threads);
        let r = run_checked(&w, &spec);
        assert_eq!(r.nodes, 256, "threads={threads}");
        assert!(r.exec_cycles > 0, "threads={threads}");
        assert_eq!(r, run_checked(&w, &spec), "threads={threads}: run is not deterministic");
    }
}
