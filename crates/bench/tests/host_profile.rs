//! Differential tests for host-side telemetry (`RunSpec::host`): profiling
//! observes the simulator, it never steers it. A profiled run must be
//! bit-identical to an unprofiled one — the full [`RunResult`], the trace
//! event stream, and the protocol checker's observations — on both engines
//! (serial `threads = 0` and PDES `threads >= 1`).

use slipstream_core::{
    run, run_full, run_full_with_tracer, run_traced, ArSyncMode, ExecMode, HostProfile, RunSpec,
    SlipstreamConfig, TraceConfig, Workload,
};
use slipstream_workloads::quick_suite;

fn profiled(spec: &RunSpec) -> RunSpec {
    spec.clone().with_host_profile(HostProfile::enabled())
}

fn ctx(w: &dyn Workload, spec: &RunSpec) -> String {
    format!("{} {:?} @{} CMPs, threads {}", w.name(), spec.mode, spec.nodes, spec.threads)
}

/// Full quick suite × both engines (`threads ∈ {0, 1, 2, 4}`): turning
/// profiling on changes no simulated number.
#[test]
fn profiling_is_result_invariant_over_quick_suite() {
    let slip = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);
    for w in &quick_suite() {
        for threads in [0u16, 1, 2, 4] {
            let spec =
                RunSpec::new(4, ExecMode::Slipstream).with_slip(slip).with_threads(threads);
            let plain = run(w.as_ref(), &spec);
            let out = run_full(w.as_ref(), &profiled(&spec));
            assert_eq!(plain, out.result, "{} diverged under profiling", ctx(w.as_ref(), &spec));
            assert!(out.profile.is_some(), "{} returned no profile", ctx(w.as_ref(), &spec));
        }
    }
}

/// Every execution mode stays invariant too (one workload; the suite
/// sweep above covers the workload axis).
#[test]
fn profiling_is_result_invariant_over_modes() {
    let w = slipstream_workloads::by_name("SOR", true).expect("quick SOR");
    let slip = SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal);
    for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
        for threads in [0u16, 2] {
            let spec = RunSpec::new(4, mode).with_slip(slip).with_threads(threads);
            let plain = run(w.as_ref(), &spec);
            let out = run_full(w.as_ref(), &profiled(&spec));
            assert_eq!(plain, out.result, "{} diverged under profiling", ctx(w.as_ref(), &spec));
        }
    }
}

/// With full tracing enabled alongside profiling, the merged event stream
/// is unchanged: records, interval samples, access counters, drop counts.
#[test]
fn profiling_preserves_trace_stream() {
    for w in quick_suite().iter().take(3) {
        for threads in [0u16, 2] {
            let spec = RunSpec::new(4, ExecMode::Slipstream)
                .with_trace(TraceConfig::full(10_000))
                .with_threads(threads);
            let (plain_r, plain_t) = run_traced(w.as_ref(), &spec);
            let plain_t = plain_t.expect("traced");
            let out = run_full(w.as_ref(), &profiled(&spec));
            let t = out.trace.expect("traced");
            let c = ctx(w.as_ref(), &spec);
            assert_eq!(plain_r, out.result, "{c} diverged under profiling");
            assert_eq!(plain_t.records, t.records, "{c} records");
            assert_eq!(plain_t.counts, t.counts, "{c} counts");
            assert_eq!(plain_t.hot, t.hot, "{c} hot lines");
            assert_eq!(plain_t.samples, t.samples, "{c} samples");
            assert_eq!(plain_t.dropped, t.dropped, "{c} dropped");
            assert_eq!(plain_t.end_cycle, t.end_cycle, "{c} end cycle");
            assert_eq!(plain_t.queue_total_pushed, t.queue_total_pushed, "{c} queue pushes");
            assert_eq!(plain_t.queue_high_water, t.queue_high_water, "{c} queue high water");
        }
    }
}

/// The protocol checker sees the identical run: same verdict, same
/// observation counts, with or without profiling.
#[test]
fn profiling_preserves_checker_verdict() {
    for w in quick_suite().iter().take(3) {
        for threads in [0u16, 2] {
            let spec = RunSpec::new(4, ExecMode::Slipstream).with_threads(threads);
            let (plain_r, plain_report) = slipstream_check::run_checked(w.as_ref(), &spec);

            let (checker, tracer) = slipstream_check::ProtocolChecker::new();
            let out = run_full_with_tracer(w.as_ref(), &profiled(&spec), tracer);
            let report = checker.finish();

            assert_eq!(plain_r, out.result, "{} diverged under profiling", ctx(w.as_ref(), &spec));
            assert_eq!(plain_report.ok(), report.ok(), "{}", ctx(w.as_ref(), &spec));
            // CheckCounts has no PartialEq; its Debug form pins every field.
            assert_eq!(
                format!("{:?}", plain_report.counts),
                format!("{:?}", report.counts),
                "{} checker observations diverged under profiling",
                ctx(w.as_ref(), &spec)
            );
        }
    }
}

/// The collected profile itself is coherent: worker count matches the
/// engine, event totals match the run, queue traffic was observed, and the
/// imbalance ratio is a max/mean (so never below 1 once measured).
#[test]
fn profile_data_is_sane() {
    let w = slipstream_workloads::by_name("SOR", true).expect("quick SOR");

    let serial = RunSpec::new(4, ExecMode::Slipstream);
    let out = run_full(w.as_ref(), &profiled(&serial));
    let p = out.profile.expect("serial profile");
    assert_eq!(p.engine, "serial");
    assert_eq!(p.workers.len(), 1);
    assert_eq!(p.events, out.result.host_events);
    assert!(p.queue.total_pushed > 0, "no queue traffic observed");
    assert!(p.imbalance_ratio() >= 1.0);
    assert!(!p.resources.is_empty(), "contention resources missing");
    assert!(p.to_json().contains(slipstream_core::HOST_PROFILE_SCHEMA));

    let pdes = RunSpec::new(4, ExecMode::Slipstream).with_threads(2);
    let out = run_full(w.as_ref(), &profiled(&pdes));
    let p = out.profile.expect("pdes profile");
    assert_eq!(p.engine, "pdes");
    assert_eq!(p.workers.len(), 2, "one entry per PDES worker");
    let worker_events: u64 = p.workers.iter().map(|ws| ws.events).sum();
    assert_eq!(worker_events, out.result.host_events);
    assert!(p.workers.iter().all(|ws| ws.epochs > 0), "PDES workers ran epochs");
    assert!(p.queue.total_pushed > 0, "no queue traffic observed");
    assert!(p.imbalance_ratio() >= 1.0);
}
