//! Suite-wide accounting invariants: for every quick benchmark and every
//! execution mode, each stream's time breakdown accounts for its finish
//! cycle exactly, the access counters add up, and enabling tracing leaves
//! the result bit-identical.

use slipstream_core::{
    run_traced, ExecMode, RunSpec, SlipstreamConfig, StreamRole, TraceConfig,
};

#[test]
fn quick_suite_accounting_invariants() {
    for w in slipstream_workloads::quick_suite() {
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let spec = RunSpec::new(2, mode)
                .with_slip(SlipstreamConfig::default())
                .with_trace(TraceConfig { hotlines: true, ..TraceConfig::default() });
            let (r, data) = run_traced(w.as_ref(), &spec);
            let ctx = format!("{} {mode}", w.name());

            // Time accounting: exact, stream by stream.
            for s in &r.streams {
                assert_eq!(
                    s.breakdown.total(),
                    s.finish,
                    "{ctx}: breakdown != finish for {:?} on {}",
                    s.role,
                    s.cpu
                );
            }
            let max_finish = r
                .streams
                .iter()
                .filter(|s| s.role != StreamRole::A)
                .map(|s| s.finish)
                .max()
                .unwrap_or(0);
            assert_eq!(r.exec_cycles, max_finish, "{ctx}: exec_cycles");

            // Access accounting: every data access resolves as exactly one
            // of L1 hit, L2 hit, or L2 miss; merged misses are a subset of
            // misses. Checked against the tracer's independent counters.
            let c = data.expect("trace enabled").counts;
            assert_eq!(c.l1_hits, r.mem.l1_hits, "{ctx}");
            assert_eq!(c.l2_hits, r.mem.l2_hits, "{ctx}");
            assert_eq!(c.miss_new + c.miss_merged, r.mem.l2_misses, "{ctx}");
            assert_eq!(c.miss_merged, r.mem.merged_misses, "{ctx}");
            assert_eq!(
                c.data_accesses(),
                r.mem.l1_hits + r.mem.l2_hits + r.mem.l2_misses,
                "{ctx}: hit/miss identity"
            );

            // Tracing is observation only.
            let (untraced, none) =
                run_traced(w.as_ref(), &RunSpec { trace: TraceConfig::default(), ..spec });
            assert!(none.is_none());
            assert_eq!(untraced, r, "{ctx}: traced run must be bit-identical");
        }
    }
}
