//! Differential validation of the static sharing analyzer: for every
//! quick-suite workload and a slice of the generated fuzz corpus, the
//! dynamic measurements of an instrumented single-mode run must lie
//! inside the analyzer's static bounds, and each region's observed
//! sharing class must equal the predicted class's observable projection.
//!
//! The `fuzz` binary runs the same harness over the *full* corpus (216
//! programs); this test pins the quick suite plus a representative corpus
//! slice in CI's tier-1 suite.

use slipstream_check::cross_validate;
use slipstream_core::Workload;
use slipstream_gen::corpus::{corpus_entry, CORPUS_SEED};
use slipstream_gen::Pattern;
use slipstream_workloads::quick_suite;

fn assert_validates(w: &dyn Workload, ntasks: usize) {
    let report = cross_validate(w, ntasks);
    assert!(
        report.ok,
        "{} [ntasks={ntasks}]: {}\n{}",
        w.name(),
        report.first_failure().unwrap_or_default(),
        report.to_json()
    );
}

#[test]
fn quick_suite_measurements_lie_within_static_bounds() {
    for w in quick_suite() {
        for ntasks in [2usize, 4] {
            assert_validates(w.as_ref(), ntasks);
        }
    }
}

#[test]
fn corpus_slice_measurements_lie_within_static_bounds() {
    // Two corpus entries per pattern (the same slice gen_corpus.rs pins
    // dynamically), at the fuzz pipeline's default node count.
    for i in 0..2 * Pattern::ALL.len() {
        let w = corpus_entry(CORPUS_SEED, i);
        assert_validates(&w, 2);
    }
}

#[test]
fn validation_reports_are_deterministic() {
    let w = corpus_entry(CORPUS_SEED, 0);
    let a = cross_validate(&w, 2).to_json();
    let b = cross_validate(&w, 2).to_json();
    assert_eq!(a, b);
}
