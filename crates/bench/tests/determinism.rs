//! Determinism guarantees the whole reproduction rests on: repeated runs
//! of the same spec are bit-identical, and the parallel experiment
//! executor returns the same results regardless of `--jobs`. These tests
//! pin the guarantees down over the full quick suite so hot-path changes
//! (hashers, queue layout, clone elimination) can't silently break them.

use slipstream_bench::Plan;
use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
use slipstream_workloads::quick_suite;

/// Running the same (workload, spec) twice in-process yields identical
/// cycle counts and memory-system statistics, in every execution mode.
#[test]
fn repeated_runs_are_bit_identical_in_every_mode() {
    let suite = quick_suite();
    for w in &suite {
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let spec = RunSpec::new(2, mode);
            let a = run(w.as_ref(), &spec);
            let b = run(w.as_ref(), &spec);
            assert_eq!(a.exec_cycles, b.exec_cycles, "{} {mode:?}", w.name());
            assert_eq!(a.mem, b.mem, "{} {mode:?}", w.name());
            assert_eq!(a.recoveries, b.recoveries, "{} {mode:?}", w.name());
            assert_eq!(a.host_events, b.host_events, "{} {mode:?}", w.name());
        }
    }
}

/// The parallel executor is a pure scheduling layer: results at
/// `--jobs 4` match `--jobs 1` cell-for-cell over the quick suite in all
/// three modes.
#[test]
fn executor_results_are_independent_of_jobs() {
    let suite = quick_suite();
    let mut serial_plan = Plan::new();
    let mut parallel_plan = Plan::new();
    for plan in [&mut serial_plan, &mut parallel_plan] {
        for w in &suite {
            for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
                plan.add(w.as_ref(), RunSpec::new(2, mode));
            }
            plan.add(
                w.as_ref(),
                RunSpec::new(2, ExecMode::Slipstream).with_slip(
                    SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal),
                ),
            );
        }
    }
    let serial = serial_plan.execute(1);
    let parallel = parallel_plan.execute(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.exec_cycles, b.exec_cycles, "cell {i}");
        assert_eq!(a.mem, b.mem, "cell {i}");
        assert_eq!(a.recoveries, b.recoveries, "cell {i}");
    }
}

/// The batched fast path is a pure scheduling shortcut: for every quick
/// workload, in every execution mode and every A-R synchronization mode
/// (with and without self-invalidation), the full [`RunResult`] — cycles,
/// memory statistics, per-stream time breakdowns, recoveries, and even the
/// `host_events` observability counter — is bit-identical to the
/// queue-round-trip path.
#[test]
fn fastpath_matches_queue_path_bit_for_bit() {
    let suite = quick_suite();
    let mut specs = vec![
        RunSpec::new(4, ExecMode::Single),
        RunSpec::new(4, ExecMode::Double),
    ];
    for ar in ArSyncMode::ALL {
        specs.push(RunSpec::new(4, ExecMode::Slipstream).with_slip(SlipstreamConfig::prefetch_only(ar)));
        specs.push(
            RunSpec::new(4, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::with_self_invalidation(ar)),
        );
    }
    for w in &suite {
        for spec in &specs {
            let fast = run(w.as_ref(), &spec.clone().with_fastpath(true));
            let slow = run(w.as_ref(), &spec.clone().with_fastpath(false));
            assert_eq!(
                fast,
                slow,
                "{} {:?} slip={:?} diverged between fast path and queue path",
                w.name(),
                spec.mode,
                spec.slip
            );
        }
    }
}

/// Tracing observes the fast path without perturbing it: with full
/// collection enabled, the event records, access counters, hot-line
/// rankings, and interval samples are identical whether streams resume
/// inline or through the queue. Only the queue's own lifetime counters
/// (`queue_total_pushed`, `queue_high_water`) may differ, since the fast
/// path exists precisely to elide queue traffic.
#[test]
fn fastpath_traces_identical_event_streams() {
    use slipstream_core::{run_traced, TraceConfig};
    let suite = quick_suite();
    for w in suite.iter().take(3) {
        for mode in [ExecMode::Single, ExecMode::Slipstream] {
            let base = RunSpec::new(2, mode).with_trace(TraceConfig::full(10_000));
            let (fast_r, fast_t) = run_traced(w.as_ref(), &base.clone().with_fastpath(true));
            let (slow_r, slow_t) = run_traced(w.as_ref(), &base.clone().with_fastpath(false));
            assert_eq!(fast_r, slow_r, "{} {mode:?} RunResult", w.name());
            let (fast_t, slow_t) = (fast_t.expect("traced"), slow_t.expect("traced"));
            assert_eq!(fast_t.records, slow_t.records, "{} {mode:?} records", w.name());
            assert_eq!(fast_t.counts, slow_t.counts, "{} {mode:?} counts", w.name());
            assert_eq!(fast_t.hot, slow_t.hot, "{} {mode:?} hot lines", w.name());
            assert_eq!(fast_t.samples, slow_t.samples, "{} {mode:?} samples", w.name());
            assert_eq!(fast_t.dropped, slow_t.dropped, "{} {mode:?} dropped", w.name());
            assert_eq!(fast_t.end_cycle, slow_t.end_cycle, "{} {mode:?} end", w.name());
            assert!(
                fast_t.queue_total_pushed <= slow_t.queue_total_pushed,
                "{} {mode:?}: fast path must not add queue traffic",
                w.name()
            );
        }
    }
}
