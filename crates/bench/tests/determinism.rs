//! Determinism guarantees the whole reproduction rests on: repeated runs
//! of the same spec are bit-identical, and the parallel experiment
//! executor returns the same results regardless of `--jobs`. These tests
//! pin the guarantees down over the full quick suite so hot-path changes
//! (hashers, queue layout, clone elimination) can't silently break them.

use slipstream_bench::Plan;
use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
use slipstream_workloads::quick_suite;

/// Running the same (workload, spec) twice in-process yields identical
/// cycle counts and memory-system statistics, in every execution mode.
#[test]
fn repeated_runs_are_bit_identical_in_every_mode() {
    let suite = quick_suite();
    for w in &suite {
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let spec = RunSpec::new(2, mode);
            let a = run(w.as_ref(), &spec);
            let b = run(w.as_ref(), &spec);
            assert_eq!(a.exec_cycles, b.exec_cycles, "{} {mode:?}", w.name());
            assert_eq!(a.mem, b.mem, "{} {mode:?}", w.name());
            assert_eq!(a.recoveries, b.recoveries, "{} {mode:?}", w.name());
            assert_eq!(a.host_events, b.host_events, "{} {mode:?}", w.name());
        }
    }
}

/// The parallel executor is a pure scheduling layer: results at
/// `--jobs 4` match `--jobs 1` cell-for-cell over the quick suite in all
/// three modes.
#[test]
fn executor_results_are_independent_of_jobs() {
    let suite = quick_suite();
    let mut serial_plan = Plan::new();
    let mut parallel_plan = Plan::new();
    for plan in [&mut serial_plan, &mut parallel_plan] {
        for w in &suite {
            for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
                plan.add(w.as_ref(), RunSpec::new(2, mode));
            }
            plan.add(
                w.as_ref(),
                RunSpec::new(2, ExecMode::Slipstream).with_slip(
                    SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal),
                ),
            );
        }
    }
    let serial = serial_plan.execute(1);
    let parallel = parallel_plan.execute(4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.exec_cycles, b.exec_cycles, "cell {i}");
        assert_eq!(a.mem, b.mem, "cell {i}");
        assert_eq!(a.recoveries, b.recoveries, "cell {i}");
    }
}
