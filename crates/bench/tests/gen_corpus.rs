//! Differential pinning of the generated corpus: the committed-seed
//! programs must simulate identically on the serial event loop and the
//! conservative parallel engine, in every execution mode, and a
//! protocol-checked run must be clean and bit-identical to the unchecked
//! one. This is the dynamic half of the fuzz pipeline (`fuzz` runs the
//! whole corpus; this test pins a representative slice in CI's tier-1
//! suite).
//!
//! The serial loop and the parallel engine are separately deterministic
//! but differ in the *host-side* `host_events` observability counter, so
//! comparisons exclude it; every simulated field — cycles, per-stream
//! breakdowns, memory statistics, recoveries — must match bit for bit.

use slipstream_check::run_checked;
use slipstream_core::{
    run, ArSyncMode, ExecMode, RunResult, RunSpec, SlipstreamConfig, Workload,
};
use slipstream_gen::corpus::{corpus_entry, CORPUS_SEED};
use slipstream_gen::Pattern;

/// Two corpus entries per pattern: the first full rotation and the next.
fn slice() -> Vec<slipstream_gen::GenWorkload> {
    (0..2 * Pattern::ALL.len()).map(|i| corpus_entry(CORPUS_SEED, i)).collect()
}

fn mode_specs(nodes: u16) -> Vec<(&'static str, RunSpec)> {
    vec![
        ("single", RunSpec::new(nodes, ExecMode::Single)),
        ("double", RunSpec::new(nodes, ExecMode::Double)),
        (
            "slipstream",
            RunSpec::new(nodes, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal)),
        ),
        (
            "slipstream+si",
            RunSpec::new(nodes, ExecMode::Slipstream)
                .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal)),
        ),
    ]
}

fn assert_sim_eq(a: &RunResult, b: &RunResult, ctx: &str) {
    let mut b2 = b.clone();
    b2.host_events = a.host_events;
    assert_eq!(*a, b2, "{ctx}: engines diverged");
}

/// Corpus slice × all four modes: the parallel engine (2 and 3 workers)
/// reproduces the serial result, and the workers agree with each other in
/// full (including host accounting, which is deterministic per engine).
#[test]
fn generated_corpus_is_engine_invariant_across_modes() {
    for w in slice() {
        for (mode, spec) in mode_specs(2) {
            let serial = run(&w, &spec.clone().with_threads(0));
            let two = run(&w, &spec.clone().with_threads(2));
            let three = run(&w, &spec.clone().with_threads(3));
            let ctx = format!("{} {mode}", w.name());
            assert_sim_eq(&serial, &two, &ctx);
            assert_eq!(two, three, "{ctx}: worker counts diverged");
        }
    }
}

/// Checked runs over the corpus slice: zero protocol violations, and the
/// checker does not perturb the simulation.
#[test]
fn generated_corpus_checked_runs_are_clean_and_unperturbed() {
    for w in slice() {
        for (mode, spec) in mode_specs(2) {
            let plain = run(&w, &spec);
            let (checked, report) = run_checked(&w, &spec);
            assert!(
                report.ok(),
                "{} {mode}: protocol checker: {}",
                w.name(),
                report.summary()
            );
            assert_eq!(plain, checked, "{} {mode}: checked run diverged", w.name());
        }
    }
}

/// Both engines are self-deterministic on generated programs: running
/// twice reproduces the result exactly (including host accounting).
#[test]
fn generated_corpus_runs_are_deterministic() {
    for w in slice().into_iter().take(6) {
        for (mode, spec) in mode_specs(2) {
            for threads in [0u16, 2] {
                let a = run(&w, &spec.clone().with_threads(threads));
                let b = run(&w, &spec.clone().with_threads(threads));
                assert_eq!(a, b, "{} {mode} threads={threads}: nondeterminism", w.name());
            }
        }
    }
}
