//! NAS SP (scalar penta-diagonal ADI solver), 16 x 16 x 16 in the paper.
//!
//! Each timestep computes the right-hand side (a stencil needing
//! z-neighbour boundary planes) and then performs ADI line sweeps in x, y,
//! and z. With a z-plane partition the x and y sweeps are local, but the z
//! sweep runs along lines that cross every task's planes — an all-to-all
//! phase — and every phase ends in a barrier. At this tiny class size the
//! per-task work between barriers is small, so SP becomes latency- and
//! sync-bound quickly (Figure 4), and the paper reports one of the largest
//! SI gains (+15%) for it.

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, ProgBuilder};

use crate::util::{block_range, touch_shared, LINE};

/// The SP application kernel.
#[derive(Debug, Clone)]
pub struct Sp {
    /// Grid edge (problem is `n^3`, 5 solution variables per point).
    pub n: u64,
    /// Timesteps.
    pub steps: u64,
    /// Compute cycles per point per sweep (penta-diagonal solve work).
    pub cycles_per_point: u32,
}

impl Sp {
    /// Paper configuration: 16 x 16 x 16.
    pub fn paper() -> Sp {
        Sp { n: 16, steps: 4, cycles_per_point: 40 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> Sp {
        Sp { n: 8, steps: 2, cycles_per_point: 40 }
    }
}

impl Workload for Sp {
    fn name(&self) -> &str {
        "SP"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let n = self.n;
        let vars = 5u64;
        let plane_bytes = n * n * vars * 8; // all 5 vars, one z-plane
        let alloc = |layout: &mut Layout, name: &str| -> Vec<ArrayRef> {
            (0..ntasks)
                .map(|t| {
                    let (z0, z1) = block_range(n, ntasks, t);
                    layout.shared_owned(&format!("sp.{name}{t}"), (z1 - z0).max(1) * plane_bytes, t)
                })
                .collect()
        };
        let u = alloc(layout, "u");
        let rhs = alloc(layout, "rhs");
        let steps = self.steps;
        let cpp = self.cycles_per_point;
        Box::new(move |_layout, _inst, task| {
            let u = u.clone();
            let rhs = rhs.clone();
            let plane_of = move |arr: &[ArrayRef], z: u64| -> (ArrayRef, u64) {
                let mut t = 0;
                loop {
                    let (s, e) = block_range(n, ntasks, t);
                    if z >= s && z < e {
                        return (arr[t], (z - s) * plane_bytes);
                    }
                    t += 1;
                }
            };
            let (z0, z1) = block_range(n, ntasks, task);
            // Points per plane, cycles per line of a plane.
            let comp_line = (cpp as u64 * (LINE / 8)) as u32;
            let mut b = ProgBuilder::new();
            b.for_n(steps, move |b| {
                // compute_rhs: stencil over my planes with z-ghosts.
                let u1 = u.clone();
                let rhs1 = rhs.clone();
                b.block(move |_ctx, out| {
                    for z in z0..z1 {
                        if z > 0 && z == z0 {
                            let (reg, off) = plane_of(&u1, z - 1);
                            touch_shared(out, reg, off, plane_bytes, false, 0);
                        }
                        if z + 1 < n && z + 1 == z1 {
                            let (reg, off) = plane_of(&u1, z + 1);
                            touch_shared(out, reg, off, plane_bytes, false, 0);
                        }
                        let (ureg, uoff) = plane_of(&u1, z);
                        touch_shared(out, ureg, uoff, plane_bytes, false, comp_line / 2);
                        let (rreg, roff) = plane_of(&rhs1, z);
                        touch_shared(out, rreg, roff, plane_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
                // x- and y-sweeps: lines lie inside my planes (local).
                for _dir in 0..2 {
                    let u2 = u.clone();
                    let rhs2 = rhs.clone();
                    b.block(move |_ctx, out| {
                        for z in z0..z1 {
                            let (rreg, roff) = plane_of(&rhs2, z);
                            touch_shared(out, rreg, roff, plane_bytes, false, comp_line);
                            let (ureg, uoff) = plane_of(&u2, z);
                            touch_shared(out, ureg, uoff, plane_bytes, true, 0);
                        }
                    });
                    b.barrier(BarrierId(0));
                }
                // z-sweep: my (x, y) columns cross every task's planes.
                let u3 = u.clone();
                b.block(move |_ctx, out| {
                    let cols = n * n;
                    let (c0, c1) = block_range(cols, ntasks, task);
                    for col in c0..c1 {
                        for z in 0..n {
                            let (reg, off) = plane_of(&u3, z);
                            // One element of each var; one line touch
                            // covers it.
                            let elem = off + col * vars * 8;
                            touch_shared(out, reg, elem, vars * 8, false, cpp);
                            touch_shared(out, reg, elem, vars * 8, true, 0);
                        }
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("sp")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{InstanceId, Op};

    #[test]
    fn four_barriers_per_step() {
        let w = Sp::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count() as u64;
        assert_eq!(barriers, 4 * w.steps);
    }

    #[test]
    fn z_sweep_crosses_all_plane_owners() {
        let w = Sp::quick();
        let mut layout = Layout::new();
        let ntasks = 4;
        let build = w.instantiate(ntasks, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let stores: std::collections::HashSet<u64> = prog
            .iter()
            .filter_map(|op| match op {
                Op::Store { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        // u regions are the first ntasks regions; the z-sweep writes into
        // every one of them.
        for (i, r) in layout.regions().iter().take(ntasks).enumerate() {
            assert!(
                stores.iter().any(|a| *a >= r.base.0 && *a < r.end().0),
                "z-sweep never writes planes of task {i}"
            );
        }
    }

    #[test]
    fn writes_conflict_free_within_z_sweep() {
        // Different tasks' z-sweeps touch different (x, y) columns.
        let w = Sp::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let p0: std::collections::HashSet<u64> = build(&mut layout, InstanceId(0), 0)
            .iter()
            .skip_while(|o| !matches!(o, Op::Barrier(_)))
            .filter_map(|op| match op {
                Op::Store { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        assert!(!p0.is_empty());
    }
}
