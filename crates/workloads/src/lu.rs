//! Blocked dense LU factorization (Splash-2), 512 x 512 with 16 x 16
//! blocks in the paper.
//!
//! Blocks are assigned to tasks in a 2D scatter over a `pr x pc` task
//! grid, the Splash-2 decomposition. Step `k` factors the diagonal block,
//! then owners of perimeter blocks in row/column `k` update them against
//! the diagonal block, then owners of interior blocks update against the
//! two perimeter blocks — with barriers between phases. Compute per block
//! is O(b^3), so LU is the most compute-dense kernel in the suite and (per
//! Figure 4) keeps scaling to 16 CMPs, which is why the paper finds
//! slipstream is *not* the right mode for it.

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, ProgBuilder};

use crate::util::{factor2, touch_shared};

/// `(region, byte offset)` handle of one block.
type BlockAt = (ArrayRef, u64);
/// An interior update: the target block and the two perimeter inputs.
type InteriorWork = (BlockAt, BlockAt, BlockAt);

/// Blocked LU decomposition.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Matrix is `n x n` doubles.
    pub n: u64,
    /// Block edge (paper: 16).
    pub b: u64,
    /// Compute cycles per multiply-accumulate pair (calibration knob).
    pub cycles_per_flop_x16: u32,
}

impl Lu {
    /// Paper configuration: 512 x 512, 16 x 16 blocks.
    pub fn paper() -> Lu {
        Lu { n: 512, b: 16, cycles_per_flop_x16: 16 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> Lu {
        Lu { n: 128, b: 16, cycles_per_flop_x16: 16 }
    }

    fn nb(&self) -> u64 {
        self.n / self.b
    }
}

impl Workload for Lu {
    fn name(&self) -> &str {
        "LU"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let nb = self.nb();
        let b = self.b;
        let block_bytes = b * b * 8;
        let (pr, pc) = factor2(ntasks);
        let owner = move |bi: u64, bj: u64| -> usize {
            (bi as usize % pr) * pc + (bj as usize % pc)
        };
        // Each task's blocks live in one owned region, in scatter order.
        let regions: Vec<ArrayRef> = (0..ntasks)
            .map(|t| {
                let count = (0..nb)
                    .flat_map(|i| (0..nb).map(move |j| (i, j)))
                    .filter(|&(i, j)| owner(i, j) == t)
                    .count() as u64;
                layout.shared_owned(&format!("lu.blocks{t}"), count.max(1) * block_bytes, t)
            })
            .collect();
        // Byte offset of block (bi, bj) inside its owner's region,
        // precomputed in scatter order.
        let offsets: std::rc::Rc<Vec<u64>> = {
            let mut next = vec![0u64; ntasks];
            let mut table = vec![0u64; (nb * nb) as usize];
            for i in 0..nb {
                for j in 0..nb {
                    let t = owner(i, j);
                    table[(i * nb + j) as usize] = next[t] * block_bytes;
                    next[t] += 1;
                }
            }
            std::rc::Rc::new(table)
        };
        let block_at = move |bi: u64, bj: u64| -> u64 { offsets[(bi * nb + bj) as usize] };
        // Per-block compute costs (cycles), from flop counts:
        // diag ~ 2/3 b^3, perimeter ~ b^3, interior ~ 2 b^3.
        let unit = self.cycles_per_flop_x16 as u64;
        let diag_cycles = (2 * b * b * b / 3) * unit / 16;
        let peri_cycles = (b * b * b) * unit / 16;
        let inner_cycles = (2 * b * b * b) * unit / 16;
        let lines_per_block = block_bytes / 64;
        Box::new(move |_layout, _inst, task| {
            let regions = regions.clone();
            let mut prog = ProgBuilder::new();
            // The statement tree for all nb steps is built eagerly (the
            // step structure is static), with per-step work in blocks.
            for k in 0..nb {
                let regions_d = regions.clone();
                // Phase 1: factor the diagonal block (owner only).
                if owner(k, k) == task {
                    let off = block_at(k, k);
                    let reg = regions_d[owner(k, k)];
                    let comp = (diag_cycles / lines_per_block.max(1)) as u32;
                    prog.block(move |_ctx, out| {
                        touch_shared(out, reg, off, block_bytes, false, comp);
                        touch_shared(out, reg, off, block_bytes, true, 0);
                    });
                }
                prog.barrier(BarrierId(0));
                // Phase 2: perimeter blocks in column k and row k.
                let regions_p = regions.clone();
                let my_peri: Vec<(u64, u64)> = (k + 1..nb)
                    .flat_map(|i| [(i, k), (k, i)])
                    .filter(|&(i, j)| owner(i, j) == task)
                    .collect();
                if !my_peri.is_empty() {
                    let diag_reg = regions_p[owner(k, k)];
                    let diag_off = block_at(k, k);
                    let mine: Vec<(ArrayRef, u64)> = my_peri
                        .iter()
                        .map(|&(i, j)| (regions_p[owner(i, j)], block_at(i, j)))
                        .collect();
                    let comp = (peri_cycles / lines_per_block.max(1)) as u32;
                    prog.block(move |_ctx, out| {
                        touch_shared(out, diag_reg, diag_off, block_bytes, false, 0);
                        for &(reg, off) in &mine {
                            touch_shared(out, reg, off, block_bytes, false, comp);
                            touch_shared(out, reg, off, block_bytes, true, 0);
                        }
                    });
                }
                prog.barrier(BarrierId(0));
                // Phase 3: interior blocks (i, j), i > k, j > k.
                let regions_i = regions.clone();
                let mine: Vec<(u64, u64)> = (k + 1..nb)
                    .flat_map(|i| (k + 1..nb).map(move |j| (i, j)))
                    .filter(|&(i, j)| owner(i, j) == task)
                    .collect();
                if !mine.is_empty() {
                    let work: Vec<InteriorWork> = mine
                        .iter()
                        .map(|&(i, j)| {
                            (
                                (regions_i[owner(i, j)], block_at(i, j)),
                                (regions_i[owner(i, k)], block_at(i, k)),
                                (regions_i[owner(k, j)], block_at(k, j)),
                            )
                        })
                        .collect();
                    let comp = (inner_cycles / lines_per_block.max(1)) as u32;
                    prog.block(move |_ctx, out| {
                        for &((breg, boff), (lreg, loff), (ureg, uoff)) in &work {
                            touch_shared(out, lreg, loff, block_bytes, false, 0);
                            touch_shared(out, ureg, uoff, block_bytes, false, 0);
                            touch_shared(out, breg, boff, block_bytes, false, comp);
                            touch_shared(out, breg, boff, block_bytes, true, 0);
                        }
                    });
                }
                prog.barrier(BarrierId(0));
            }
            prog.build("lu")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{InstanceId, Op};

    #[test]
    fn barrier_count_is_three_per_step() {
        let w = Lu::quick(); // nb = 8
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count();
        assert_eq!(barriers as u64, 3 * w.nb());
    }

    #[test]
    fn every_block_is_owned_exactly_once() {
        let w = Lu::quick();
        let mut layout = Layout::new();
        let ntasks = 4;
        let build = w.instantiate(ntasks, &mut layout);
        // All tasks together must store every block at least once (each
        // interior block is written at every step it participates in).
        let mut stores = std::collections::HashSet::new();
        for t in 0..ntasks {
            let prog = build(&mut layout, InstanceId(t as u32), t);
            for op in prog.iter() {
                if let Op::Store { addr, .. } = op {
                    stores.insert(addr.0 / 2048 * 2048);
                }
            }
        }
        // 8x8 blocks of 2KB each = 64 distinct block bases.
        assert!(stores.len() >= 60, "only {} block bases written", stores.len());
    }

    #[test]
    fn interior_work_shrinks_with_k() {
        // The program is heavier early (more interior blocks): op count for
        // a 1-task build must exceed 3x the barrier count significantly.
        let w = Lu::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(1, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let n_ops = prog.iter().count();
        assert!(n_ops > 1000, "{n_ops}");
    }
}
