//! NAS Multigrid (shared-memory version), 32 x 32 x 32 in the paper.
//!
//! V-cycles over a hierarchy of 3D grids partitioned by z-planes. Each
//! smoothing step is a 7-point stencil needing the boundary planes of the
//! z-neighbours; restriction and prolongation move data between levels.
//! With only a 32^3 finest grid, tasks own just two planes at 16 CMPs and
//! the coarse levels leave most tasks idle — the ghost-plane exchange and
//! barrier cost dominate, producing the diminishing returns of Figure 4.

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, ProgBuilder};

use crate::util::{block_range, touch_shared};

/// The multigrid kernel.
#[derive(Debug, Clone)]
pub struct Mg {
    /// Finest grid edge (grids are `n^3`).
    pub n: u64,
    /// Multigrid levels (finest has edge `n`, each next is halved).
    pub levels: usize,
    /// Full V-cycles.
    pub cycles: u64,
    /// Compute cycles per line of a plane per stencil sweep.
    pub cycles_per_line: u32,
}

impl Mg {
    /// Paper configuration: 32 x 32 x 32.
    pub fn paper() -> Mg {
        Mg { n: 32, levels: 4, cycles: 4, cycles_per_line: 90 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> Mg {
        Mg { n: 16, levels: 3, cycles: 2, cycles_per_line: 90 }
    }
}

/// One z-plane-blocked 3D grid.
#[derive(Clone)]
struct PlaneGrid {
    blocks: Vec<ArrayRef>,
    n: u64,
    plane_bytes: u64,
    ntasks: usize,
}

impl PlaneGrid {
    fn alloc(layout: &mut Layout, name: &str, n: u64, ntasks: usize) -> PlaneGrid {
        let plane_bytes = n * n * 8;
        let blocks = (0..ntasks)
            .map(|t| {
                let (z0, z1) = block_range(n, ntasks, t);
                layout.shared_owned(&format!("mg.{name}{t}"), (z1 - z0).max(1) * plane_bytes, t)
            })
            .collect();
        PlaneGrid { blocks, n, plane_bytes, ntasks }
    }

    fn plane(&self, z: u64) -> (ArrayRef, u64) {
        let mut t = 0;
        loop {
            let (s, e) = block_range(self.n, self.ntasks, t);
            if z >= s && z < e {
                return (self.blocks[t], (z - s) * self.plane_bytes);
            }
            t += 1;
        }
    }

    /// A 7-point-stencil sweep over task `t`'s planes: reads this grid
    /// (with the z-neighbours' boundary planes) and writes `dst` — the NAS
    /// MG structure, where `resid` reads `u` and writes `r` and `psinv`
    /// reads `r` and writes `u`. Reading one array while writing the other
    /// means ghost reads always target data finalized a phase earlier,
    /// which is what the A-stream's run-ahead prefetches exploit.
    fn sweep_into(&self, dst: &PlaneGrid, out: &mut Vec<slipstream_prog::Op>, t: usize, comp: u32) {
        let (z0, z1) = block_range(self.n, self.ntasks, t);
        for z in z0..z1 {
            if z > 0 && z == z0 {
                let (reg, off) = self.plane(z - 1);
                touch_shared(out, reg, off, self.plane_bytes, false, 0);
            }
            if z + 1 < self.n && z + 1 == z1 {
                let (reg, off) = self.plane(z + 1);
                touch_shared(out, reg, off, self.plane_bytes, false, 0);
            }
            let (reg, off) = self.plane(z);
            touch_shared(out, reg, off, self.plane_bytes, false, comp);
            let (dreg, doff) = dst.plane(z);
            touch_shared(out, dreg, doff, dst.plane_bytes, true, 0);
        }
    }
}

impl Workload for Mg {
    fn name(&self) -> &str {
        "MG"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        // Two grids per level, as in NAS MG: the solution `u` and the
        // residual `r`.
        let u_grids: Vec<PlaneGrid> = (0..self.levels)
            .map(|l| PlaneGrid::alloc(layout, &format!("u{l}"), (self.n >> l).max(2), ntasks))
            .collect();
        let r_grids: Vec<PlaneGrid> = (0..self.levels)
            .map(|l| PlaneGrid::alloc(layout, &format!("r{l}"), (self.n >> l).max(2), ntasks))
            .collect();
        let cycles = self.cycles;
        let comp = self.cycles_per_line;
        let levels = self.levels;
        Box::new(move |_layout, _inst, task| {
            let u_grids = u_grids.clone();
            let r_grids = r_grids.clone();
            let mut b = ProgBuilder::new();
            b.for_n(cycles, move |b| {
                // Down-sweep: resid (u -> r) + restrict (r fine -> u coarse).
                for l in 0..levels {
                    let u = u_grids[l].clone();
                    let r = r_grids[l].clone();
                    b.block(move |_ctx, out| u.sweep_into(&r, out, task, comp));
                    b.barrier(BarrierId(0));
                    if l + 1 < levels {
                        let fine = r_grids[l].clone();
                        let coarse = u_grids[l + 1].clone();
                        b.block(move |_ctx, out| {
                            let (z0, z1) = block_range(fine.n, fine.ntasks, task);
                            for z in z0..z1 {
                                let (reg, off) = fine.plane(z);
                                touch_shared(out, reg, off, fine.plane_bytes, false, comp / 2);
                            }
                            let (c0, c1) = block_range(coarse.n, coarse.ntasks, task);
                            for z in c0..c1 {
                                let (reg, off) = coarse.plane(z);
                                touch_shared(out, reg, off, coarse.plane_bytes, true, 0);
                            }
                        });
                        b.barrier(BarrierId(0));
                    }
                }
                // Up-sweep: prolong (u coarse -> u fine) + psinv (r -> u).
                for l in (0..levels.saturating_sub(1)).rev() {
                    let fine = u_grids[l].clone();
                    let coarse = u_grids[l + 1].clone();
                    b.block(move |_ctx, out| {
                        let (c0, c1) = block_range(coarse.n, coarse.ntasks, task);
                        for z in c0..c1 {
                            let (reg, off) = coarse.plane(z);
                            touch_shared(out, reg, off, coarse.plane_bytes, false, comp / 2);
                        }
                        let (z0, z1) = block_range(fine.n, fine.ntasks, task);
                        for z in z0..z1 {
                            let (reg, off) = fine.plane(z);
                            touch_shared(out, reg, off, fine.plane_bytes, true, 0);
                        }
                    });
                    b.barrier(BarrierId(0));
                    let r = r_grids[l].clone();
                    let u = u_grids[l].clone();
                    b.block(move |_ctx, out| r.sweep_into(&u, out, task, comp));
                    b.barrier(BarrierId(0));
                }
            });
            b.build("mg")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{InstanceId, Op};

    #[test]
    fn vcycle_barrier_count() {
        let w = Mg::quick(); // levels = 3
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count() as u64;
        // Per cycle: levels smooths + (levels-1) restricts + (levels-1)*2
        // prolong+smooth.
        let per_cycle = w.levels as u64 + (w.levels as u64 - 1) * 3;
        assert_eq!(barriers, w.cycles * per_cycle);
    }

    #[test]
    fn ghost_planes_come_from_neighbours() {
        let w = Mg::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let prog = build(&mut layout, InstanceId(1), 1);
        // Task 1's finest-level region is regions[1]; it must read from
        // regions[0] and regions[2] (z-neighbours).
        let loads: Vec<u64> = prog
            .iter()
            .filter_map(|op| match op {
                Op::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        for nb in [0usize, 2] {
            let r = &layout.regions()[nb];
            assert!(
                loads.iter().any(|a| *a >= r.base.0 && *a < r.end().0),
                "no ghost reads from task {nb}"
            );
        }
    }

    #[test]
    fn coarse_grids_shrink() {
        let w = Mg::paper();
        let mut layout = Layout::new();
        let _ = w.instantiate(1, &mut layout);
        let sizes: Vec<u64> = layout.regions().iter().map(|r| r.bytes).collect();
        assert!(sizes[0] > sizes[1], "{sizes:?}");
    }
}
