//! Ocean basin simulation (Splash-2, contiguous-partitions style), 258 x
//! 258 in the paper.
//!
//! Each timestep runs a series of 5-point stencil sweeps over several
//! working grids (vorticity, stream function, ...) followed by a red-black
//! multigrid V-cycle for the elliptic solve — every phase separated by a
//! barrier. Rows are block-partitioned; only block-boundary rows are
//! communicated, but the many short phases and the small coarse grids give
//! Ocean a high synchronization-to-work ratio, so its speedup diminishes
//! toward 16 CMPs (Figure 4) and slipstream overtakes both single and
//! double at 8 CMPs (Figure 5).

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, LockId, Op, ProgBuilder};

use crate::util::{block_range, load_line, store_line, touch_shared};

/// The Ocean kernel.
#[derive(Debug, Clone)]
pub struct Ocean {
    /// Grids are `n x n` doubles (paper: 258).
    pub n: u64,
    /// Number of working grids swept per timestep.
    pub grids: usize,
    /// Timesteps.
    pub steps: u64,
    /// Multigrid levels in the V-cycle solver.
    pub levels: usize,
    /// Compute cycles per grid line per sweep.
    pub cycles_per_line: u32,
}

impl Ocean {
    /// Paper configuration: 258 x 258.
    pub fn paper() -> Ocean {
        Ocean { n: 258, grids: 20, steps: 2, levels: 5, cycles_per_line: 30 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> Ocean {
        Ocean { n: 130, grids: 6, steps: 1, levels: 4, cycles_per_line: 30 }
    }
}

/// One row-blocked grid: per-task owned regions.
#[derive(Clone)]
struct GridBlocks {
    blocks: Vec<ArrayRef>,
    n: u64,
    row_bytes: u64,
    ntasks: usize,
}

impl GridBlocks {
    fn alloc(layout: &mut Layout, name: &str, n: u64, ntasks: usize) -> GridBlocks {
        let row_bytes = n * 8;
        let blocks = (0..ntasks)
            .map(|t| {
                let (r0, r1) = block_range(n, ntasks, t);
                layout.shared_owned(&format!("ocean.{name}{t}"), (r1 - r0).max(1) * row_bytes, t)
            })
            .collect();
        GridBlocks { blocks, n, row_bytes, ntasks }
    }

    fn row(&self, r: u64) -> (ArrayRef, u64) {
        let mut t = 0;
        loop {
            let (s, e) = block_range(self.n, self.ntasks, t);
            if r >= s && r < e {
                return (self.blocks[t], (r - s) * self.row_bytes);
            }
            t += 1;
        }
    }

    /// Emits one 5-point stencil sweep over task `t`'s rows.
    ///
    /// Jacobi-style: every task reads the old values (its own rows plus the
    /// block-boundary rows of its neighbours), then a barrier retires all
    /// reads before anyone stores the new values. Ocean proper gets the
    /// same ordering from distinct source/destination grids per sweep; at
    /// row granularity the mid-sweep barrier is the equivalent discipline.
    fn sweep(&self, out: &mut Vec<slipstream_prog::Op>, t: usize, comp: u32) {
        let (my0, my1) = block_range(self.n, self.ntasks, t);
        for r in my0..my1 {
            if r > 0 && r == my0 {
                let (reg, off) = self.row(r - 1);
                touch_shared(out, reg, off, self.row_bytes, false, 0);
            }
            if r + 1 < self.n && r + 1 == my1 {
                let (reg, off) = self.row(r + 1);
                touch_shared(out, reg, off, self.row_bytes, false, 0);
            }
            let (reg, off) = self.row(r);
            touch_shared(out, reg, off, self.row_bytes, false, comp);
        }
        out.push(Op::Barrier(BarrierId(0)));
        for r in my0..my1 {
            let (reg, off) = self.row(r);
            touch_shared(out, reg, off, self.row_bytes, true, 0);
        }
    }
}

impl Workload for Ocean {
    fn name(&self) -> &str {
        "OCEAN"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        // Global scalars for the solver's convergence checks.
        let scalars = layout.shared("ocean.err", 64);
        let work_grids: Vec<GridBlocks> = (0..self.grids)
            .map(|g| GridBlocks::alloc(layout, &format!("g{g}"), self.n, ntasks))
            .collect();
        // Multigrid hierarchy: n, n/2+1, n/4+1, ...
        let mg_grids: Vec<GridBlocks> = (0..self.levels)
            .map(|l| {
                let ln = (self.n >> l).max(4) + 1;
                GridBlocks::alloc(layout, &format!("mg{l}"), ln, ntasks)
            })
            .collect();
        let steps = self.steps;
        let comp = self.cycles_per_line;
        let levels = self.levels;
        Box::new(move |_layout, _inst, task| {
            let work_grids = work_grids.clone();
            let mg_grids = mg_grids.clone();
            let mut b = ProgBuilder::new();
            b.for_n(steps, move |b| {
                // Phase 1: stencil sweeps over the working grids.
                for g in work_grids.clone() {
                    b.block(move |_ctx, out| g.sweep(out, task, comp));
                    b.barrier(BarrierId(0));
                }
                // Phase 2: multigrid V-cycle on the elliptic system.
                // Down: smooth + convergence reduction + restrict. The
                // solver's error check is a lock-protected global
                // accumulation, as in Ocean's multigrid (a serialization
                // point that grows with the task count).
                for l in 0..levels {
                    let fine = mg_grids[l].clone();
                    b.block(move |_ctx, out| fine.sweep(out, task, comp));
                    b.lock(LockId(0));
                    b.block(move |_ctx, out| {
                        load_line(out, scalars, 0);
                        out.push(Op::Compute(8));
                        store_line(out, scalars, 0);
                    });
                    b.unlock(LockId(0));
                    b.barrier(BarrierId(0));
                    if l + 1 < levels {
                        let fine = mg_grids[l].clone();
                        let coarse = mg_grids[l + 1].clone();
                        b.block(move |_ctx, out| {
                            // Restrict: read my fine rows, write my coarse
                            // rows.
                            let (f0, f1) = block_range(fine.n, fine.ntasks, task);
                            for r in f0..f1 {
                                let (reg, off) = fine.row(r);
                                touch_shared(out, reg, off, fine.row_bytes, false, comp / 2);
                            }
                            let (c0, c1) = block_range(coarse.n, coarse.ntasks, task);
                            for r in c0..c1 {
                                let (reg, off) = coarse.row(r);
                                touch_shared(out, reg, off, coarse.row_bytes, true, 0);
                            }
                        });
                        b.barrier(BarrierId(0));
                    }
                }
                // Up: prolong + smooth.
                for l in (0..levels.saturating_sub(1)).rev() {
                    let fine = mg_grids[l].clone();
                    let coarse = mg_grids[l + 1].clone();
                    b.block(move |_ctx, out| {
                        let (c0, c1) = block_range(coarse.n, coarse.ntasks, task);
                        for r in c0..c1 {
                            let (reg, off) = coarse.row(r);
                            touch_shared(out, reg, off, coarse.row_bytes, false, comp / 2);
                        }
                        let (f0, f1) = block_range(fine.n, fine.ntasks, task);
                        for r in f0..f1 {
                            let (reg, off) = fine.row(r);
                            touch_shared(out, reg, off, fine.row_bytes, true, 0);
                        }
                    });
                    b.barrier(BarrierId(0));
                    let fine2 = mg_grids[l].clone();
                    b.block(move |_ctx, out| fine2.sweep(out, task, comp));
                    b.barrier(BarrierId(0));
                }
            });
            b.build("ocean")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{InstanceId, Op};

    #[test]
    fn many_barriers_per_step() {
        let w = Ocean::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count() as u64;
        // Each sweep carries a mid-sweep (read/write split) barrier plus its
        // end-of-phase barrier; sweeps happen once per working grid, once per
        // down-cycle smooth, and once per up-cycle smooth. Restricts and
        // prolongs add one barrier each.
        let (g, l) = (w.grids as u64, w.levels as u64);
        let per_step = 2 * g + 2 * l + 4 * (l - 1);
        assert_eq!(barriers, w.steps * per_step);
    }

    #[test]
    fn coarse_levels_leave_some_tasks_nearly_idle() {
        // At 16 tasks a 9-row coarse grid gives several tasks no rows:
        // their sweep emits no ops, but they still hit the barrier.
        let w = Ocean::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(16, &mut layout);
        let hi = build(&mut layout, InstanceId(0), 0).iter().count();
        let lo = build(&mut layout, InstanceId(15), 15).iter().count();
        assert!(lo < hi, "task 15 ({lo} ops) should do less than task 0 ({hi} ops)");
    }

    #[test]
    fn deterministic_program_generation() {
        let w = Ocean::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let a: Vec<Op> = build(&mut layout, InstanceId(0), 0).iter().collect();
        let b: Vec<Op> = build(&mut layout, InstanceId(1), 0).iter().collect();
        assert_eq!(a, b, "same task, different instance: identical shared pattern");
    }
}
