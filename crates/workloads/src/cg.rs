//! NAS Conjugate Gradient (shared-memory version), n = 1400 in the paper.
//!
//! Each CG iteration performs a sparse matrix-vector product (reading
//! pseudo-random columns of the shared direction vector `p`), two global
//! dot-product reductions (lock + barrier), and vector updates on owned
//! segments, ending with the `p` update that invalidates every consumer's
//! cached copy. The fine-grained broadcast sharing of `p` plus four
//! barriers and two reductions per iteration make CG sync/latency bound at
//! 16 CMPs (Figure 4), where the paper shows slipstream + SI gaining ~14%.

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_kernel::SplitMix64;
use slipstream_prog::{ArrayRef, BarrierId, Layout, LockId, Op, ProgBuilder};

use crate::util::{block_range, load_line, store_line, touch_shared};

/// The conjugate-gradient kernel.
#[derive(Debug, Clone)]
pub struct Cg {
    /// Problem order (vector length).
    pub na: u64,
    /// Nonzeros per matrix row.
    pub nnz_per_row: u64,
    /// CG iterations.
    pub iters: u64,
    /// Compute cycles per nonzero (multiply-add + index).
    pub cycles_per_nnz: u32,
    /// RNG seed for the sparsity pattern.
    pub seed: u64,
}

impl Cg {
    /// Paper configuration: n = 1400.
    pub fn paper() -> Cg {
        Cg { na: 1400, nnz_per_row: 24, iters: 12, cycles_per_nnz: 10, seed: 0xC6 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> Cg {
        Cg { na: 400, nnz_per_row: 12, iters: 6, cycles_per_nnz: 10, seed: 0xC6 }
    }
}

impl Workload for Cg {
    fn name(&self) -> &str {
        "CG"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let na = self.na;
        let nnz = self.nnz_per_row;
        // Owned segments of the vectors (first-touch); p is the one every
        // task reads from everywhere.
        let seg_alloc = |layout: &mut Layout, name: &str| -> Vec<ArrayRef> {
            (0..ntasks)
                .map(|t| {
                    let (r0, r1) = block_range(na, ntasks, t);
                    layout.shared_owned(&format!("cg.{name}{t}"), (r1 - r0).max(1) * 8, t)
                })
                .collect()
        };
        let p = seg_alloc(layout, "p");
        let q = seg_alloc(layout, "q");
        let r = seg_alloc(layout, "r");
        // Sparse matrix values+indices, owned by row block (read-only).
        let a: Vec<ArrayRef> = (0..ntasks)
            .map(|t| {
                let (r0, r1) = block_range(na, ntasks, t);
                layout.shared_owned(&format!("cg.a{t}"), (r1 - r0).max(1) * nnz * 12, t)
            })
            .collect();
        // One line of global scalars for the reductions.
        let scalars = layout.shared("cg.scalars", 64);
        let iters = self.iters;
        let cpn = self.cycles_per_nnz;
        let seed = self.seed;
        Box::new(move |_layout, _inst, task| {
            let (my0, my1) = block_range(na, ntasks, task);
            let p = p.clone();
            let q = q.clone();
            let r = r.clone();
            let a = a.clone();
            let elem_of = move |segs: &[ArrayRef], i: u64| -> (ArrayRef, u64) {
                let mut t = 0;
                loop {
                    let (s, e) = block_range(na, ntasks, t);
                    if i >= s && i < e {
                        return (segs[t], (i - s) * 8);
                    }
                    t += 1;
                }
            };
            let mut b = ProgBuilder::new();
            b.for_n(iters, move |b| {
                // q = A * p over my rows: read my matrix rows (streaming,
                // owned) and gather pseudo-random elements of p.
                let p_mv = p.clone();
                let q_mv = q.clone();
                let a_mv = a.clone();
                b.block(move |_ctx, out| {
                    for row in my0..my1 {
                        // Matrix row: values + column indices, contiguous.
                        let (areg, aoff) = {
                            let mut t = 0;
                            loop {
                                let (s, e) = block_range(na, ntasks, t);
                                if row >= s && row < e {
                                    break (a_mv[t], (row - s) * nnz * 12);
                                }
                                t += 1;
                            }
                        };
                        touch_shared(out, areg, aoff, nnz * 12, false, 0);
                        // Gather from p at the row's pattern (deterministic
                        // per row, so A- and R-stream agree).
                        let mut rng = SplitMix64::new(seed ^ row.wrapping_mul(0x9E37));
                        for _ in 0..nnz {
                            let col = rng.next_below(na);
                            let (reg, off) = elem_of(&p_mv, col);
                            load_line(out, reg, off);
                            out.push(Op::Compute(cpn));
                        }
                        let (qreg, qoff) = elem_of(&q_mv, row);
                        store_line(out, qreg, qoff);
                    }
                });
                b.barrier(BarrierId(0));
                // alpha = (r.r) / (p.q): local partials over owned
                // segments, then a lock-protected global accumulate.
                let p_d = p.clone();
                let q_d = q.clone();
                b.block(move |_ctx, out| {
                    let (preg, poff) = elem_of(&p_d, my0);
                    touch_shared(out, preg, poff, (my1 - my0) * 8, false, 16);
                    let (qreg, qoff) = elem_of(&q_d, my0);
                    touch_shared(out, qreg, qoff, (my1 - my0) * 8, false, 16);
                });
                b.lock(LockId(0));
                b.block(move |_ctx, out| {
                    load_line(out, scalars, 0);
                    out.push(Op::Compute(6));
                    store_line(out, scalars, 0);
                });
                b.unlock(LockId(0));
                b.barrier(BarrierId(0));
                // x += alpha p ; r -= alpha q on owned segments.
                let q_x = q.clone();
                let r_x = r.clone();
                b.block(move |_ctx, out| {
                    let (qreg, qoff) = elem_of(&q_x, my0);
                    touch_shared(out, qreg, qoff, (my1 - my0) * 8, false, 8);
                    let (rreg, roff) = elem_of(&r_x, my0);
                    touch_shared(out, rreg, roff, (my1 - my0) * 8, true, 8);
                });
                // rho = r.r reduction.
                b.lock(LockId(1));
                b.block(move |_ctx, out| {
                    load_line(out, scalars, 0);
                    out.push(Op::Compute(6));
                    store_line(out, scalars, 0);
                });
                b.unlock(LockId(1));
                b.barrier(BarrierId(0));
                // p = r + beta p on owned segment: invalidates every
                // consumer's cached copy of p.
                let p_u = p.clone();
                let r_u = r.clone();
                b.block(move |_ctx, out| {
                    let (rreg, roff) = elem_of(&r_u, my0);
                    touch_shared(out, rreg, roff, (my1 - my0) * 8, false, 8);
                    let (preg, poff) = elem_of(&p_u, my0);
                    touch_shared(out, preg, poff, (my1 - my0) * 8, true, 0);
                });
                b.barrier(BarrierId(0));
            });
            b.build("cg")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::InstanceId;

    #[test]
    fn gather_pattern_is_deterministic_across_instances() {
        let w = Cg::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let a: Vec<Op> = build(&mut layout, InstanceId(0), 2).iter().collect();
        let b: Vec<Op> = build(&mut layout, InstanceId(9), 2).iter().collect();
        assert_eq!(a, b, "A-stream must see the same shared addresses as its R-stream");
    }

    #[test]
    fn four_barriers_two_reductions_per_iteration() {
        let w = Cg::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count() as u64;
        let locks = prog.iter().filter(|o| matches!(o, Op::Lock(_))).count() as u64;
        assert_eq!(barriers, 4 * w.iters);
        assert_eq!(locks, 2 * w.iters);
    }

    #[test]
    fn matvec_reads_p_from_many_segments() {
        let w = Cg::quick();
        let mut layout = Layout::new();
        let ntasks = 4;
        let build = w.instantiate(ntasks, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let loads: std::collections::HashSet<u64> = prog
            .iter()
            .filter_map(|op| match op {
                Op::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        // p segments are the first `ntasks` regions.
        let mut touched = 0;
        for r in layout.regions().iter().take(ntasks) {
            if loads.iter().any(|a| *a >= r.base.0 && *a < r.end().0) {
                touched += 1;
            }
        }
        assert!(touched >= 3, "gather should span most p segments, got {touched}");
    }
}
