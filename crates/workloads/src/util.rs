//! Shared helpers for kernel construction: block partitioning and
//! line-granular access emission.

use slipstream_kernel::Addr;
use slipstream_prog::{ArrayRef, Op, Space};

/// Cache line size assumed by the workloads (matches the default machine).
pub const LINE: u64 = 64;

/// Splits `n` items over `ntasks` tasks; returns task `t`'s half-open
/// range. Remainder items go to the lowest-numbered tasks, so ranges never
/// differ by more than one.
///
/// # Example
///
/// ```
/// use slipstream_workloads::util::block_range;
/// assert_eq!(block_range(10, 4, 0), (0, 3));
/// assert_eq!(block_range(10, 4, 1), (3, 6));
/// assert_eq!(block_range(10, 4, 2), (6, 8));
/// assert_eq!(block_range(10, 4, 3), (8, 10));
/// ```
pub fn block_range(n: u64, ntasks: usize, t: usize) -> (u64, u64) {
    let ntasks = ntasks as u64;
    let t = t as u64;
    assert!(t < ntasks);
    let base = n / ntasks;
    let rem = n % ntasks;
    let start = t * base + t.min(rem);
    let len = base + u64::from(t < rem);
    (start, start + len)
}

/// Emits one access per cache line covering the byte range
/// `[start, start+bytes)` of `region`, each followed by
/// `compute_per_line` cycles. This is the standard trace reduction used by
/// every kernel: per-element accesses that would hit in the L1 anyway are
/// folded into the compute cost (DESIGN.md §7).
pub fn touch(
    out: &mut Vec<Op>,
    region: ArrayRef,
    start: u64,
    bytes: u64,
    store: bool,
    space: Space,
    compute_per_line: u32,
) {
    if bytes == 0 {
        return;
    }
    let base = region.base().0 + start;
    let first = base / LINE;
    let last = (base + bytes - 1) / LINE;
    for l in first..=last {
        let addr = Addr(l * LINE);
        out.push(if store { Op::Store { addr, space } } else { Op::Load { addr, space } });
        if compute_per_line > 0 {
            out.push(Op::Compute(compute_per_line));
        }
    }
}

/// Shorthand for a shared-space [`touch`].
pub fn touch_shared(
    out: &mut Vec<Op>,
    region: ArrayRef,
    start: u64,
    bytes: u64,
    store: bool,
    compute_per_line: u32,
) {
    touch(out, region, start, bytes, store, Space::Shared, compute_per_line);
}

/// Emits a single shared load of the line containing byte `off` of
/// `region`.
pub fn load_line(out: &mut Vec<Op>, region: ArrayRef, off: u64) {
    let addr = Addr(((region.base().0 + off) / LINE) * LINE);
    out.push(Op::load_shared(addr));
}

/// Emits a single shared store to the line containing byte `off` of
/// `region`.
pub fn store_line(out: &mut Vec<Op>, region: ArrayRef, off: u64) {
    let addr = Addr(((region.base().0 + off) / LINE) * LINE);
    out.push(Op::store_shared(addr));
}

/// A near-square factorization `(pr, pc)` of `p` with `pr * pc == p` and
/// `pr <= pc`, used for 2D block-scatter ownership (LU).
///
/// # Example
///
/// ```
/// use slipstream_workloads::util::factor2;
/// assert_eq!(factor2(16), (4, 4));
/// assert_eq!(factor2(8), (2, 4));
/// assert_eq!(factor2(7), (1, 7));
/// ```
pub fn factor2(p: usize) -> (usize, usize) {
    let mut pr = (p as f64).sqrt() as usize;
    while pr > 1 && !p.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), p / pr.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::Layout;

    #[test]
    fn block_range_covers_exactly() {
        for n in [1u64, 7, 16, 100, 1023] {
            for p in [1usize, 2, 3, 4, 8, 16, 32] {
                let mut covered = 0;
                let mut prev_end = 0;
                for t in 0..p {
                    let (s, e) = block_range(n, p, t);
                    assert_eq!(s, prev_end, "contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} p={p}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn block_range_is_balanced() {
        for t in 0..7 {
            let (s, e) = block_range(100, 7, t);
            assert!((e - s) == 14 || (e - s) == 15);
        }
    }

    #[test]
    fn touch_emits_one_access_per_line() {
        let mut layout = Layout::new();
        let arr = layout.shared("a", 4096);
        let mut out = Vec::new();
        touch_shared(&mut out, arr, 10, 200, false, 5);
        // Bytes 10..210 relative to a page-aligned base: lines 0..=3.
        let loads: Vec<_> = out.iter().filter(|o| o.is_access()).collect();
        assert_eq!(loads.len(), 4);
        let computes = out.iter().filter(|o| matches!(o, Op::Compute(5))).count();
        assert_eq!(computes, 4);
    }

    #[test]
    fn touch_zero_bytes_is_empty() {
        let mut layout = Layout::new();
        let arr = layout.shared("a", 4096);
        let mut out = Vec::new();
        touch_shared(&mut out, arr, 0, 0, true, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn line_helpers_align() {
        let mut layout = Layout::new();
        let arr = layout.shared("a", 4096);
        let mut out = Vec::new();
        load_line(&mut out, arr, 100);
        store_line(&mut out, arr, 100);
        match (&out[0], &out[1]) {
            (Op::Load { addr: a, .. }, Op::Store { addr: b, .. }) => {
                assert_eq!(a, b);
                assert_eq!(a.0 % LINE, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn factor2_products() {
        for p in 1..=32 {
            let (pr, pc) = factor2(p);
            assert_eq!(pr * pc, p);
            assert!(pr <= pc);
        }
    }
}
