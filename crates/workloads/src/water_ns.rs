//! WATER-NSQUARED (Splash-2), 512 molecules in the paper.
//!
//! Molecular dynamics of water with an O(n^2) all-pairs force computation.
//! Molecules are block-owned; each timestep runs predict (own molecules),
//! inter-molecular forces (each task loads every partner molecule's
//! position and accumulates partial forces locally, then merges them into
//! the shared force array under per-molecule locks), and intra-molecular
//! correction — with barriers between phases. The lock-protected force
//! merge makes Water-NS the suite's migratory-sharing benchmark: the paper
//! reports its largest slipstream gain (19% prefetch-only, +12% more with
//! self-invalidation). Uses the 128 KB L2 (Table 1 footnote).

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, LockId, ProgBuilder};

use crate::util::{block_range, touch_shared};

/// The O(n^2) water simulation.
#[derive(Debug, Clone)]
pub struct WaterNs {
    /// Number of molecules.
    pub nm: u64,
    /// Timesteps.
    pub steps: u64,
    /// Compute cycles per molecule pair (inter-molecular potential).
    pub cycles_per_pair: u32,
    /// Distinct force locks (Splash-2 uses per-molecule locks; molecules
    /// hash onto this many).
    pub nlocks: u32,
}

impl WaterNs {
    /// Paper configuration: 512 molecules.
    pub fn paper() -> WaterNs {
        WaterNs { nm: 512, steps: 2, cycles_per_pair: 65, nlocks: 128 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> WaterNs {
        WaterNs { nm: 128, steps: 2, cycles_per_pair: 65, nlocks: 32 }
    }
}

impl Workload for WaterNs {
    fn name(&self) -> &str {
        "WATER-NS"
    }

    fn small_l2(&self) -> bool {
        true
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let nm = self.nm;
        // One molecule record, as in Splash-2's VAR array: predictor
        // derivatives for 3 atoms x 3 coordinates plus forces — ~700 bytes.
        // Layout: lines 0-1 positions (read by the pair loop), lines 2-3
        // forces (lock-merged), lines 4-10 predictor state (owner only).
        let mol_bytes = 11 * 64u64;
        let pos_off = 0u64;
        let pos_bytes = 2 * 64u64;
        let frc_off = 2 * 64u64;
        let frc_bytes = 2 * 64u64;
        let mols: Vec<ArrayRef> = (0..ntasks)
            .map(|t| {
                let (m0, m1) = block_range(nm, ntasks, t);
                layout.shared_owned(&format!("water.var{t}"), (m1 - m0).max(1) * mol_bytes, t)
            })
            .collect();
        let steps = self.steps;
        let cpp = self.cycles_per_pair;
        let nlocks = self.nlocks;
        Box::new(move |layout, inst, task| {
            let (my0, my1) = block_range(nm, ntasks, task);
            let scratch = layout.private(inst, "water.partial", (my1 - my0).max(1) * mol_bytes);
            let mols = mols.clone();
            let locate = move |arr: &[ArrayRef], m: u64| -> (ArrayRef, u64) {
                let mut t = 0;
                loop {
                    let (s, e) = block_range(nm, ntasks, t);
                    if m >= s && m < e {
                        return (arr[t], (m - s) * mol_bytes);
                    }
                    t += 1;
                }
            };
            let mut b = ProgBuilder::new();
            b.for_n(steps, move |b| {
                // Predict: advance own molecules — rewrites the whole
                // predictor record (the shared position/force lines need
                // upgrades, since consumers hold them from last step).
                let mols_p = mols.clone();
                b.block(move |_ctx, out| {
                    for m in my0..my1 {
                        let (reg, off) = locate(&mols_p, m);
                        touch_shared(out, reg, off, mol_bytes, false, 24);
                        touch_shared(out, reg, off, mol_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
                // Inter-molecular forces: all pairs (i, j), i owned, j > i.
                // Partial forces accumulate in private scratch; the merge
                // into the shared force array is lock-protected.
                let mols_f = mols.clone();
                b.block(move |_ctx, out| {
                    for i in my0..my1 {
                        let (ireg, ioff) = locate(&mols_f, i);
                        touch_shared(out, ireg, ioff + pos_off, pos_bytes, false, 0);
                        // Balanced half-ring pairing, as in Splash-2: each
                        // molecule interacts with the nm/2 molecules that
                        // follow it around the ring, so every task computes
                        // the same number of pairs.
                        for k in 1..=(nm / 2) {
                            let j = (i + k) % nm;
                            let (reg, off) = locate(&mols_f, j);
                            touch_shared(out, reg, off + pos_off, pos_bytes, false, 0);
                            out.push(slipstream_prog::Op::Compute(cpp));
                        }
                        // Accumulate partial force for i privately.
                        crate::util::touch(
                            out,
                            scratch,
                            (i - my0) * mol_bytes,
                            mol_bytes,
                            true,
                            slipstream_prog::Space::Private,
                            0,
                        );
                    }
                });
                // Merge partial forces under per-molecule locks. A task
                // interacted with the molecules in its half-ring window
                // (its own block plus the nm/2 molecules after it), so only
                // those forces are updated. Tasks start at their own block
                // and walk forward, as in Splash-2, to avoid lock convoys.
                let window = (my1 - my0) + nm / 2;
                for k in 0..window.min(nm) {
                    let m = (my0 + k) % nm;
                    let lock = LockId((m % nlocks as u64) as u32);
                    let (reg, off) = locate(&mols, m);
                    b.lock(lock);
                    b.block(move |_ctx, out| {
                        touch_shared(out, reg, off + frc_off, frc_bytes, false, 4);
                        touch_shared(out, reg, off + frc_off, frc_bytes, true, 0);
                    });
                    b.unlock(lock);
                }
                b.barrier(BarrierId(0));
                // Intra-molecular terms + correction on own molecules:
                // read the merged forces, rewrite the record.
                let mols_c = mols.clone();
                b.block(move |_ctx, out| {
                    for m in my0..my1 {
                        let (reg, off) = locate(&mols_c, m);
                        touch_shared(out, reg, off + frc_off, frc_bytes, false, 0);
                        touch_shared(out, reg, off, mol_bytes, false, 40);
                        touch_shared(out, reg, off, mol_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("water-ns")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{InstanceId, Op};

    #[test]
    fn pair_loop_reads_all_partners() {
        let w = WaterNs { nm: 32, steps: 1, cycles_per_pair: 10, nlocks: 8 };
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        // Task 0 owns molecules 0..8; the half-ring reaches molecules up
        // to (7 + nm/2) = 23, i.e. the position blocks of tasks 0..3's
        // first three blocks at least.
        let loads: std::collections::HashSet<u64> = prog
            .iter()
            .filter_map(|op| match op {
                Op::Load { addr, space: slipstream_prog::Space::Shared } => Some(addr.0),
                _ => None,
            })
            .collect();
        let mut reached = 0;
        for t in 0..4usize {
            let r = &layout.regions()[t]; // pos regions come first
            if loads.iter().any(|a| *a >= r.base.0 && *a < r.end().0) {
                reached += 1;
            }
        }
        assert!(reached >= 3, "half-ring should span most position blocks, got {reached}");
    }

    #[test]
    fn lock_usage_is_balanced_and_paired() {
        let w = WaterNs { nm: 32, steps: 1, cycles_per_pair: 10, nlocks: 8 };
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let locks = prog.iter().filter(|o| matches!(o, Op::Lock(_))).count();
        let unlocks = prog.iter().filter(|o| matches!(o, Op::Unlock(_))).count();
        assert_eq!(locks, unlocks);
        assert_eq!(locks as u64, w.nm, "one merge per molecule per step");
    }

    #[test]
    fn uses_small_l2() {
        assert!(WaterNs::paper().small_l2());
    }

    #[test]
    fn three_barriers_per_step() {
        let w = WaterNs::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count() as u64;
        assert_eq!(barriers, 3 * w.steps);
    }
}
