//! Red-black successive over-relaxation on a 2D grid (1024 x 1024 in the
//! paper).
//!
//! The grid is partitioned into contiguous row blocks, one per task
//! (first-touch pages). Each iteration performs two half-sweeps (red
//! points, then black points), each ending in a barrier. A half-sweep over
//! row `r` reads rows `r-1`, `r`, `r+1` and writes row `r`; only the two
//! boundary rows of each block are communicated, making SOR the classic
//! nearest-neighbour producer-consumer kernel. The paper finds SOR at this
//! size has reached its scalability limit (double buys nothing) while
//! slipstream gains ~14%.

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, ProgBuilder};

use crate::util::{block_range, touch_shared};

/// Row-block red-black SOR.
#[derive(Debug, Clone)]
pub struct Sor {
    /// Grid is `n x n` doubles.
    pub n: u64,
    /// Full iterations (each = 2 half-sweeps).
    pub iters: u64,
    /// Compute cycles per grid line per half-sweep (4 points updated per
    /// 8-element line, ~5 flops plus addressing each).
    pub cycles_per_line: u32,
}

impl Sor {
    /// Paper configuration: 1024 x 1024.
    pub fn paper() -> Sor {
        Sor { n: 1024, iters: 3, cycles_per_line: 60 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> Sor {
        Sor { n: 256, iters: 3, cycles_per_line: 60 }
    }

    /// Problem size scaled with the machine: 4 rows per node and at least
    /// the quick grid, so every node has work at 256+ nodes while small
    /// configurations stay comparable to [`Sor::quick`]. Used by the
    /// scaling study (`fig_scaling`).
    pub fn scaled(nodes: u16) -> Sor {
        Sor { n: (4 * nodes as u64).max(256), iters: 3, cycles_per_line: 60 }
    }
}

impl Workload for Sor {
    fn name(&self) -> &str {
        "SOR"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let n = self.n;
        let row_bytes = n * 8;
        // The red and black points live in separate arrays (the standard
        // layout for parallel red-black SOR: it avoids false sharing
        // between the colours). A half-sweep reads one colour — data
        // finalized in the *previous* half-sweep, which is what makes the
        // A-stream's one-session-ahead prefetches timely — and writes the
        // other. Each colour array is n x n/2 doubles, row-blocked with
        // first-touch pages.
        let row_bytes = row_bytes / 2; // half the points per colour row
        let alloc = |layout: &mut Layout, which: &str| -> Vec<ArrayRef> {
            (0..ntasks)
                .map(|t| {
                    let (r0, r1) = block_range(n, ntasks, t);
                    layout.shared_owned(
                        &format!("sor.{which}{t}"),
                        (r1 - r0).max(1) * row_bytes,
                        t,
                    )
                })
                .collect()
        };
        let grid0 = alloc(layout, "red");
        let grid1 = alloc(layout, "black");
        let iters = self.iters;
        let cpl = self.cycles_per_line;
        Box::new(move |_layout, _inst, task| {
            let (my0, my1) = block_range(n, ntasks, task);
            let grids = [grid0.clone(), grid1.clone()];
            let locate = move |g: usize, row: u64| -> (ArrayRef, u64) {
                // (region, byte offset) of a global row in grid g.
                let mut t = 0;
                loop {
                    let (s, e) = block_range(n, ntasks, t);
                    if row >= s && row < e {
                        return (grids[g][t], (row - s) * row_bytes);
                    }
                    t += 1;
                }
            };
            let mut b = ProgBuilder::new();
            b.for_n(iters * 2, move |b| {
                // One half-sweep (red or black): read the stencil from the
                // source grid, write updates into the destination grid.
                let locate = locate.clone();
                b.block(move |ctx, out| {
                    let src = (ctx.i(0) % 2) as usize;
                    let dst = src ^ 1;
                    for r in my0..my1 {
                        // Boundary rows come from the neighbours' blocks;
                        // interior neighbour rows are my own and stream in
                        // with the sweep.
                        if r > 0 && r == my0 {
                            let (reg, off) = locate(src, r - 1);
                            touch_shared(out, reg, off, row_bytes, false, 0);
                        }
                        if r + 1 < n && r + 1 == my1 {
                            let (reg, off) = locate(src, r + 1);
                            touch_shared(out, reg, off, row_bytes, false, 0);
                        }
                        let (reg, off) = locate(src, r);
                        touch_shared(out, reg, off, row_bytes, false, cpl);
                        let (dreg, doff) = locate(dst, r);
                        touch_shared(out, dreg, doff, row_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("sor")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{InstanceId, Op};

    #[test]
    fn task_programs_cover_disjoint_row_blocks() {
        let w = Sor { n: 64, iters: 1, cycles_per_line: 4 };
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let mut all_stores: Vec<Vec<u64>> = Vec::new();
        for t in 0..4 {
            let prog = build(&mut layout, InstanceId(t as u32), t);
            let stores: Vec<u64> = prog
                .iter()
                .filter_map(|op| match op {
                    Op::Store { addr, .. } => Some(addr.0),
                    _ => None,
                })
                .collect();
            assert!(!stores.is_empty());
            all_stores.push(stores);
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                for addr in &all_stores[a] {
                    assert!(!all_stores[b].contains(addr), "tasks {a} and {b} both write {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn sweep_count_matches_iterations() {
        let w = Sor { n: 32, iters: 2, cycles_per_line: 4 };
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count();
        assert_eq!(barriers, 4, "2 iterations x 2 half-sweeps");
    }

    #[test]
    fn boundary_rows_are_read_from_neighbours() {
        let w = Sor { n: 64, iters: 1, cycles_per_line: 4 };
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        // Task 1 must read lines inside task 0's and task 2's regions.
        let prog = build(&mut layout, InstanceId(1), 1);
        let loads: Vec<u64> = prog
            .iter()
            .filter_map(|op| match op {
                Op::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        let regions = layout.regions();
        let r0 = &regions[0];
        let r2 = &regions[2];
        assert!(loads.iter().any(|a| *a >= r0.base.0 && *a < r0.end().0), "reads task 0 rows");
        assert!(loads.iter().any(|a| *a >= r2.base.0 && *a < r2.end().0), "reads task 2 rows");
    }
}
