//! WATER-SPATIAL (Splash-2), 512 molecules in the paper.
//!
//! The same physics as WATER-NSQUARED but with a 3D cell-list (spatial)
//! decomposition: molecules live in boxes, and forces only involve
//! molecules in the 26 neighbouring boxes, so communication is surface-
//! to-volume limited. The paper's Figure 4 shows Water-SP still scaling at
//! 16 CMPs — it is (with LU) the benchmark slipstream should *not* be
//! used for. Uses the 128 KB L2 (Table 1 footnote).

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, Op, ProgBuilder};

use crate::util::{block_range, touch_shared};

/// The spatial (cell-list) water simulation.
#[derive(Debug, Clone)]
pub struct WaterSp {
    /// Number of molecules.
    pub nm: u64,
    /// Box grid edge (boxes are `side^3`).
    pub side: u64,
    /// Timesteps.
    pub steps: u64,
    /// Compute cycles per molecule pair.
    pub cycles_per_pair: u32,
}

impl WaterSp {
    /// Paper configuration: 512 molecules in a 4x4x4 box grid.
    pub fn paper() -> WaterSp {
        WaterSp { nm: 512, side: 4, steps: 2, cycles_per_pair: 160 }
    }

    /// Reduced size for tests and smoke runs.
    pub fn quick() -> WaterSp {
        WaterSp { nm: 128, side: 3, steps: 2, cycles_per_pair: 160 }
    }

    fn nboxes(&self) -> u64 {
        self.side * self.side * self.side
    }

    fn mols_per_box(&self) -> u64 {
        self.nm.div_ceil(self.nboxes())
    }
}

impl Workload for WaterSp {
    fn name(&self) -> &str {
        "WATER-SP"
    }

    fn small_l2(&self) -> bool {
        true
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let side = self.side;
        let nboxes = self.nboxes();
        let box_bytes = self.mols_per_box() * 64; // one line per molecule
        // Boxes linearized z-major, block-owned.
        let boxes: Vec<ArrayRef> = (0..ntasks)
            .map(|t| {
                let (b0, b1) = block_range(nboxes, ntasks, t);
                layout.shared_owned(&format!("watersp.box{t}"), (b1 - b0).max(1) * box_bytes, t)
            })
            .collect();
        let steps = self.steps;
        let cpp = self.cycles_per_pair;
        let mpb = self.mols_per_box();
        Box::new(move |_layout, _inst, task| {
            let boxes = boxes.clone();
            let locate = move |bx: u64| -> (ArrayRef, u64) {
                let mut t = 0;
                loop {
                    let (s, e) = block_range(nboxes, ntasks, t);
                    if bx >= s && bx < e {
                        return (boxes[t], (bx - s) * box_bytes);
                    }
                    t += 1;
                }
            };
            let (my0, my1) = block_range(nboxes, ntasks, task);
            // 27-neighbourhood (with clamping at the walls).
            let neighbours = move |bx: u64| -> Vec<u64> {
                let (z, rem) = (bx / (side * side), bx % (side * side));
                let (y, x) = (rem / side, rem % side);
                let mut v = Vec::with_capacity(27);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (nx, ny, nz) =
                                (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if (0..side as i64).contains(&nx)
                                && (0..side as i64).contains(&ny)
                                && (0..side as i64).contains(&nz)
                            {
                                v.push((nz as u64 * side + ny as u64) * side + nx as u64);
                            }
                        }
                    }
                }
                v
            };
            let mut b = ProgBuilder::new();
            b.for_n(steps, move |b| {
                // Predict: advance molecules in my boxes.
                let locate1 = locate.clone();
                b.block(move |_ctx, out| {
                    let locate = &locate1;
                    for bx in my0..my1 {
                        let (reg, off) = locate(bx);
                        touch_shared(out, reg, off, box_bytes, false, 90);
                        touch_shared(out, reg, off, box_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
                // Inter-molecular forces: my boxes against their 27-box
                // neighbourhoods. This phase only reads molecule state —
                // partial forces accumulate in per-task private storage (the
                // Splash-2 per-processor force arrays) and are applied to
                // the boxes in the barrier-separated correction phase, so
                // neighbour reads never race with owner updates.
                let locate2 = locate.clone();
                b.block(move |_ctx, out| {
                    let locate = &locate2;
                    for bx in my0..my1 {
                        let (reg, off) = locate(bx);
                        touch_shared(out, reg, off, box_bytes, false, 0);
                        for nb in neighbours(bx) {
                            let (nreg, noff) = locate(nb);
                            touch_shared(out, nreg, noff, box_bytes, false, 0);
                            // ~mpb^2 / 2 pairs per box pair.
                            let pairs = (mpb * mpb / 2).max(1);
                            out.push(Op::Compute(pairs as u32 * cpp));
                        }
                    }
                });
                b.barrier(BarrierId(0));
                // Correct + box reassignment bookkeeping on my boxes.
                let locate3 = locate.clone();
                b.block(move |_ctx, out| {
                    let locate = &locate3;
                    for bx in my0..my1 {
                        let (reg, off) = locate(bx);
                        touch_shared(out, reg, off, box_bytes, false, 160);
                        touch_shared(out, reg, off, box_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("water-sp")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::InstanceId;

    #[test]
    fn neighbourhood_reads_stay_near() {
        let w = WaterSp::quick();
        let mut layout = Layout::new();
        let ntasks = 4;
        let build = w.instantiate(ntasks, &mut layout);
        // Compared to Water-NS, a task must NOT read every other region
        // necessarily; but it must read at least one box beyond its own.
        let prog = build(&mut layout, InstanceId(0), 0);
        let own = &layout.regions()[0];
        let foreign = prog
            .iter()
            .filter_map(|op| match op {
                Op::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .filter(|a| !(*a >= own.base.0 && *a < own.end().0))
            .count();
        assert!(foreign > 0, "must read neighbour boxes from other tasks");
    }

    #[test]
    fn three_barriers_per_step() {
        let w = WaterSp::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(2, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count() as u64;
        assert_eq!(barriers, 3 * w.steps);
    }

    #[test]
    fn box_geometry() {
        let w = WaterSp::paper();
        assert_eq!(w.nboxes(), 64);
        assert_eq!(w.mols_per_box(), 8);
    }
}
