//! The paper's nine parallel scientific kernels, re-implemented as
//! access-pattern programs for the slipstream CMP simulator (Table 2 of
//! the paper):
//!
//! | Kernel | Origin | Size (paper defaults) |
//! |---|---|---|
//! | [`Fft`] | Splash-2 | 64K complex doubles |
//! | [`Ocean`] | Splash-2 | 258 x 258 |
//! | [`WaterNs`] | Splash-2 (n-squared) | 512 molecules |
//! | [`WaterSp`] | Splash-2 (spatial) | 512 molecules |
//! | [`Sor`] | red-black SOR | 1024 x 1024 |
//! | [`Lu`] | Splash-2 | 512 x 512 (16 x 16 blocks) |
//! | [`Cg`] | NAS | n = 1400 |
//! | [`Mg`] | NAS | 32 x 32 x 32 |
//! | [`Sp`] | NAS | 16 x 16 x 16 |
//!
//! Every kernel implements [`slipstream_core::Workload`]: it allocates its
//! shared arrays (block-owned pages model first-touch placement) and emits
//! per-task programs whose loop structure, sharing pattern, and
//! synchronization match the original algorithm. Arithmetic is folded into
//! calibrated per-line compute costs; see DESIGN.md for the calibration
//! notes and EXPERIMENTS.md for measured-vs-paper behaviour.
//!
//! Each kernel offers `paper()` (Table 2 sizes) and `quick()` (reduced
//! sizes for tests and smoke runs).

pub mod util;

mod cg;
mod fft;
mod lu;
mod mg;
mod ocean;
mod sor;
mod sp;
mod water_ns;
mod water_sp;

pub use cg::Cg;
pub use fft::Fft;
pub use lu::Lu;
pub use mg::Mg;
pub use ocean::Ocean;
pub use sor::Sor;
pub use sp::Sp;
pub use water_ns::WaterNs;
pub use water_sp::WaterSp;

use slipstream_core::Workload;

/// The full paper benchmark suite at Table 2 sizes, in the paper's order.
pub fn paper_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Cg::paper()),
        Box::new(Fft::paper()),
        Box::new(Lu::paper()),
        Box::new(Mg::paper()),
        Box::new(Ocean::paper()),
        Box::new(Sor::paper()),
        Box::new(Sp::paper()),
        Box::new(WaterNs::paper()),
        Box::new(WaterSp::paper()),
    ]
}

/// The suite at reduced sizes (same shapes, shorter runs), for tests,
/// examples, and quick sweeps.
pub fn quick_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Cg::quick()),
        Box::new(Fft::quick()),
        Box::new(Lu::quick()),
        Box::new(Mg::quick()),
        Box::new(Ocean::quick()),
        Box::new(Sor::quick()),
        Box::new(Sp::quick()),
        Box::new(WaterNs::quick()),
        Box::new(WaterSp::quick()),
    ]
}

/// Looks a suite member up by (case-insensitive) name.
pub fn by_name(name: &str, quick: bool) -> Option<Box<dyn Workload>> {
    let suite = if quick { quick_suite() } else { paper_suite() };
    suite.into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
}
