//! Six-step FFT (Splash-2), 64K complex doubles in the paper.
//!
//! The 64K points form a sqrt(m) x sqrt(m) matrix of 16-byte complex
//! elements, row-blocked across tasks in two buffers. The six-step
//! algorithm is: transpose, row FFTs, transpose, twiddle + row FFTs,
//! transpose — with a barrier after each phase. The blocked transposes are
//! all-to-all communication (every task reads a block column from every
//! other task's rows), which is why FFT's single-mode performance
//! *degrades* past 4 CMPs for this data size (Figure 4) and why the paper
//! only evaluates FFT at 4 CMPs.

use slipstream_core::{TaskBuilderFn, Workload};
use slipstream_prog::{ArrayRef, BarrierId, Layout, Op, ProgBuilder};

use crate::util::{block_range, touch_shared};

/// Six-step FFT over `m` complex points.
#[derive(Debug, Clone)]
pub struct Fft {
    /// Total complex points (`sqrt(m)` must be an integer number of rows).
    pub m: u64,
    /// Compute cycles per point per FFT butterfly stage.
    pub cycles_per_point: u32,
}

impl Fft {
    /// Paper configuration: 64K complex doubles (256 x 256 matrix).
    pub fn paper() -> Fft {
        Fft { m: 64 * 1024, cycles_per_point: 5 }
    }

    /// Reduced size for tests and smoke runs (64 x 64 matrix).
    pub fn quick() -> Fft {
        Fft { m: 4 * 1024, cycles_per_point: 5 }
    }

    fn side(&self) -> u64 {
        let s = (self.m as f64).sqrt() as u64;
        assert_eq!(s * s, self.m, "m must be a perfect square");
        s
    }
}

impl Workload for Fft {
    fn name(&self) -> &str {
        "FFT"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let n = self.side(); // matrix is n x n complex
        let elem = 16u64; // complex double
        let row_bytes = n * elem;
        // Two row-blocked buffers (source and transpose target).
        let alloc = |layout: &mut Layout, name: &str| -> Vec<ArrayRef> {
            (0..ntasks)
                .map(|t| {
                    let (r0, r1) = block_range(n, ntasks, t);
                    layout.shared_owned(
                        &format!("fft.{name}{t}"),
                        (r1 - r0).max(1) * row_bytes,
                        t,
                    )
                })
                .collect()
        };
        let buf_a = alloc(layout, "a");
        let buf_b = alloc(layout, "b");
        let cpp = self.cycles_per_point;
        // log2(n) butterfly stages, ~5 flops each, per point of a row FFT.
        let stages = 64 - (n - 1).leading_zeros() as u64;
        let fft_row_cycles_per_line = (4 * stages * cpp as u64) as u32; // 4 elems/line
        Box::new(move |_layout, _inst, task| {
            let (my0, my1) = block_range(n, ntasks, task);
            let buf_a = buf_a.clone();
            let buf_b = buf_b.clone();
            let mut b = ProgBuilder::new();
            // The problem size and plan arrive via one global input
            // operation (performed once by the R-stream in slipstream
            // mode).
            b.op(Op::Input);
            // Serial initialization, as in Splash-2 FFT: processor 0
            // generates the data and twiddle factors while everyone else
            // waits. This Amdahl section (whose writes become remote as
            // the machine grows) is what caps FFT's scalability at this
            // problem size and makes it degrade past 4-8 CMPs (Figure 4).
            if task == 0 {
                let init_a = buf_a.clone();
                b.block(move |_ctx, out| {
                    for (t, blk) in init_a.iter().enumerate() {
                        let (r0, r1) = block_range(n, ntasks, t);
                        let bytes = (r1 - r0).max(1) * row_bytes;
                        touch_shared(out, *blk, 0, bytes, true, 2);
                    }
                });
            }
            b.barrier(BarrierId(0));
            let row_of = move |bufs: &[ArrayRef], row: u64| -> (ArrayRef, u64) {
                let mut t = 0;
                loop {
                    let (s, e) = block_range(n, ntasks, t);
                    if row >= s && row < e {
                        return (bufs[t], (row - s) * row_bytes);
                    }
                    t += 1;
                }
            };
            // Blocked transpose src -> dst: for each of my dst rows, read
            // the matching column of src (one 64-byte line per 4 source
            // rows x 4-element column chunk, blocked 4x4).
            let transpose = move |b: &mut ProgBuilder, bufs: (Vec<ArrayRef>, Vec<ArrayRef>)| {
                let (src, dst) = bufs;
                b.block(move |_ctx, out| {
                    for dr in my0..my1 {
                        // Column dr of src feeds row dr of dst: walk source
                        // rows in blocks of 4 (one line covers 4 elements
                        // of a row; the column visits a new line per row).
                        for sr in 0..n {
                            let (reg, off) = row_of(&src, sr);
                            // Element (sr, dr): one line touch.
                            touch_shared(out, reg, off + dr * elem, elem, false, 0);
                        }
                        let (dreg, doff) = row_of(&dst, dr);
                        touch_shared(out, dreg, doff, row_bytes, true, 2);
                    }
                });
                b.barrier(BarrierId(0));
            };
            // Row FFTs over my rows of a buffer.
            let row_fft = move |b: &mut ProgBuilder, bufs: Vec<ArrayRef>| {
                b.block(move |_ctx, out| {
                    for r in my0..my1 {
                        let (reg, off) = row_of(&bufs, r);
                        touch_shared(out, reg, off, row_bytes, false, fft_row_cycles_per_line);
                        touch_shared(out, reg, off, row_bytes, true, 0);
                    }
                });
                b.barrier(BarrierId(0));
            };
            // Six-step: T(A->B), FFT(B), T(B->A), twiddle+FFT(A), T(A->B).
            transpose(&mut b, (buf_a.clone(), buf_b.clone()));
            row_fft(&mut b, buf_b.clone());
            transpose(&mut b, (buf_b.clone(), buf_a.clone()));
            row_fft(&mut b, buf_a.clone());
            transpose(&mut b, (buf_a.clone(), buf_b.clone()));
            b.build("fft")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::InstanceId;

    #[test]
    fn has_five_phases() {
        let w = Fft::quick();
        let mut layout = Layout::new();
        let build = w.instantiate(4, &mut layout);
        let prog = build(&mut layout, InstanceId(0), 0);
        let barriers = prog.iter().filter(|o| matches!(o, Op::Barrier(_))).count();
        assert_eq!(barriers, 6); // serial init + five six-step phases
        assert_eq!(prog.iter().filter(|o| matches!(o, Op::Input)).count(), 1);
    }

    #[test]
    fn transpose_reads_every_other_tasks_rows() {
        let w = Fft::quick();
        let mut layout = Layout::new();
        let ntasks = 4;
        let build = w.instantiate(ntasks, &mut layout);
        let prog = build(&mut layout, InstanceId(2), 2);
        let loads: std::collections::HashSet<u64> = prog
            .iter()
            .filter_map(|op| match op {
                Op::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        // Task 2 must read from every buf_a region (regions 0..ntasks).
        for (i, r) in layout.regions().iter().take(ntasks).enumerate() {
            assert!(
                loads.iter().any(|a| *a >= r.base.0 && *a < r.end().0),
                "no reads from task {i}'s rows"
            );
        }
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_size_panics() {
        Fft { m: 1000, cycles_per_point: 1 }.side();
    }
}
