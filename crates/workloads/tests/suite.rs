//! End-to-end: every kernel of the suite runs to completion in every
//! execution mode, deterministically, without A-stream recoveries.

use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
use slipstream_core::StreamRole;
use slipstream_workloads::{by_name, quick_suite};

#[test]
fn quick_suite_runs_in_all_modes() {
    for w in quick_suite() {
        for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
            let r = run(w.as_ref(), &RunSpec::new(2, mode));
            assert!(r.exec_cycles > 0, "{} in {mode}", w.name());
            assert_eq!(r.recoveries, 0, "{} deviated in {mode}", w.name());
            for s in &r.streams {
                assert!(
                    s.breakdown.total() <= s.finish + 1,
                    "{}: stream accounting exceeds finish time",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn quick_suite_runs_at_4_nodes_slipstream_all_ar_modes() {
    for w in quick_suite() {
        for ar in ArSyncMode::ALL {
            let spec =
                RunSpec::new(4, ExecMode::Slipstream).with_slip(SlipstreamConfig::prefetch_only(ar));
            let r = run(w.as_ref(), &spec);
            assert!(r.exec_cycles > 0, "{} with {ar}", w.name());
            assert_eq!(r.recoveries, 0, "{} deviated with {ar}", w.name());
        }
    }
}

#[test]
fn quick_suite_with_transparent_loads_and_si() {
    for w in quick_suite() {
        let spec = RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal));
        let r = run(w.as_ref(), &spec);
        assert!(r.exec_cycles > 0, "{} with SI", w.name());
        assert_eq!(
            r.mem.transparent_issued,
            r.mem.transparent_replies + r.mem.upgraded_replies,
            "{}: transparent replies must balance",
            w.name()
        );
    }
}

#[test]
fn runs_are_deterministic() {
    for name in ["SOR", "CG", "WATER-NS"] {
        let w = by_name(name, true).expect("known benchmark");
        let a = run(w.as_ref(), &RunSpec::new(2, ExecMode::Slipstream));
        let b = run(w.as_ref(), &RunSpec::new(2, ExecMode::Slipstream));
        assert_eq!(a.exec_cycles, b.exec_cycles, "{name}");
        assert_eq!(a.mem.net_messages, b.mem.net_messages, "{name}");
    }
}

#[test]
fn a_streams_do_useful_prefetching_somewhere_in_suite() {
    // Not every kernel must benefit, but across the suite the A-streams
    // must produce a substantial number of timely fetches.
    let mut timely = 0;
    for w in quick_suite() {
        let r = run(w.as_ref(), &RunSpec::new(4, ExecMode::Slipstream));
        timely += r.mem.class.reads.a_timely + r.mem.class.excl.a_timely;
        // And A-streams always finish (not stuck).
        assert!(r.streams.iter().filter(|s| s.role == StreamRole::A).count() == 4);
    }
    assert!(timely > 100, "A-streams fetched almost nothing timely: {timely}");
}

#[test]
fn by_name_lookup() {
    assert!(by_name("sor", true).is_some());
    assert!(by_name("WATER-SP", false).is_some());
    assert!(by_name("nope", true).is_none());
}
