//! The invariant slipstream mode rests on (§3.1 of the paper): the
//! A-stream — built with a different instance id, hence different private
//! storage — must generate exactly the same *shared* address stream and
//! synchronization sequence as its R-stream, for every kernel.

use slipstream_core::Workload;
use slipstream_prog::{InstanceId, Layout, Op, Space};
use slipstream_workloads::quick_suite;

/// Shared ops and sync ops, with private accesses erased.
fn visible_stream(w: &dyn Workload, ntasks: usize, inst: u32, task: usize) -> Vec<Op> {
    let mut layout = Layout::new();
    let build = w.instantiate(ntasks, &mut layout);
    build(&mut layout, InstanceId(inst), task)
        .iter()
        .filter(|op| match op {
            Op::Load { space, .. } | Op::Store { space, .. } => *space == Space::Shared,
            _ => true,
        })
        .map(|op| match op {
            // Compute costs may be fused differently around elided private
            // ops; only the shared/sync structure must agree.
            Op::Compute(_) => Op::Compute(0),
            other => other,
        })
        .collect()
}

#[test]
fn a_and_r_instances_agree_on_shared_streams() {
    for w in quick_suite() {
        for task in [0usize, 1, 3] {
            let r_stream = visible_stream(w.as_ref(), 4, 2 * task as u32, task);
            let a_stream = visible_stream(w.as_ref(), 4, 2 * task as u32 + 1, task);
            assert_eq!(
                r_stream,
                a_stream,
                "{} task {task}: A- and R-stream shared streams diverge",
                w.name()
            );
            assert!(!r_stream.is_empty(), "{} produced an empty program", w.name());
        }
    }
}

#[test]
fn every_kernel_has_session_boundaries() {
    // A-R synchronization needs sessions; every kernel must end sessions
    // with barriers or event waits.
    for w in quick_suite() {
        let stream = visible_stream(w.as_ref(), 2, 0, 0);
        let sessions = stream.iter().filter(|o| o.ends_session()).count();
        assert!(sessions >= 2, "{}: only {sessions} session boundaries", w.name());
    }
}

#[test]
fn lock_nesting_is_balanced_in_every_kernel() {
    for w in quick_suite() {
        for task in 0..4 {
            let stream = visible_stream(w.as_ref(), 4, task as u32, task);
            let mut depth = 0i64;
            for op in &stream {
                match op {
                    Op::Lock(_) => depth += 1,
                    Op::Unlock(_) => {
                        depth -= 1;
                        assert!(depth >= 0, "{}: unlock without lock", w.name());
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "{} task {task}: unbalanced locks", w.name());
        }
    }
}

#[test]
fn barrier_counts_match_across_tasks() {
    // All tasks must arrive at every barrier (SPMD): equal barrier counts.
    for w in quick_suite() {
        let counts: Vec<usize> = (0..4)
            .map(|t| {
                visible_stream(w.as_ref(), 4, t as u32, t)
                    .iter()
                    .filter(|o| matches!(o, Op::Barrier(_)))
                    .count()
            })
            .collect();
        assert!(
            counts.windows(2).all(|w2| w2[0] == w2[1]),
            "{}: unequal barrier counts {counts:?}",
            w.name()
        );
    }
}

#[test]
fn event_posts_cover_event_waits() {
    // Semaphore-style events: across all tasks, posts must be >= waits for
    // every event id, or the machine would deadlock.
    use std::collections::HashMap;
    for w in quick_suite() {
        let mut posts: HashMap<u32, i64> = HashMap::new();
        for t in 0..4 {
            for op in visible_stream(w.as_ref(), 4, t as u32, t) {
                match op {
                    Op::EventPost(e) => *posts.entry(e.0).or_default() += 1,
                    Op::EventWait(e) => *posts.entry(e.0).or_default() -= 1,
                    _ => {}
                }
            }
        }
        for (e, balance) in posts {
            assert!(balance >= 0, "{}: event {e} waited more than posted", w.name());
        }
    }
}
