use std::cell::Cell;
use std::fmt;

use slipstream_kernel::{Addr, LineAddr, NodeId};
use slipstream_prog::{InstanceId, Layout, RegionKind};

/// Table entry marking a page the precomputed table cannot answer (a hole
/// between regions, or a page straddling a region boundary); lookups fall
/// back to the region search. Never a valid node id: node counts are
/// `u16`, and [`HomeMap::new`] asserts `nodes < u16::MAX`.
const HOLE: u16 = u16::MAX;

/// Upper bound on precomputed table size (pages). 2 Mi pages x 2 bytes =
/// 4 MiB per map, covering an 8 GiB layout at 4 KiB pages — far beyond any
/// workload here. Layouts spanning more than this (notably
/// [`HomeMap::uniform`]'s full address space) skip the table and resolve
/// through the memoized region search.
const MAX_TABLE_PAGES: u64 = 1 << 21;

/// Maps addresses to home nodes (the node holding the memory and directory
/// entry for a line).
///
/// Shared regions are interleaved page-by-page round-robin across all
/// nodes, approximating the Origin-style distributed memory of the paper's
/// machine. Private regions are homed entirely at the node running the
/// owning stream instance, so private misses are local (170-cycle) misses.
///
/// Lookup is O(1) on the hot path: construction precomputes a
/// page-granular table over the layout's address span, so [`home_of`]
/// is one subtract, one divide and one load for every allocated page.
/// Pages the table cannot answer (holes, boundary-straddling pages, or
/// layouts too large to tabulate) fall back to a binary search over the
/// region list, fronted by a one-entry memo of the last region hit —
/// miss streams are strongly region-local, so the memo absorbs almost
/// all of the fallback traffic.
///
/// [`home_of`]: HomeMap::home_of
///
/// # Example
///
/// ```
/// use slipstream_prog::{Layout, InstanceId};
/// use slipstream_kernel::NodeId;
/// use slipstream_mem::HomeMap;
///
/// let mut layout = Layout::new();
/// let shared = layout.shared("grid", 4 * 4096);
/// let map = HomeMap::new(&layout, 4, |_inst| NodeId(2), |_task| NodeId(1));
/// // Consecutive pages of shared data round-robin across the 4 nodes.
/// let h0 = map.home_of(shared.at_byte(0));
/// let h1 = map.home_of(shared.at_byte(4096));
/// assert_ne!(h0, h1);
/// ```
#[derive(Clone)]
pub struct HomeMap {
    page_bytes: u64,
    nodes: u16,
    /// Sorted, disjoint regions: (base, end, home). `home == None` means
    /// page-interleaved shared data.
    regions: Vec<(u64, u64, Option<NodeId>)>,
    /// First byte the precomputed `table` covers (page-aligned).
    table_base: u64,
    /// Per-page home nodes for `table.len()` pages starting at
    /// `table_base`; [`HOLE`] entries defer to the region search. Empty
    /// when the layout span exceeds [`MAX_TABLE_PAGES`].
    table: Vec<u16>,
    /// Index of the last region the fallback search resolved. A `Cell`
    /// keeps `home_of` callable through `&self`; maps are cloned per
    /// partition, never shared across threads.
    memo: Cell<usize>,
}

impl fmt::Debug for HomeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The table holds up to millions of entries; summarize it.
        f.debug_struct("HomeMap")
            .field("page_bytes", &self.page_bytes)
            .field("nodes", &self.nodes)
            .field("regions", &self.regions)
            .field("table_pages", &self.table.len())
            .finish()
    }
}

impl HomeMap {
    /// Builds the map from an application layout and a placement function
    /// mapping each private-region owner (stream instance) to its node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or if a placement returns an out-of-range
    /// node.
    pub fn new(
        layout: &Layout,
        nodes: u16,
        place_inst: impl Fn(InstanceId) -> NodeId,
        place_task: impl Fn(u32) -> NodeId,
    ) -> HomeMap {
        assert!(nodes > 0, "need at least one node");
        let mut regions: Vec<(u64, u64, Option<NodeId>)> = layout
            .regions()
            .iter()
            .map(|r| {
                let home = match r.kind {
                    RegionKind::Shared => None,
                    RegionKind::SharedOwned(task) => {
                        let n = place_task(task);
                        assert!(n.0 < nodes, "placement {n} out of range for {nodes} nodes");
                        Some(n)
                    }
                    RegionKind::Private(owner) => {
                        let n = place_inst(owner);
                        assert!(n.0 < nodes, "placement {n} out of range for {nodes} nodes");
                        Some(n)
                    }
                };
                (r.base.0, r.end().0, home)
            })
            .collect();
        regions.sort_by_key(|r| r.0);
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "layout regions overlap");
        }
        assert!(nodes < u16::MAX, "node count reserves u16::MAX as a table sentinel");
        let page_bytes = layout.page_bytes();
        let (table_base, table) = Self::build_table(&regions, page_bytes, nodes);
        HomeMap { page_bytes, nodes, regions, table_base, table, memo: Cell::new(0) }
    }

    /// A trivial map for tests: everything shared, interleaved over `nodes`.
    pub fn uniform(nodes: u16, page_bytes: u64) -> HomeMap {
        assert!(nodes > 0);
        // The full-address-space span exceeds MAX_TABLE_PAGES, so this map
        // always resolves through the (single-region) search.
        HomeMap {
            page_bytes,
            nodes,
            regions: vec![(0, u64::MAX, None)],
            table_base: 0,
            table: Vec::new(),
            memo: Cell::new(0),
        }
    }

    /// Precomputes the per-page home table for `regions`, returning the
    /// page-aligned base and one entry per page of the layout span. Pages
    /// outside every region, or straddling a region boundary, get [`HOLE`].
    /// Returns an empty table when the span is too large to tabulate.
    fn build_table(
        regions: &[(u64, u64, Option<NodeId>)],
        page_bytes: u64,
        nodes: u16,
    ) -> (u64, Vec<u16>) {
        let (Some(&(first, ..)), Some(&(.., last, _))) = (regions.first(), regions.last())
        else {
            return (0, Vec::new());
        };
        let base = first / page_bytes * page_bytes;
        let pages = (last - base).div_ceil(page_bytes);
        if pages > MAX_TABLE_PAGES {
            return (base, Vec::new());
        }
        let mut table = vec![HOLE; pages as usize];
        let mut ri = 0;
        for (p, slot) in table.iter_mut().enumerate() {
            let lo = base + p as u64 * page_bytes;
            let hi = lo + page_bytes;
            // Regions are sorted and disjoint; advance to the first one
            // that could contain this page.
            while ri < regions.len() && regions[ri].1 <= lo {
                ri += 1;
            }
            let Some(&(rbase, rend, home)) = regions.get(ri) else { break };
            if rbase <= lo && hi <= rend {
                *slot = match home {
                    Some(n) => n.0,
                    None => ((lo / page_bytes) % nodes as u64) as u16,
                };
            }
        }
        (base, table)
    }

    /// Home node of a byte address.
    ///
    /// # Panics
    ///
    /// Panics if the address was never allocated (simulator bug or program
    /// touching memory outside its layout).
    #[inline]
    pub fn home_of(&self, addr: Addr) -> NodeId {
        // O(1) fast path: every allocated page inside the tabulated span
        // answers with one load.
        if addr.0 >= self.table_base {
            let page = (addr.0 - self.table_base) / self.page_bytes;
            if let Some(&h) = self.table.get(page as usize) {
                if h != HOLE {
                    return NodeId(h);
                }
            }
        }
        // Memoized fallback: the last region hit covers the next address
        // for region-local miss streams, skipping the binary search.
        let m = self.memo.get();
        if let Some(&(base, end, home)) = self.regions.get(m) {
            if addr.0 >= base && addr.0 < end {
                return self.resolve(addr, home);
            }
        }
        let (i, home) = self.search(addr);
        self.memo.set(i);
        self.resolve(addr, home)
    }

    /// Reference lookup: the plain binary search over the region list,
    /// with no table and no memo. Kept as the oracle for the equivalence
    /// tests; the hot path is [`HomeMap::home_of`].
    ///
    /// # Panics
    ///
    /// Panics if the address was never allocated.
    pub fn home_of_search(&self, addr: Addr) -> NodeId {
        let (_, home) = self.search(addr);
        self.resolve(addr, home)
    }

    /// Binary search for the region containing `addr`, returning its index
    /// and home. Panics on unallocated addresses.
    fn search(&self, addr: Addr) -> (usize, Option<NodeId>) {
        let i = self
            .regions
            .partition_point(|&(base, _, _)| base <= addr.0)
            .checked_sub(1)
            .unwrap_or_else(|| panic!("access to unallocated address {addr}"));
        let (base, end, home) = self.regions[i];
        assert!(
            addr.0 >= base && addr.0 < end,
            "access to unallocated address {addr} (nearest region {base}..{end})"
        );
        (i, home)
    }

    /// Applies a region's homing policy to `addr`.
    #[inline]
    fn resolve(&self, addr: Addr, home: Option<NodeId>) -> NodeId {
        match home {
            Some(n) => n,
            None => NodeId(((addr.0 / self.page_bytes) % self.nodes as u64) as u16),
        }
    }

    /// Home node of a cache line.
    pub fn home_of_line(&self, line: LineAddr, line_bytes: u64) -> NodeId {
        self.home_of(line.base(line_bytes))
    }

    /// Number of nodes this map distributes over.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_pages_interleave() {
        let map = HomeMap::uniform(4, 4096);
        let homes: Vec<u16> = (0..8).map(|p| map.home_of(Addr(p * 4096)).0).collect();
        assert_eq!(homes, [0, 1, 2, 3, 0, 1, 2, 3]);
        // All addresses within a page share a home.
        assert_eq!(map.home_of(Addr(4096)), map.home_of(Addr(8191)));
    }

    #[test]
    fn private_regions_are_homed_at_owner() {
        let mut layout = Layout::new();
        let _sh = layout.shared("s", 4096);
        let pr = layout.private(InstanceId(7), "p", 4096);
        let map = HomeMap::new(
            &layout,
            4,
            |inst| {
                assert_eq!(inst, InstanceId(7));
                NodeId(3)
            },
            |_t| NodeId(0),
        );
        assert_eq!(map.home_of(pr.at_byte(0)), NodeId(3));
        assert_eq!(map.home_of(pr.at_byte(4095)), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_address_panics() {
        let mut layout = Layout::new();
        layout.shared("s", 4096);
        let map = HomeMap::new(&layout, 2, |_| NodeId(0), |_t| NodeId(0));
        map.home_of(Addr(1 << 40));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn address_zero_panics() {
        let mut layout = Layout::new();
        layout.shared("s", 4096);
        let map = HomeMap::new(&layout, 2, |_| NodeId(0), |_t| NodeId(0));
        map.home_of(Addr(0));
    }

    #[test]
    fn shared_owned_regions_follow_task_placement() {
        let mut layout = Layout::new();
        let blk = layout.shared_owned("block3", 8192, 3);
        let map = HomeMap::new(&layout, 4, |_| NodeId(0), |task| NodeId(task as u16));
        assert_eq!(map.home_of(blk.at_byte(0)), NodeId(3));
        assert_eq!(map.home_of(blk.at_byte(8191)), NodeId(3));
    }

    #[test]
    fn line_home_matches_byte_home() {
        let map = HomeMap::uniform(3, 4096);
        let a = Addr(123456);
        assert_eq!(map.home_of(a), map.home_of_line(a.line(64), 64));
    }

    /// The table + memo fast paths agree with the reference binary search
    /// over randomized mixed shared/private layouts.
    #[test]
    fn fast_path_matches_reference_search() {
        use slipstream_kernel::SplitMix64;
        for seed in 0..6u64 {
            let mut rng = SplitMix64::new(0xC0FFEE ^ seed);
            let mut layout = Layout::new();
            let mut arrays = Vec::new();
            let n_regions = 4 + rng.next_below(12);
            for r in 0..n_regions {
                // Unpadded sizes exercise the page-padding in the layout.
                let bytes = 1 + rng.next_below(9 * 4096);
                let name = format!("r{r}");
                let a = match rng.next_below(3) {
                    0 => layout.shared(&name, bytes),
                    1 => layout.shared_owned(&name, bytes, rng.next_below(8) as usize),
                    _ => layout.private(InstanceId(rng.next_below(8) as u32), &name, bytes),
                };
                arrays.push((a, bytes));
            }
            let nodes = 8;
            let map = HomeMap::new(
                &layout,
                nodes,
                |inst| NodeId((inst.0 % nodes as u32) as u16),
                |task| NodeId((task % nodes as u32) as u16),
            );
            for _ in 0..20_000 {
                let (a, bytes) = arrays[rng.next_below(arrays.len() as u64) as usize];
                let addr = a.at_byte(rng.next_below(bytes));
                assert_eq!(map.home_of(addr), map.home_of_search(addr), "at {addr}");
            }
        }
    }

    /// `uniform` spans the whole address space (no table); the memoized
    /// search still matches the reference.
    #[test]
    fn uniform_skips_table_but_matches_search() {
        use slipstream_kernel::SplitMix64;
        let map = HomeMap::uniform(7, 4096);
        assert!(map.table.is_empty());
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let addr = Addr(rng.next_u64());
            assert_eq!(map.home_of(addr), map.home_of_search(addr));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_placement_panics() {
        let mut layout = Layout::new();
        layout.private(InstanceId(0), "p", 64);
        let _ = HomeMap::new(&layout, 2, |_| NodeId(5), |_t| NodeId(0));
    }
}
