use slipstream_kernel::{Addr, LineAddr, NodeId};
use slipstream_prog::{InstanceId, Layout, RegionKind};

/// Maps addresses to home nodes (the node holding the memory and directory
/// entry for a line).
///
/// Shared regions are interleaved page-by-page round-robin across all
/// nodes, approximating the Origin-style distributed memory of the paper's
/// machine. Private regions are homed entirely at the node running the
/// owning stream instance, so private misses are local (170-cycle) misses.
///
/// # Example
///
/// ```
/// use slipstream_prog::{Layout, InstanceId};
/// use slipstream_kernel::NodeId;
/// use slipstream_mem::HomeMap;
///
/// let mut layout = Layout::new();
/// let shared = layout.shared("grid", 4 * 4096);
/// let map = HomeMap::new(&layout, 4, |_inst| NodeId(2), |_task| NodeId(1));
/// // Consecutive pages of shared data round-robin across the 4 nodes.
/// let h0 = map.home_of(shared.at_byte(0));
/// let h1 = map.home_of(shared.at_byte(4096));
/// assert_ne!(h0, h1);
/// ```
#[derive(Debug, Clone)]
pub struct HomeMap {
    page_bytes: u64,
    nodes: u16,
    /// Sorted, disjoint regions: (base, end, home). `home == None` means
    /// page-interleaved shared data.
    regions: Vec<(u64, u64, Option<NodeId>)>,
}

impl HomeMap {
    /// Builds the map from an application layout and a placement function
    /// mapping each private-region owner (stream instance) to its node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or if a placement returns an out-of-range
    /// node.
    pub fn new(
        layout: &Layout,
        nodes: u16,
        place_inst: impl Fn(InstanceId) -> NodeId,
        place_task: impl Fn(u32) -> NodeId,
    ) -> HomeMap {
        assert!(nodes > 0, "need at least one node");
        let mut regions: Vec<(u64, u64, Option<NodeId>)> = layout
            .regions()
            .iter()
            .map(|r| {
                let home = match r.kind {
                    RegionKind::Shared => None,
                    RegionKind::SharedOwned(task) => {
                        let n = place_task(task);
                        assert!(n.0 < nodes, "placement {n} out of range for {nodes} nodes");
                        Some(n)
                    }
                    RegionKind::Private(owner) => {
                        let n = place_inst(owner);
                        assert!(n.0 < nodes, "placement {n} out of range for {nodes} nodes");
                        Some(n)
                    }
                };
                (r.base.0, r.end().0, home)
            })
            .collect();
        regions.sort_by_key(|r| r.0);
        for w in regions.windows(2) {
            assert!(w[0].1 <= w[1].0, "layout regions overlap");
        }
        HomeMap { page_bytes: layout.page_bytes(), nodes, regions }
    }

    /// A trivial map for tests: everything shared, interleaved over `nodes`.
    pub fn uniform(nodes: u16, page_bytes: u64) -> HomeMap {
        assert!(nodes > 0);
        HomeMap { page_bytes, nodes, regions: vec![(0, u64::MAX, None)] }
    }

    /// Home node of a byte address.
    ///
    /// # Panics
    ///
    /// Panics if the address was never allocated (simulator bug or program
    /// touching memory outside its layout).
    pub fn home_of(&self, addr: Addr) -> NodeId {
        let i = self
            .regions
            .partition_point(|&(base, _, _)| base <= addr.0)
            .checked_sub(1)
            .unwrap_or_else(|| panic!("access to unallocated address {addr}"));
        let (base, end, home) = self.regions[i];
        assert!(
            addr.0 >= base && addr.0 < end,
            "access to unallocated address {addr} (nearest region {base}..{end})"
        );
        match home {
            Some(n) => n,
            None => NodeId(((addr.0 / self.page_bytes) % self.nodes as u64) as u16),
        }
    }

    /// Home node of a cache line.
    pub fn home_of_line(&self, line: LineAddr, line_bytes: u64) -> NodeId {
        self.home_of(line.base(line_bytes))
    }

    /// Number of nodes this map distributes over.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_pages_interleave() {
        let map = HomeMap::uniform(4, 4096);
        let homes: Vec<u16> = (0..8).map(|p| map.home_of(Addr(p * 4096)).0).collect();
        assert_eq!(homes, [0, 1, 2, 3, 0, 1, 2, 3]);
        // All addresses within a page share a home.
        assert_eq!(map.home_of(Addr(4096)), map.home_of(Addr(8191)));
    }

    #[test]
    fn private_regions_are_homed_at_owner() {
        let mut layout = Layout::new();
        let _sh = layout.shared("s", 4096);
        let pr = layout.private(InstanceId(7), "p", 4096);
        let map = HomeMap::new(
            &layout,
            4,
            |inst| {
                assert_eq!(inst, InstanceId(7));
                NodeId(3)
            },
            |_t| NodeId(0),
        );
        assert_eq!(map.home_of(pr.at_byte(0)), NodeId(3));
        assert_eq!(map.home_of(pr.at_byte(4095)), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_address_panics() {
        let mut layout = Layout::new();
        layout.shared("s", 4096);
        let map = HomeMap::new(&layout, 2, |_| NodeId(0), |_t| NodeId(0));
        map.home_of(Addr(1 << 40));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn address_zero_panics() {
        let mut layout = Layout::new();
        layout.shared("s", 4096);
        let map = HomeMap::new(&layout, 2, |_| NodeId(0), |_t| NodeId(0));
        map.home_of(Addr(0));
    }

    #[test]
    fn shared_owned_regions_follow_task_placement() {
        let mut layout = Layout::new();
        let blk = layout.shared_owned("block3", 8192, 3);
        let map = HomeMap::new(&layout, 4, |_| NodeId(0), |task| NodeId(task as u16));
        assert_eq!(map.home_of(blk.at_byte(0)), NodeId(3));
        assert_eq!(map.home_of(blk.at_byte(8191)), NodeId(3));
    }

    #[test]
    fn line_home_matches_byte_home() {
        let map = HomeMap::uniform(3, 4096);
        let a = Addr(123456);
        assert_eq!(map.home_of(a), map.home_of_line(a.line(64), 64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_placement_panics() {
        let mut layout = Layout::new();
        layout.private(InstanceId(0), "p", 64);
        let _ = HomeMap::new(&layout, 2, |_| NodeId(5), |_t| NodeId(0));
    }
}
