//! Observability hooks for the memory system.
//!
//! [`MemTracer`] is the hook trait the machine loop (or a test) installs
//! into [`crate::MemSystem`] via [`crate::MemSystem::set_tracer`]. Every
//! method has an empty default body, so an implementor only overrides the
//! events it cares about. With no tracer installed the memory system pays
//! exactly one `Option` branch per hook site — no allocation, no virtual
//! call — keeping the default simulation path unperturbed.
//!
//! The hooks are *observations*: they receive copies of protocol-level
//! facts (cycle, line, nodes, roles) and must not feed anything back into
//! the simulation. Determinism therefore holds by construction: a run with
//! a tracer installed produces bit-identical results to a run without one,
//! which `slipstream-core`'s accounting tests assert.

use slipstream_kernel::{CpuId, Cycle, LineAddr, NodeId, SharerSet};

use crate::msg::{AccessKind, StreamRole, SyncOp};

/// How a processor-side access was resolved at issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served by the issuing core's L1.
    L1Hit,
    /// Served by the node's shared L2 (valid, visible copy).
    L2Hit,
    /// Missed the L2 and opened a new directory transaction (MSHR
    /// allocated).
    MissNew,
    /// Missed the L2 and merged into an already-outstanding MSHR.
    MissMerged,
    /// A non-binding exclusive prefetch was issued to the directory.
    PrefetchIssued,
    /// A non-binding exclusive prefetch was dropped (line already owned or
    /// a request is already in flight).
    PrefetchDropped,
}

/// Snapshot of a directory entry's permission state, as exposed to
/// tracers. Mirrors the (private) protocol state: uncached, shared with a
/// node bit-vector, or exclusively owned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TracePerm {
    /// No cached copies are registered.
    Uncached,
    /// Shared copies exist at the nodes set in `sharers` (bit per node).
    Shared {
        /// Set of sharing nodes.
        sharers: SharerSet,
        /// Limited-pointer overflow: `sharers` is a subset of the true
        /// copy-holders and the next write will broadcast. Always `false`
        /// under the default full-map scheme.
        overflow: bool,
    },
    /// One node holds the line exclusively.
    Excl {
        /// The owning node.
        owner: NodeId,
    },
}

/// Hook trait for observing the memory system. All methods default to
/// no-ops; see the [module docs](self) for the contract.
#[allow(unused_variables)]
pub trait MemTracer: std::fmt::Debug {
    /// A processor-side data access was issued and resolved as `outcome`.
    /// Called once per [`crate::MemSystem::access`] call.
    fn access(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        kind: AccessKind,
        line: LineAddr,
        outcome: AccessOutcome,
    ) {
    }

    /// A fill (coherent or transparent reply) landed in `node`'s L2,
    /// completing the line's outstanding waiters.
    fn fill(&mut self, now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool) {}

    /// The home directory's permission state for `line` changed while
    /// serving a message from `requester`. The snapshots are passed by
    /// reference (sharer sets may own heap storage on >128-node machines);
    /// a tracer that retains them clones.
    fn dir_transition(
        &mut self,
        now: Cycle,
        line: LineAddr,
        from: &TracePerm,
        to: &TracePerm,
        requester: NodeId,
    ) {
    }

    /// The directory forwarded an intervention to the exclusive `owner` on
    /// behalf of `requester` (`excl` = ownership transfer vs. downgrade).
    fn intervention(&mut self, now: Cycle, line: LineAddr, owner: NodeId, requester: NodeId, excl: bool) {}

    /// The directory sent an invalidation for `line` to sharer `target`.
    fn invalidation(&mut self, now: Cycle, line: LineAddr, target: NodeId) {}

    /// A self-invalidation hint was sent to the exclusive `owner` (§4.2:
    /// a transparent load recorded a future sharer).
    fn si_hint(&mut self, now: Cycle, line: LineAddr, owner: NodeId) {}

    /// `node` processed a flagged line at a sync point: invalidated it
    /// (migratory policy) if `invalidated`, else wrote back and downgraded
    /// (producer-consumer policy).
    fn si_action(&mut self, now: Cycle, node: NodeId, line: LineAddr, invalidated: bool) {}

    /// A transparent load was upgraded to a normal load at the directory.
    fn transparent_upgrade(&mut self, now: Cycle, line: LineAddr, from: NodeId) {}

    /// A transparent load was answered with a (possibly stale) memory copy.
    fn transparent_reply(&mut self, now: Cycle, line: LineAddr, from: NodeId) {}

    /// A dirty writeback for `line` arrived at the home from `from`.
    fn writeback(&mut self, now: Cycle, line: LineAddr, from: NodeId) {}

    /// The sync controller handled `op` from `cpu`, releasing `granted`
    /// blocked processors (0 = the requester queued or nothing released).
    fn sync_event(&mut self, now: Cycle, cpu: CpuId, op: SyncOp, granted: u32) {}

    /// `node`'s L2 evicted `line` to make room for a fill. `dirty` is true
    /// when the eviction produced a dirty writeback (vs. a replacement
    /// hint); `transparent` marks an evicted transparent copy, which was
    /// never registered in the directory's sharing list.
    fn l2_evict(&mut self, now: Cycle, node: NodeId, line: LineAddr, dirty: bool, transparent: bool) {
    }

    /// `node`'s L2 dropped its copy of `line` in response to the protocol
    /// (an invalidation, an ownership-transfer intervention, or a migratory
    /// self-invalidation). Fires only when a copy was actually resident.
    fn l2_invalidate(&mut self, now: Cycle, node: NodeId, line: LineAddr) {}

    /// `node`'s L2 downgraded its exclusive copy of `line` to shared (a
    /// read intervention, or a producer-consumer self-invalidation
    /// writeback).
    fn l2_downgrade(&mut self, now: Cycle, node: NodeId, line: LineAddr) {}

    /// `node` opened a new MSHR for `line` (a fresh outstanding
    /// transaction; merged requests reuse the existing MSHR and do not
    /// fire this hook).
    fn mshr_alloc(&mut self, now: Cycle, node: NodeId, line: LineAddr) {}

    /// `node` retired the MSHR for `line`: every outstanding request the
    /// MSHR tracked has been filled. Balanced against [`Self::mshr_alloc`]
    /// (a fill that leaves a reply pending keeps the MSHR and fires
    /// neither hook).
    fn mshr_free(&mut self, now: Cycle, node: NodeId, line: LineAddr) {}
}

/// Fans every hook out to a list of tracers, in order. Lets an
/// observability recorder and an invariant checker observe the same run.
#[derive(Debug, Default)]
pub struct FanoutTracer {
    tracers: Vec<Box<dyn MemTracer>>,
}

impl FanoutTracer {
    /// A fanout over `tracers` (called in the given order at every hook).
    pub fn new(tracers: Vec<Box<dyn MemTracer>>) -> FanoutTracer {
        FanoutTracer { tracers }
    }
}

macro_rules! fanout {
    ($($name:ident($($arg:ident: $ty:ty),*);)*) => {
        impl MemTracer for FanoutTracer {
            $(fn $name(&mut self, $($arg: $ty),*) {
                for t in &mut self.tracers {
                    t.$name($($arg),*);
                }
            })*
        }
    };
}

fanout! {
    access(now: Cycle, cpu: CpuId, role: StreamRole, kind: AccessKind, line: LineAddr, outcome: AccessOutcome);
    fill(now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool);
    dir_transition(now: Cycle, line: LineAddr, from: &TracePerm, to: &TracePerm, requester: NodeId);
    intervention(now: Cycle, line: LineAddr, owner: NodeId, requester: NodeId, excl: bool);
    invalidation(now: Cycle, line: LineAddr, target: NodeId);
    si_hint(now: Cycle, line: LineAddr, owner: NodeId);
    si_action(now: Cycle, node: NodeId, line: LineAddr, invalidated: bool);
    transparent_upgrade(now: Cycle, line: LineAddr, from: NodeId);
    transparent_reply(now: Cycle, line: LineAddr, from: NodeId);
    writeback(now: Cycle, line: LineAddr, from: NodeId);
    sync_event(now: Cycle, cpu: CpuId, op: SyncOp, granted: u32);
    l2_evict(now: Cycle, node: NodeId, line: LineAddr, dirty: bool, transparent: bool);
    l2_invalidate(now: Cycle, node: NodeId, line: LineAddr);
    l2_downgrade(now: Cycle, node: NodeId, line: LineAddr);
    mshr_alloc(now: Cycle, node: NodeId, line: LineAddr);
    mshr_free(now: Cycle, node: NodeId, line: LineAddr);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default method bodies are callable no-ops, so a tracer can
    /// override just one hook.
    #[derive(Debug, Default)]
    struct OnlyFills(u64);

    impl MemTracer for OnlyFills {
        fn fill(&mut self, _: Cycle, _: NodeId, _: LineAddr, _: bool, _: bool) {
            self.0 += 1;
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut t = OnlyFills::default();
        t.access(
            Cycle(1),
            CpuId::new(NodeId(0), 0),
            StreamRole::R,
            AccessKind::Read,
            LineAddr(3),
            AccessOutcome::L1Hit,
        );
        t.dir_transition(
            Cycle(1),
            LineAddr(3),
            &TracePerm::Uncached,
            &TracePerm::Excl { owner: NodeId(1) },
            NodeId(1),
        );
        t.fill(Cycle(2), NodeId(0), LineAddr(3), true, false);
        t.l2_evict(Cycle(3), NodeId(0), LineAddr(3), true, false);
        t.l2_invalidate(Cycle(3), NodeId(0), LineAddr(3));
        t.l2_downgrade(Cycle(3), NodeId(0), LineAddr(3));
        t.mshr_alloc(Cycle(3), NodeId(0), LineAddr(3));
        t.mshr_free(Cycle(3), NodeId(0), LineAddr(3));
        assert_eq!(t.0, 1);
    }

    #[test]
    fn fanout_forwards_to_every_tracer_in_order() {
        let mut f = FanoutTracer::new(vec![
            Box::new(OnlyFills::default()),
            Box::new(OnlyFills::default()),
        ]);
        f.fill(Cycle(2), NodeId(0), LineAddr(3), true, false);
        f.mshr_free(Cycle(3), NodeId(0), LineAddr(3));
        let counts: Vec<String> = f.tracers.iter().map(|t| format!("{t:?}")).collect();
        assert_eq!(counts, ["OnlyFills(1)", "OnlyFills(1)"]);
    }
}
