use std::ops::{Add, AddAssign};

use crate::msg::StreamRole;

/// The six-way classification of shared-data memory requests from Figure 7
/// of the paper.
///
/// * `A-Timely`: data fetched by the A-stream and later referenced by the
///   R-stream — a successful prefetch.
/// * `A-Late`: the R-stream referenced the data while the A-stream's
///   request was still outstanding (the accesses merged).
/// * `A-Only`: data fetched by the A-stream was evicted or invalidated
///   without the R-stream ever referencing it — harmful traffic.
/// * `R-Timely` / `R-Late` / `R-Only`: the mirror-image classification of
///   R-stream requests, completing the picture of how correlated the two
///   streams' shared-data footprints are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    pub a_timely: u64,
    pub a_late: u64,
    pub a_only: u64,
    pub r_timely: u64,
    pub r_late: u64,
    pub r_only: u64,
}

impl ClassCounts {
    /// Total classified requests.
    pub fn total(&self) -> u64 {
        self.a_timely + self.a_late + self.a_only + self.r_timely + self.r_late + self.r_only
    }

    /// Each bucket as a percentage of the total, in the order
    /// `[A-Timely, A-Late, A-Only, R-Timely, R-Late, R-Only]`.
    /// Returns zeros when no requests were classified.
    pub fn percentages(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0 {
            return [0.0; 6];
        }
        let p = |x: u64| 100.0 * x as f64 / t as f64;
        [
            p(self.a_timely),
            p(self.a_late),
            p(self.a_only),
            p(self.r_timely),
            p(self.r_late),
            p(self.r_only),
        ]
    }
}

impl Add for ClassCounts {
    type Output = ClassCounts;
    fn add(self, o: ClassCounts) -> ClassCounts {
        ClassCounts {
            a_timely: self.a_timely + o.a_timely,
            a_late: self.a_late + o.a_late,
            a_only: self.a_only + o.a_only,
            r_timely: self.r_timely + o.r_timely,
            r_late: self.r_late + o.r_late,
            r_only: self.r_only + o.r_only,
        }
    }
}

impl AddAssign for ClassCounts {
    fn add_assign(&mut self, o: ClassCounts) {
        *self = *self + o;
    }
}

/// Classification state for one *open* request: a fill whose final category
/// is not yet known (it closes when the line is evicted, invalidated, or at
/// the end of simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReq {
    /// Which stream issued the request that fetched the data.
    pub issuer: StreamRole,
    /// The other stream merged into this request while it was outstanding
    /// (classified `Late` immediately; the close is then a no-op).
    pub late: bool,
    /// The other stream referenced the line after the fill.
    pub reffed_other: bool,
}

impl OpenReq {
    /// A fresh open request by `issuer`.
    pub fn new(issuer: StreamRole) -> OpenReq {
        OpenReq { issuer, late: false, reffed_other: false }
    }
}

/// Read- and exclusive-request classification accumulators (top and bottom
/// graphs of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestClass {
    /// Classification of shared read requests.
    pub reads: ClassCounts,
    /// Classification of shared exclusive requests (stores / upgrades /
    /// exclusive prefetches).
    pub excl: ClassCounts,
}

impl RequestClass {
    /// Total classified requests across both kinds (reads + exclusives).
    /// This is the figure the static analyzer's bounds are checked
    /// against: every classified request is one shared-line request from
    /// some node, so it must lie within the analyzer's
    /// `[distinct (node, shared line) pairs, shared access ops]` window.
    pub fn total(&self) -> u64 {
        self.reads.total() + self.excl.total()
    }

    /// A-stream-issued requests across both kinds. Zero in conventional
    /// (single/double) modes, where no A-stream exists — a sharp
    /// cross-check for the validation harness.
    pub fn a_total(&self) -> u64 {
        self.reads.a_timely
            + self.reads.a_late
            + self.reads.a_only
            + self.excl.a_timely
            + self.excl.a_late
            + self.excl.a_only
    }

    /// Record the `Late` outcome for an open request (at merge time).
    pub fn count_late(&mut self, is_read: bool, issuer: StreamRole) {
        let c = if is_read { &mut self.reads } else { &mut self.excl };
        match issuer {
            StreamRole::A => c.a_late += 1,
            StreamRole::R | StreamRole::Solo => c.r_late += 1,
        }
    }

    /// Close an open request (at eviction/invalidation/simulation end).
    pub fn close(&mut self, is_read: bool, req: OpenReq) {
        if req.late {
            return; // already counted at merge time
        }
        let c = if is_read { &mut self.reads } else { &mut self.excl };
        match (req.issuer, req.reffed_other) {
            (StreamRole::A, true) => c.a_timely += 1,
            (StreamRole::A, false) => c.a_only += 1,
            (StreamRole::R | StreamRole::Solo, true) => c.r_timely += 1,
            (StreamRole::R | StreamRole::Solo, false) => c.r_only += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_buckets() {
        let mut rc = RequestClass::default();
        rc.close(true, OpenReq { issuer: StreamRole::A, late: false, reffed_other: true });
        rc.close(true, OpenReq { issuer: StreamRole::A, late: false, reffed_other: false });
        rc.close(true, OpenReq { issuer: StreamRole::R, late: false, reffed_other: true });
        rc.close(false, OpenReq { issuer: StreamRole::R, late: false, reffed_other: false });
        assert_eq!(rc.reads.a_timely, 1);
        assert_eq!(rc.reads.a_only, 1);
        assert_eq!(rc.reads.r_timely, 1);
        assert_eq!(rc.excl.r_only, 1);
    }

    #[test]
    fn late_requests_close_as_noop() {
        let mut rc = RequestClass::default();
        rc.count_late(true, StreamRole::A);
        rc.close(true, OpenReq { issuer: StreamRole::A, late: true, reffed_other: true });
        assert_eq!(rc.reads.a_late, 1);
        assert_eq!(rc.reads.a_timely, 0);
        assert_eq!(rc.reads.total(), 1);
    }

    #[test]
    fn percentages_sum_to_100() {
        let c = ClassCounts { a_timely: 1, a_late: 2, a_only: 3, r_timely: 4, r_late: 5, r_only: 5 };
        let p = c.percentages();
        let sum: f64 = p.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((p[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_percentages_are_zero() {
        assert_eq!(ClassCounts::default().percentages(), [0.0; 6]);
    }

    #[test]
    fn counts_add() {
        let a = ClassCounts { a_timely: 1, ..Default::default() };
        let b = ClassCounts { r_only: 2, ..Default::default() };
        let mut c = a + b;
        c += a;
        assert_eq!(c.a_timely, 2);
        assert_eq!(c.r_only, 2);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn solo_counts_as_r() {
        let mut rc = RequestClass::default();
        rc.count_late(false, StreamRole::Solo);
        assert_eq!(rc.excl.r_late, 1);
    }
}
