use std::collections::VecDeque;

use slipstream_kernel::{CpuId, FxHashMap, TaskId};
use slipstream_prog::{BarrierId, EventId, LockId};

use crate::msg::{SyncOp, Token};

/// Pure state machine for one node's synchronization controller.
///
/// Barriers, locks, and events live at a home node (chosen by hashing the
/// object id); requests and grants travel through the same network and
/// directory-controller servers as coherence traffic, so synchronization
/// contends realistically. This type holds only the object state; routing
/// and timing are the `system` module's job.
#[derive(Debug)]
pub(crate) struct SyncCtl {
    participants: u32,
    barriers: FxHashMap<BarrierId, BarrierState>,
    locks: FxHashMap<LockId, LockState>,
    events: FxHashMap<EventId, EventState>,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: u32,
    waiters: Vec<(CpuId, Token)>,
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    queue: VecDeque<(CpuId, Token)>,
}

#[derive(Debug, Default)]
struct EventState {
    posts: u64,
    consumed: u64,
    waiters: VecDeque<(CpuId, Token, TaskId)>,
}

/// Result of processing a sync request at the controller.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SyncOutcome {
    /// The requester is queued; nothing to send.
    Queued,
    /// These blocked processors are released (grants must be routed back).
    Grant(Vec<(CpuId, Token)>),
}

impl SyncCtl {
    /// Creates a controller for an application with `participants` tasks
    /// taking part in every barrier.
    pub(crate) fn new(participants: u32) -> SyncCtl {
        assert!(participants > 0, "need at least one participant");
        SyncCtl {
            participants,
            barriers: FxHashMap::default(),
            locks: FxHashMap::default(),
            events: FxHashMap::default(),
        }
    }

    /// Processes one request. For blocking ops (`blocks() == true`) the
    /// requester is granted either now or by some later request.
    pub(crate) fn handle(&mut self, op: SyncOp, cpu: CpuId, token: Token) -> SyncOutcome {
        match op {
            SyncOp::BarrierArrive(id) => {
                let b = self.barriers.entry(id).or_default();
                b.arrived += 1;
                b.waiters.push((cpu, token));
                if b.arrived == self.participants {
                    let grants = std::mem::take(&mut b.waiters);
                    b.arrived = 0;
                    SyncOutcome::Grant(grants)
                } else {
                    assert!(
                        b.arrived < self.participants,
                        "barrier {id:?} overflow: more arrivals than participants"
                    );
                    SyncOutcome::Queued
                }
            }
            SyncOp::LockAcquire(id) => {
                let l = self.locks.entry(id).or_default();
                if l.held {
                    l.queue.push_back((cpu, token));
                    SyncOutcome::Queued
                } else {
                    l.held = true;
                    SyncOutcome::Grant(vec![(cpu, token)])
                }
            }
            SyncOp::LockRelease(id) => {
                let l = self.locks.entry(id).or_default();
                assert!(l.held, "release of un-held lock {id:?}");
                if let Some(next) = l.queue.pop_front() {
                    SyncOutcome::Grant(vec![(next.0, next.1)])
                } else {
                    l.held = false;
                    SyncOutcome::Grant(Vec::new())
                }
            }
            SyncOp::EventPost(id) => {
                let e = self.events.entry(id).or_default();
                e.posts += 1;
                let mut grants = Vec::new();
                while e.posts > e.consumed {
                    match e.waiters.pop_front() {
                        Some((c, t, _task)) => {
                            e.consumed += 1;
                            grants.push((c, t));
                        }
                        None => break,
                    }
                }
                SyncOutcome::Grant(grants)
            }
            SyncOp::EventWait(id, task) => {
                let e = self.events.entry(id).or_default();
                if e.posts > e.consumed {
                    e.consumed += 1;
                    SyncOutcome::Grant(vec![(cpu, token)])
                } else {
                    e.waiters.push_back((cpu, token, task));
                    SyncOutcome::Queued
                }
            }
        }
    }

    /// Whether every barrier is empty, every lock free, and no waiter is
    /// queued — asserted at the end of a simulation.
    pub(crate) fn quiescent(&self) -> bool {
        self.barriers.values().all(|b| b.arrived == 0 && b.waiters.is_empty())
            && self.locks.values().all(|l| !l.held && l.queue.is_empty())
            && self.events.values().all(|e| e.waiters.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_kernel::NodeId;

    fn cpu(n: u16, c: u8) -> CpuId {
        CpuId::new(NodeId(n), c)
    }

    #[test]
    fn barrier_releases_all_on_last_arrival() {
        let mut s = SyncCtl::new(3);
        let b = SyncOp::BarrierArrive(BarrierId(0));
        assert_eq!(s.handle(b, cpu(0, 0), Token(1)), SyncOutcome::Queued);
        assert_eq!(s.handle(b, cpu(1, 0), Token(2)), SyncOutcome::Queued);
        match s.handle(b, cpu(2, 0), Token(3)) {
            SyncOutcome::Grant(g) => assert_eq!(g.len(), 3),
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(s.quiescent());
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let mut s = SyncCtl::new(2);
        let b = SyncOp::BarrierArrive(BarrierId(7));
        for gen in 0..3 {
            assert_eq!(s.handle(b, cpu(0, 0), Token(gen * 2)), SyncOutcome::Queued);
            match s.handle(b, cpu(1, 0), Token(gen * 2 + 1)) {
                SyncOutcome::Grant(g) => assert_eq!(g.len(), 2),
                other => panic!("expected grant, got {other:?}"),
            }
        }
    }

    #[test]
    fn lock_grants_immediately_then_queues_fifo() {
        let mut s = SyncCtl::new(2);
        let a = SyncOp::LockAcquire(LockId(0));
        let r = SyncOp::LockRelease(LockId(0));
        match s.handle(a, cpu(0, 0), Token(1)) {
            SyncOutcome::Grant(g) => assert_eq!(g, vec![(cpu(0, 0), Token(1))]),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.handle(a, cpu(1, 0), Token(2)), SyncOutcome::Queued);
        assert_eq!(s.handle(a, cpu(1, 1), Token(3)), SyncOutcome::Queued);
        match s.handle(r, cpu(0, 0), Token(4)) {
            SyncOutcome::Grant(g) => assert_eq!(g, vec![(cpu(1, 0), Token(2))]),
            other => panic!("{other:?}"),
        }
        match s.handle(r, cpu(1, 0), Token(5)) {
            SyncOutcome::Grant(g) => assert_eq!(g, vec![(cpu(1, 1), Token(3))]),
            other => panic!("{other:?}"),
        }
        match s.handle(r, cpu(1, 1), Token(6)) {
            SyncOutcome::Grant(g) => assert!(g.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(s.quiescent());
    }

    #[test]
    #[should_panic(expected = "un-held")]
    fn double_release_panics() {
        let mut s = SyncCtl::new(1);
        s.handle(SyncOp::LockRelease(LockId(0)), cpu(0, 0), Token(0));
    }

    #[test]
    fn event_semaphore_semantics() {
        let mut s = SyncCtl::new(2);
        let post = SyncOp::EventPost(EventId(0));
        let wait = SyncOp::EventWait(EventId(0), TaskId(1));
        // Post before wait: wait is satisfied immediately.
        match s.handle(post, cpu(0, 0), Token(0)) {
            SyncOutcome::Grant(g) => assert!(g.is_empty()),
            other => panic!("{other:?}"),
        }
        match s.handle(wait, cpu(1, 0), Token(1)) {
            SyncOutcome::Grant(g) => assert_eq!(g.len(), 1),
            other => panic!("{other:?}"),
        }
        // Wait before post: granted by the post.
        assert_eq!(s.handle(wait, cpu(1, 0), Token(2)), SyncOutcome::Queued);
        match s.handle(post, cpu(0, 0), Token(3)) {
            SyncOutcome::Grant(g) => assert_eq!(g, vec![(cpu(1, 0), Token(2))]),
            other => panic!("{other:?}"),
        }
        assert!(s.quiescent());
    }

    #[test]
    fn one_post_wakes_one_waiter() {
        let mut s = SyncCtl::new(3);
        let wait = SyncOp::EventWait(EventId(0), TaskId(0));
        s.handle(wait, cpu(0, 0), Token(1));
        s.handle(wait, cpu(1, 0), Token(2));
        match s.handle(SyncOp::EventPost(EventId(0)), cpu(2, 0), Token(3)) {
            SyncOutcome::Grant(g) => assert_eq!(g, vec![(cpu(0, 0), Token(1))]),
            other => panic!("{other:?}"),
        }
        assert!(!s.quiescent()); // one waiter still queued
    }

    #[test]
    fn single_participant_barrier_always_grants() {
        let mut s = SyncCtl::new(1);
        for i in 0..4 {
            match s.handle(SyncOp::BarrierArrive(BarrierId(0)), cpu(0, 0), Token(i)) {
                SyncOutcome::Grant(g) => assert_eq!(g.len(), 1),
                other => panic!("{other:?}"),
            }
        }
    }
}
