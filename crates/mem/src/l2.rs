use std::collections::VecDeque;

use slipstream_kernel::config::CacheGeometry;
use slipstream_kernel::{CpuId, FxHashMap, InlineVec, LineAddr};

use crate::classify::OpenReq;
use crate::msg::Token;

/// Coherence state of an L2 line as seen by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L2State {
    /// Readable copy; other nodes may also hold it.
    Shared,
    /// This node is the exclusive owner (clean or dirty).
    Exclusive,
}

/// One resident L2 line with all slipstream metadata.
#[derive(Debug, Clone)]
pub(crate) struct L2Line {
    pub line: LineAddr,
    pub state: L2State,
    pub dirty: bool,
    /// Filled by a transparent reply: visible to the A-stream only and not
    /// registered in the directory's sharing list (§4.1).
    pub transparent: bool,
    /// Marked for self-invalidation at the next R-stream sync point (§4.2).
    pub si_flag: bool,
    /// A store to this line occurred inside a critical section (the SI
    /// policy then invalidates rather than downgrades: migratory data).
    pub wrote_in_cs: bool,
    /// Which of the two L1s hold a copy (bit per core).
    pub l1_mask: u8,
    /// Which core's L1 holds it Modified, if any.
    pub l1_dirty: Option<u8>,
    /// Whether the line holds shared (coherent application) data — only
    /// such lines participate in Figure 7 classification.
    pub shared_data: bool,
    /// Open read-request classification, if an unclosed read fill exists.
    pub open_read: Option<OpenReq>,
    /// Open exclusive-request classification.
    pub open_excl: Option<OpenReq>,
}

impl L2Line {
    pub(crate) fn new(line: LineAddr, state: L2State, shared_data: bool) -> L2Line {
        L2Line {
            line,
            state,
            dirty: false,
            transparent: false,
            si_flag: false,
            wrote_in_cs: false,
            l1_mask: 0,
            l1_dirty: None,
            shared_data,
            open_read: None,
            open_excl: None,
        }
    }
}

/// Requester blocked on an outstanding miss.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub cpu: CpuId,
    pub token: Token,
}

/// A miss-status holding register: one per line with outstanding requests.
/// Merging of the two processors' requests ("The shared L2 cache ...
/// merges their requests when appropriate", §2) happens here, and is also
/// where `Late` classification outcomes are detected.
#[derive(Debug)]
pub(crate) struct Mshr {
    /// A normal (coherent) read request is in flight.
    pub norm_pending: bool,
    /// An exclusive request (read-exclusive or upgrade) is in flight.
    pub excl_pending: bool,
    /// A transparent read request is in flight.
    pub trans_pending: bool,
    /// Waiters satisfied by any coherent fill. Almost always one entry
    /// (occasionally two when both streams of a pair pile onto the same
    /// miss), so the lists use inline storage and allocate nothing on the
    /// common path.
    pub waiters: InlineVec<Waiter, 2>,
    /// A-stream waiters, satisfied by a transparent or coherent fill.
    pub a_waiters: InlineVec<Waiter, 2>,
    /// Store waiters: need exclusive ownership. On a shared fill these
    /// trigger an upgrade transaction.
    pub store_waiters: InlineVec<Waiter, 2>,
    /// Any queued store was inside a critical section.
    pub store_in_cs: bool,
    /// Classification for the in-flight read transaction.
    pub open_read: Option<OpenReq>,
    /// Classification for the in-flight exclusive transaction.
    pub open_excl: Option<OpenReq>,
    /// The exclusive request was a non-binding prefetch only (no waiter
    /// needs ownership).
    pub excl_is_prefetch: bool,
}

impl Mshr {
    pub(crate) fn new() -> Mshr {
        Mshr {
            norm_pending: false,
            excl_pending: false,
            trans_pending: false,
            waiters: InlineVec::new(),
            a_waiters: InlineVec::new(),
            store_waiters: InlineVec::new(),
            store_in_cs: false,
            open_read: None,
            open_excl: None,
            excl_is_prefetch: false,
        }
    }

    /// Whether any request is still in flight.
    pub(crate) fn pending(&self) -> bool {
        self.norm_pending || self.excl_pending || self.trans_pending
    }
}

/// A victim evicted to make room for a fill.
#[derive(Debug)]
pub(crate) struct L2Victim {
    pub entry: L2Line,
}

/// The shared unified L2 cache of one CMP node.
///
/// Set-associative, true LRU (per-set ordering, most recent last). Lines
/// with outstanding MSHRs are pinned and never chosen as victims.
///
/// Storage is a single flat array indexed by `set * ways`: set `s` occupies
/// `slots[s * ways ..][..lens[s]]` in LRU order, and promotion/eviction
/// rotate the occupied suffix instead of `Vec::remove` + `push`. One wrinkle
/// keeps the old semantics exact: when a fill finds every way pinned by an
/// MSHR, the set temporarily holds more than `ways` lines. A flat array
/// cannot over-allocate, so such a set spills — whole — into `overflow`
/// (the old `Vec` representation, same ordering rules) and migrates back
/// once invalidations shrink it to `ways` lines or fewer. `spilled` counts
/// spilled sets so the hot path pays one predictable branch.
#[derive(Debug)]
pub(crate) struct L2Cache {
    slots: Vec<L2Line>,
    /// Occupied ways per set (`<= ways`); slots beyond are placeholders.
    /// For a spilled set this is `SPILLED` and `overflow` holds the lines.
    lens: Vec<u8>,
    /// Whole sets that currently exceed `ways` lines (all ways pinned).
    overflow: FxHashMap<usize, Vec<L2Line>>,
    /// Number of spilled sets (fast guard for the common `== 0` case).
    spilled: usize,
    ways: usize,
    set_mask: u64,
    pub mshrs: FxHashMap<LineAddr, Mshr>,
    /// Lines flagged for self-invalidation, processed at sync points.
    pub si_queue: VecDeque<LineAddr>,
    /// An SI drain is currently scheduled.
    pub si_active: bool,
    /// Fills that could not evict a victim because every way was pinned by
    /// an MSHR (the set temporarily over-allocates).
    pub set_overflows: u64,
}

/// `lens` marker for a set living in `overflow`.
const SPILLED: u8 = u8::MAX;

impl L2Cache {
    pub(crate) fn new(geom: CacheGeometry) -> L2Cache {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        L2Cache {
            // Placeholder lines are never read: scans stop at `lens[set]`.
            slots: (0..sets * ways)
                .map(|_| L2Line::new(LineAddr(0), L2State::Shared, false))
                .collect(),
            lens: vec![0; sets],
            overflow: FxHashMap::default(),
            spilled: 0,
            ways,
            set_mask: sets as u64 - 1,
            mshrs: FxHashMap::default(),
            si_queue: VecDeque::new(),
            si_active: false,
            set_overflows: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    #[inline]
    fn is_spilled(&self, set_idx: usize) -> bool {
        self.spilled != 0 && self.lens[set_idx] == SPILLED
    }

    /// The occupied flat slice of one (non-spilled) set, LRU order.
    #[inline]
    fn set(&mut self, set_idx: usize) -> &mut [L2Line] {
        debug_assert_ne!(self.lens[set_idx], SPILLED);
        let base = set_idx * self.ways;
        &mut self.slots[base..base + self.lens[set_idx] as usize]
    }

    /// Moves a flat set into the overflow representation (all ways pinned,
    /// a fill must over-allocate). Order is preserved verbatim.
    fn spill_set(&mut self, set_idx: usize) -> &mut Vec<L2Line> {
        debug_assert_ne!(self.lens[set_idx], SPILLED);
        let base = set_idx * self.ways;
        let len = self.lens[set_idx] as usize;
        let mut v = Vec::with_capacity(len + 1);
        for i in 0..len {
            let placeholder = L2Line::new(LineAddr(0), L2State::Shared, false);
            v.push(std::mem::replace(&mut self.slots[base + i], placeholder));
        }
        self.lens[set_idx] = SPILLED;
        self.spilled += 1;
        self.overflow.entry(set_idx).or_insert(v)
    }

    /// Migrates a spilled set back to flat storage once it fits again.
    fn unspill_set(&mut self, set_idx: usize, v: Vec<L2Line>) {
        debug_assert!(v.len() <= self.ways);
        let base = set_idx * self.ways;
        let len = v.len();
        for (i, entry) in v.into_iter().enumerate() {
            self.slots[base + i] = entry;
        }
        self.lens[set_idx] = len as u8;
        self.spilled -= 1;
    }

    /// Looks up a line and promotes it to most-recently-used.
    pub(crate) fn touch(&mut self, line: LineAddr) -> Option<&mut L2Line> {
        let set_idx = self.set_of(line);
        if self.is_spilled(set_idx) {
            let set = self.overflow.get_mut(&set_idx).expect("spilled set present");
            if let Some(pos) = set.iter().position(|l| l.line == line) {
                let entry = set.remove(pos);
                set.push(entry);
                return set.last_mut();
            }
            return None;
        }
        let set = self.set(set_idx);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            set[pos..].rotate_left(1);
            set.last_mut()
        } else {
            None
        }
    }

    /// Looks up a line without touching LRU.
    pub(crate) fn get_mut(&mut self, line: LineAddr) -> Option<&mut L2Line> {
        let set_idx = self.set_of(line);
        if self.is_spilled(set_idx) {
            let set = self.overflow.get_mut(&set_idx).expect("spilled set present");
            return set.iter_mut().find(|l| l.line == line);
        }
        self.set(set_idx).iter_mut().find(|l| l.line == line)
    }

    /// Looks up a line immutably.
    pub(crate) fn get(&self, line: LineAddr) -> Option<&L2Line> {
        let set_idx = self.set_of(line);
        if self.is_spilled(set_idx) {
            let set = self.overflow.get(&set_idx).expect("spilled set present");
            return set.iter().find(|l| l.line == line);
        }
        let base = set_idx * self.ways;
        let set = &self.slots[base..base + self.lens[set_idx] as usize];
        set.iter().find(|l| l.line == line)
    }

    /// Inserts a freshly filled line, evicting an unpinned LRU victim if the
    /// set is full. If the line is already resident, the existing entry is
    /// returned instead (fills update in place).
    pub(crate) fn insert(&mut self, entry: L2Line) -> (Option<L2Victim>, &mut L2Line) {
        let set_idx = self.set_of(entry.line);
        let line = entry.line;
        if self.is_spilled(set_idx) {
            return self.insert_spilled(set_idx, entry);
        }
        let ways = self.ways;
        let base = set_idx * ways;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.slots[base..base + len];
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            // Replace in place (e.g. a coherent fill over a transparent line).
            set[pos..].rotate_left(1);
            set[len - 1] = entry;
            return (None, &mut self.slots[base + len - 1]);
        }
        if len >= ways {
            // Evict the least-recently-used line not pinned by an MSHR.
            let pin_pos = set.iter().position(|l| !self.mshrs.contains_key(&l.line));
            if let Some(pos) = pin_pos {
                let set = &mut self.slots[base..base + len];
                set[pos..].rotate_left(1);
                let victim = std::mem::replace(&mut set[len - 1], entry);
                return (
                    Some(L2Victim { entry: victim }),
                    &mut self.slots[base + len - 1],
                );
            }
            // Every way is pinned: preserve the old over-allocation
            // semantics by spilling the whole set.
            self.set_overflows += 1;
            let set = self.spill_set(set_idx);
            set.push(entry);
            let r = set.last_mut().expect("just pushed");
            return (None, r);
        }
        self.slots[base + len] = entry;
        self.lens[set_idx] += 1;
        (None, &mut self.slots[base + len])
    }

    /// `insert` for a set living in the overflow representation.
    fn insert_spilled(
        &mut self,
        set_idx: usize,
        entry: L2Line,
    ) -> (Option<L2Victim>, &mut L2Line) {
        let line = entry.line;
        let mshrs = &self.mshrs;
        let set = self.overflow.get_mut(&set_idx).expect("spilled set present");
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let _replaced = set.remove(pos);
            set.push(entry);
            let r = set.last_mut().expect("just pushed");
            return (None, r);
        }
        let mut victim = None;
        if set.len() >= self.ways {
            if let Some(pos) = set.iter().position(|l| !mshrs.contains_key(&l.line)) {
                victim = Some(L2Victim { entry: set.remove(pos) });
            } else {
                self.set_overflows += 1;
            }
        }
        set.push(entry);
        // An insert after an eviction cannot shrink the set below `ways`,
        // so the set stays spilled; only `remove` migrates it back.
        let r = set.last_mut().expect("just pushed");
        (victim, r)
    }

    /// Removes a line (invalidation), returning it.
    pub(crate) fn remove(&mut self, line: LineAddr) -> Option<L2Line> {
        let set_idx = self.set_of(line);
        if self.is_spilled(set_idx) {
            let set = self.overflow.get_mut(&set_idx).expect("spilled set present");
            let removed = set.iter().position(|l| l.line == line).map(|pos| set.remove(pos));
            if removed.is_some() && set.len() <= self.ways {
                let v = self.overflow.remove(&set_idx).expect("spilled set present");
                self.unspill_set(set_idx, v);
            }
            return removed;
        }
        let set = self.set(set_idx);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let len = set.len();
            set[pos..].rotate_left(1);
            let placeholder = L2Line::new(LineAddr(0), L2State::Shared, false);
            let removed = std::mem::replace(&mut set[len - 1], placeholder);
            self.lens[set_idx] -= 1;
            Some(removed)
        } else {
            None
        }
    }

    /// Flags a resident exclusive line for self-invalidation and queues it.
    pub(crate) fn flag_si(&mut self, line: LineAddr) {
        if let Some(l) = self.get_mut(line) {
            if !l.si_flag {
                l.si_flag = true;
                self.si_queue.push_back(line);
            }
        }
    }

    /// Number of resident lines.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        let flat: usize =
            self.lens.iter().filter(|&&l| l != SPILLED).map(|&l| l as usize).sum();
        flat + self.overflow.values().map(|v| v.len()).sum::<usize>()
    }

    /// Iterates over all resident lines (for finalization).
    pub(crate) fn drain_all(&mut self) -> Vec<L2Line> {
        let mut out = Vec::new();
        for set_idx in 0..self.lens.len() {
            if self.is_spilled(set_idx) {
                let mut v = self.overflow.remove(&set_idx).expect("spilled set present");
                self.spilled -= 1;
                out.append(&mut v);
                self.lens[set_idx] = 0;
                continue;
            }
            let base = set_idx * self.ways;
            for i in 0..self.lens[set_idx] as usize {
                let placeholder = L2Line::new(LineAddr(0), L2State::Shared, false);
                out.push(std::mem::replace(&mut self.slots[base + i], placeholder));
            }
            self.lens[set_idx] = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L2Cache {
        // 2 sets x 2 ways.
        L2Cache::new(CacheGeometry { bytes: 256, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn insert_touch_and_remove() {
        let mut c = tiny();
        let (v, _) = c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert!(v.is_none());
        assert!(c.touch(LineAddr(4)).is_some());
        assert!(c.get(LineAddr(4)).is_some());
        let removed = c.remove(LineAddr(4)).expect("resident");
        assert_eq!(removed.line, LineAddr(4));
        assert!(c.get(LineAddr(4)).is_none());
    }

    #[test]
    fn lru_eviction_skips_pinned_lines() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0.
        c.insert(L2Line::new(LineAddr(0), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(2), L2State::Shared, true));
        // Pin the LRU line 0 with an MSHR (e.g. an upgrade in flight).
        c.mshrs.insert(LineAddr(0), Mshr::new());
        let (v, _) = c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert_eq!(v.expect("evicts").entry.line, LineAddr(2));
        assert!(c.get(LineAddr(0)).is_some());
    }

    #[test]
    fn all_pinned_overflows_set() {
        let mut c = tiny();
        c.insert(L2Line::new(LineAddr(0), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(2), L2State::Shared, true));
        c.mshrs.insert(LineAddr(0), Mshr::new());
        c.mshrs.insert(LineAddr(2), Mshr::new());
        let (v, _) = c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert!(v.is_none());
        assert_eq!(c.set_overflows, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = tiny();
        let mut first = L2Line::new(LineAddr(0), L2State::Shared, true);
        first.transparent = true;
        c.insert(first);
        let (v, slot) = c.insert(L2Line::new(LineAddr(0), L2State::Exclusive, true));
        assert!(v.is_none());
        assert!(!slot.transparent);
        assert_eq!(slot.state, L2State::Exclusive);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn si_flagging_dedupes() {
        let mut c = tiny();
        c.insert(L2Line::new(LineAddr(8), L2State::Exclusive, true));
        c.flag_si(LineAddr(8));
        c.flag_si(LineAddr(8));
        assert_eq!(c.si_queue.len(), 1);
        assert!(c.get(LineAddr(8)).expect("resident").si_flag);
        // Flagging a non-resident line is a no-op.
        c.flag_si(LineAddr(9));
        assert_eq!(c.si_queue.len(), 1);
    }

    #[test]
    fn overflowed_set_migrates_back_when_it_fits() {
        let mut c = tiny();
        c.insert(L2Line::new(LineAddr(0), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(2), L2State::Shared, true));
        c.mshrs.insert(LineAddr(0), Mshr::new());
        c.mshrs.insert(LineAddr(2), Mshr::new());
        // All ways pinned: the set over-allocates (spills).
        c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert_eq!(c.len(), 3);
        // The over-full set still behaves like one LRU list.
        assert!(c.touch(LineAddr(0)).is_some());
        assert!(c.get(LineAddr(4)).is_some());
        assert!(c.get_mut(LineAddr(2)).is_some());
        // Invalidate one line: the set fits again and migrates back.
        assert!(c.remove(LineAddr(4)).is_some());
        assert_eq!(c.len(), 2);
        assert!(c.get(LineAddr(0)).is_some());
        assert!(c.get(LineAddr(2)).is_some());
        // LRU order survived the round trip: line 2 is now LRU (0 was
        // touched above), so an unpinned insert evicts 2 first.
        c.mshrs.clear();
        let (v, _) = c.insert(L2Line::new(LineAddr(6), L2State::Shared, true));
        assert_eq!(v.expect("evicts").entry.line, LineAddr(2));
    }

    #[test]
    fn drain_all_includes_overflowed_sets() {
        let mut c = tiny();
        c.insert(L2Line::new(LineAddr(0), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(2), L2State::Shared, true));
        c.mshrs.insert(LineAddr(0), Mshr::new());
        c.mshrs.insert(LineAddr(2), Mshr::new());
        c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(1), L2State::Shared, true)); // set 1
        let mut lines: Vec<u64> = c.drain_all().into_iter().map(|l| l.line.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 4]);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn mshr_pending_predicate() {
        let mut m = Mshr::new();
        assert!(!m.pending());
        m.trans_pending = true;
        assert!(m.pending());
    }
}
