use std::collections::VecDeque;

use slipstream_kernel::config::CacheGeometry;
use slipstream_kernel::{CpuId, FxHashMap, LineAddr};

use crate::classify::OpenReq;
use crate::msg::Token;

/// Coherence state of an L2 line as seen by the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L2State {
    /// Readable copy; other nodes may also hold it.
    Shared,
    /// This node is the exclusive owner (clean or dirty).
    Exclusive,
}

/// One resident L2 line with all slipstream metadata.
#[derive(Debug, Clone)]
pub(crate) struct L2Line {
    pub line: LineAddr,
    pub state: L2State,
    pub dirty: bool,
    /// Filled by a transparent reply: visible to the A-stream only and not
    /// registered in the directory's sharing list (§4.1).
    pub transparent: bool,
    /// Marked for self-invalidation at the next R-stream sync point (§4.2).
    pub si_flag: bool,
    /// A store to this line occurred inside a critical section (the SI
    /// policy then invalidates rather than downgrades: migratory data).
    pub wrote_in_cs: bool,
    /// Which of the two L1s hold a copy (bit per core).
    pub l1_mask: u8,
    /// Which core's L1 holds it Modified, if any.
    pub l1_dirty: Option<u8>,
    /// Whether the line holds shared (coherent application) data — only
    /// such lines participate in Figure 7 classification.
    pub shared_data: bool,
    /// Open read-request classification, if an unclosed read fill exists.
    pub open_read: Option<OpenReq>,
    /// Open exclusive-request classification.
    pub open_excl: Option<OpenReq>,
}

impl L2Line {
    pub(crate) fn new(line: LineAddr, state: L2State, shared_data: bool) -> L2Line {
        L2Line {
            line,
            state,
            dirty: false,
            transparent: false,
            si_flag: false,
            wrote_in_cs: false,
            l1_mask: 0,
            l1_dirty: None,
            shared_data,
            open_read: None,
            open_excl: None,
        }
    }
}

/// Requester blocked on an outstanding miss.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub cpu: CpuId,
    pub token: Token,
}

/// A miss-status holding register: one per line with outstanding requests.
/// Merging of the two processors' requests ("The shared L2 cache ...
/// merges their requests when appropriate", §2) happens here, and is also
/// where `Late` classification outcomes are detected.
#[derive(Debug)]
pub(crate) struct Mshr {
    /// A normal (coherent) read request is in flight.
    pub norm_pending: bool,
    /// An exclusive request (read-exclusive or upgrade) is in flight.
    pub excl_pending: bool,
    /// A transparent read request is in flight.
    pub trans_pending: bool,
    /// Waiters satisfied by any coherent fill.
    pub waiters: Vec<Waiter>,
    /// A-stream waiters, satisfied by a transparent or coherent fill.
    pub a_waiters: Vec<Waiter>,
    /// Store waiters: need exclusive ownership. On a shared fill these
    /// trigger an upgrade transaction.
    pub store_waiters: Vec<Waiter>,
    /// Any queued store was inside a critical section.
    pub store_in_cs: bool,
    /// Classification for the in-flight read transaction.
    pub open_read: Option<OpenReq>,
    /// Classification for the in-flight exclusive transaction.
    pub open_excl: Option<OpenReq>,
    /// The exclusive request was a non-binding prefetch only (no waiter
    /// needs ownership).
    pub excl_is_prefetch: bool,
}

impl Mshr {
    pub(crate) fn new() -> Mshr {
        Mshr {
            norm_pending: false,
            excl_pending: false,
            trans_pending: false,
            waiters: Vec::new(),
            a_waiters: Vec::new(),
            store_waiters: Vec::new(),
            store_in_cs: false,
            open_read: None,
            open_excl: None,
            excl_is_prefetch: false,
        }
    }

    /// Whether any request is still in flight.
    pub(crate) fn pending(&self) -> bool {
        self.norm_pending || self.excl_pending || self.trans_pending
    }
}

/// A victim evicted to make room for a fill.
#[derive(Debug)]
pub(crate) struct L2Victim {
    pub entry: L2Line,
}

/// The shared unified L2 cache of one CMP node.
///
/// Set-associative, true LRU (per-set ordering, most recent last). Lines
/// with outstanding MSHRs are pinned and never chosen as victims.
#[derive(Debug)]
pub(crate) struct L2Cache {
    sets: Vec<Vec<L2Line>>,
    ways: usize,
    set_mask: u64,
    pub mshrs: FxHashMap<LineAddr, Mshr>,
    /// Lines flagged for self-invalidation, processed at sync points.
    pub si_queue: VecDeque<LineAddr>,
    /// An SI drain is currently scheduled.
    pub si_active: bool,
    /// Fills that could not evict a victim because every way was pinned by
    /// an MSHR (the set temporarily over-allocates).
    pub set_overflows: u64,
}

impl L2Cache {
    pub(crate) fn new(geom: CacheGeometry) -> L2Cache {
        let sets = geom.sets() as usize;
        L2Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(geom.ways as usize)).collect(),
            ways: geom.ways as usize,
            set_mask: sets as u64 - 1,
            mshrs: FxHashMap::default(),
            si_queue: VecDeque::new(),
            si_active: false,
            set_overflows: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// Looks up a line and promotes it to most-recently-used.
    pub(crate) fn touch(&mut self, line: LineAddr) -> Option<&mut L2Line> {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let entry = set.remove(pos);
            set.push(entry);
            set.last_mut()
        } else {
            None
        }
    }

    /// Looks up a line without touching LRU.
    pub(crate) fn get_mut(&mut self, line: LineAddr) -> Option<&mut L2Line> {
        let set_idx = self.set_of(line);
        self.sets[set_idx].iter_mut().find(|l| l.line == line)
    }

    /// Looks up a line immutably.
    pub(crate) fn get(&self, line: LineAddr) -> Option<&L2Line> {
        let set = &self.sets[self.set_of(line)];
        set.iter().find(|l| l.line == line)
    }

    /// Inserts a freshly filled line, evicting an unpinned LRU victim if the
    /// set is full. If the line is already resident, the existing entry is
    /// returned instead (fills update in place).
    pub(crate) fn insert(&mut self, entry: L2Line) -> (Option<L2Victim>, &mut L2Line) {
        let set_idx = self.set_of(entry.line);
        let line = entry.line;
        if let Some(pos) = self.sets[set_idx].iter().position(|l| l.line == line) {
            // Replace in place (e.g. a coherent fill over a transparent line).
            let _replaced = self.sets[set_idx].remove(pos);
            self.sets[set_idx].push(entry);
            let r = self.sets[set_idx].last_mut().expect("just pushed");
            return (None, r);
        }
        let mut victim = None;
        if self.sets[set_idx].len() >= self.ways {
            // Evict the least-recently-used line not pinned by an MSHR.
            let pin = |l: &L2Line| self.mshrs.contains_key(&l.line);
            if let Some(pos) = self.sets[set_idx].iter().position(|l| !pin(l)) {
                victim = Some(L2Victim { entry: self.sets[set_idx].remove(pos) });
            } else {
                self.set_overflows += 1;
            }
        }
        self.sets[set_idx].push(entry);
        let r = self.sets[set_idx].last_mut().expect("just pushed");
        (victim, r)
    }

    /// Removes a line (invalidation), returning it.
    pub(crate) fn remove(&mut self, line: LineAddr) -> Option<L2Line> {
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        set.iter().position(|l| l.line == line).map(|pos| set.remove(pos))
    }

    /// Flags a resident exclusive line for self-invalidation and queues it.
    pub(crate) fn flag_si(&mut self, line: LineAddr) {
        if let Some(l) = self.get_mut(line) {
            if !l.si_flag {
                l.si_flag = true;
                self.si_queue.push_back(line);
            }
        }
    }

    /// Number of resident lines.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Iterates over all resident lines (for finalization).
    pub(crate) fn drain_all(&mut self) -> Vec<L2Line> {
        self.sets.iter_mut().flat_map(|s| s.drain(..)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L2Cache {
        // 2 sets x 2 ways.
        L2Cache::new(CacheGeometry { bytes: 256, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn insert_touch_and_remove() {
        let mut c = tiny();
        let (v, _) = c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert!(v.is_none());
        assert!(c.touch(LineAddr(4)).is_some());
        assert!(c.get(LineAddr(4)).is_some());
        let removed = c.remove(LineAddr(4)).expect("resident");
        assert_eq!(removed.line, LineAddr(4));
        assert!(c.get(LineAddr(4)).is_none());
    }

    #[test]
    fn lru_eviction_skips_pinned_lines() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0.
        c.insert(L2Line::new(LineAddr(0), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(2), L2State::Shared, true));
        // Pin the LRU line 0 with an MSHR (e.g. an upgrade in flight).
        c.mshrs.insert(LineAddr(0), Mshr::new());
        let (v, _) = c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert_eq!(v.expect("evicts").entry.line, LineAddr(2));
        assert!(c.get(LineAddr(0)).is_some());
    }

    #[test]
    fn all_pinned_overflows_set() {
        let mut c = tiny();
        c.insert(L2Line::new(LineAddr(0), L2State::Shared, true));
        c.insert(L2Line::new(LineAddr(2), L2State::Shared, true));
        c.mshrs.insert(LineAddr(0), Mshr::new());
        c.mshrs.insert(LineAddr(2), Mshr::new());
        let (v, _) = c.insert(L2Line::new(LineAddr(4), L2State::Shared, true));
        assert!(v.is_none());
        assert_eq!(c.set_overflows, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = tiny();
        let mut first = L2Line::new(LineAddr(0), L2State::Shared, true);
        first.transparent = true;
        c.insert(first);
        let (v, slot) = c.insert(L2Line::new(LineAddr(0), L2State::Exclusive, true));
        assert!(v.is_none());
        assert!(!slot.transparent);
        assert_eq!(slot.state, L2State::Exclusive);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn si_flagging_dedupes() {
        let mut c = tiny();
        c.insert(L2Line::new(LineAddr(8), L2State::Exclusive, true));
        c.flag_si(LineAddr(8));
        c.flag_si(LineAddr(8));
        assert_eq!(c.si_queue.len(), 1);
        assert!(c.get(LineAddr(8)).expect("resident").si_flag);
        // Flagging a non-resident line is a no-op.
        c.flag_si(LineAddr(9));
        assert_eq!(c.si_queue.len(), 1);
    }

    #[test]
    fn mshr_pending_predicate() {
        let mut m = Mshr::new();
        assert!(!m.pending());
        m.trans_pending = true;
        assert!(m.pending());
    }
}
