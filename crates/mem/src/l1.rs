use slipstream_kernel::config::CacheGeometry;
use slipstream_kernel::LineAddr;

/// State of a line in an L1 cache.
///
/// L1 coherence is managed entirely by the node's shared L2 (inclusion is
/// enforced: an L1 may only hold lines its L2 holds). `Modified` is only
/// permitted when the L2 holds the line exclusively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1State {
    /// Clean, readable copy.
    Shared,
    /// Dirty, writable copy (node's L2 is the exclusive owner).
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct L1Line {
    line: LineAddr,
    state: L1State,
}

/// A private per-processor L1 data cache (32 KB, 2-way in the paper).
///
/// Set-associative with true-LRU replacement. Timing is handled by the
/// caller; this type only tracks contents. Evicted dirty lines are folded
/// into the L2 (same chip) at zero cost, which the caller performs via the
/// returned victim.
///
/// Storage is a single flat array indexed by `set * ways`: set `s` occupies
/// `slots[s * ways ..][..lens[s]]` in LRU order (most recent last). Hits
/// promote by rotating the occupied suffix instead of `Vec::remove` +
/// `push`, so the hot lookup path touches one contiguous cache line and
/// never allocates.
#[derive(Debug)]
pub struct L1Cache {
    slots: Vec<L1Line>,
    /// Occupied ways per set (`<= ways`); slots beyond are placeholders.
    lens: Vec<u8>,
    ways: usize,
    set_mask: u64,
}

/// Result of inserting a line into the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether the victim was dirty (must be folded back into the L2).
    pub dirty: bool,
}

impl L1Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> L1Cache {
        let sets = geom.sets() as usize;
        let ways = geom.ways as usize;
        L1Cache {
            // Placeholders beyond each set's occupied prefix are never read:
            // every scan is bounded by `lens[set]`.
            slots: vec![L1Line { line: LineAddr(0), state: L1State::Shared }; sets * ways],
            lens: vec![0; sets],
            ways,
            set_mask: sets as u64 - 1,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// The occupied slice of one set, in LRU order (most recent last).
    #[inline]
    fn set(&mut self, set_idx: usize) -> &mut [L1Line] {
        let base = set_idx * self.ways;
        &mut self.slots[base..base + self.lens[set_idx] as usize]
    }

    /// Looks up `line`, updating LRU on hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<L1State> {
        let set = self.set(self.set_of(line));
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let state = set[pos].state;
            // Promote to MRU: rotating the suffix is Vec::remove + push
            // without the element-by-element shuffle.
            set[pos..].rotate_left(1);
            Some(state)
        } else {
            None
        }
    }

    /// Peeks at a line's state without touching LRU.
    #[cfg(test)]
    pub fn peek(&self, line: LineAddr) -> Option<L1State> {
        let set_idx = self.set_of(line);
        let base = set_idx * self.ways;
        let set = &self.slots[base..base + self.lens[set_idx] as usize];
        set.iter().find(|l| l.line == line).map(|l| l.state)
    }

    /// Inserts (or updates) `line` with `state`, returning the victim if a
    /// line had to be evicted.
    pub fn insert(&mut self, line: LineAddr, state: L1State) -> Option<L1Victim> {
        let set_idx = self.set_of(line);
        let ways = self.ways;
        let set = self.set(set_idx);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            set[pos].state = state;
            set[pos..].rotate_left(1);
            return None;
        }
        let len = set.len();
        if len == ways {
            // Evict the LRU (front) line by rotating the whole set and
            // overwriting the now-last slot with the newcomer.
            let v = set[0];
            set.rotate_left(1);
            set[len - 1] = L1Line { line, state };
            Some(L1Victim { line: v.line, dirty: v.state == L1State::Modified })
        } else {
            self.slots[set_idx * self.ways + len] = L1Line { line, state };
            self.lens[set_idx] += 1;
            None
        }
    }

    /// Removes `line` if present (back-invalidation from the L2), returning
    /// whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set_idx = self.set_of(line);
        let set = self.set(set_idx);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            let dirty = set[pos].state == L1State::Modified;
            // Close the gap while preserving the order of the survivors.
            set[pos..].rotate_left(1);
            self.lens[set_idx] -= 1;
            Some(dirty)
        } else {
            None
        }
    }

    /// Downgrades a Modified copy to Shared (L2 lost exclusivity), returning
    /// whether the line was dirty.
    pub fn downgrade(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set(self.set_of(line));
        if let Some(entry) = set.iter_mut().find(|l| l.line == line) {
            let was_dirty = entry.state == L1State::Modified;
            entry.state = L1State::Shared;
            Some(was_dirty)
        } else {
            None
        }
    }

    /// Number of resident lines (for tests).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Whether the cache holds no lines.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        // 2 sets x 2 ways, 64B lines.
        L1Cache::new(CacheGeometry { bytes: 256, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.lookup(LineAddr(4)).is_none());
        assert!(c.insert(LineAddr(4), L1State::Shared).is_none());
        assert_eq!(c.lookup(LineAddr(4)), Some(L1State::Shared));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0.
        c.insert(LineAddr(0), L1State::Shared);
        c.insert(LineAddr(2), L1State::Shared);
        c.lookup(LineAddr(0)); // make line 2 the LRU
        let v = c.insert(LineAddr(4), L1State::Shared).expect("must evict");
        assert_eq!(v.line, LineAddr(2));
        assert!(!v.dirty);
        assert!(c.peek(LineAddr(0)).is_some());
        assert!(c.peek(LineAddr(2)).is_none());
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = tiny();
        c.insert(LineAddr(0), L1State::Modified);
        c.insert(LineAddr(2), L1State::Shared);
        let v = c.insert(LineAddr(4), L1State::Shared).expect("evict");
        assert_eq!(v.line, LineAddr(0));
        assert!(v.dirty);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = tiny();
        c.insert(LineAddr(0), L1State::Shared);
        assert!(c.insert(LineAddr(0), L1State::Modified).is_none());
        assert_eq!(c.peek(LineAddr(0)), Some(L1State::Modified));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = tiny();
        c.insert(LineAddr(0), L1State::Modified);
        assert_eq!(c.downgrade(LineAddr(0)), Some(true));
        assert_eq!(c.peek(LineAddr(0)), Some(L1State::Shared));
        assert_eq!(c.invalidate(LineAddr(0)), Some(false));
        assert!(c.is_empty());
        assert_eq!(c.invalidate(LineAddr(0)), None);
        assert_eq!(c.downgrade(LineAddr(0)), None);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.insert(LineAddr(0), L1State::Shared); // set 0
        c.insert(LineAddr(1), L1State::Shared); // set 1
        c.insert(LineAddr(2), L1State::Shared); // set 0
        c.insert(LineAddr(3), L1State::Shared); // set 1
        assert_eq!(c.len(), 4);
        assert!(c.insert(LineAddr(4), L1State::Shared).is_some()); // evicts in set 0 only
        assert!(c.peek(LineAddr(1)).is_some());
        assert!(c.peek(LineAddr(3)).is_some());
    }
}
