use std::collections::VecDeque;

use slipstream_kernel::config::{DirScheme, Latencies, MachineConfig};
use slipstream_kernel::{Addr, CpuId, Cycle, EventQueue, FxHashMap, LineAddr, NodeId, Server, SharerSet};
use slipstream_prog::{BarrierId, EventId, LockId};

use crate::classify::OpenReq;
use crate::home::HomeMap;
use crate::l1::{L1Cache, L1State};
use crate::l2::{L2Cache, L2Line, L2State, Mshr, Waiter};
use crate::msg::{AccessKind, Completion, MemEvent, Msg, MsgKind, StreamRole, SyncOp, Token};
use crate::stats::MemStats;
use crate::sync::{SyncCtl, SyncOutcome};
use crate::trace::{AccessOutcome, MemTracer, TracePerm};

/// Where the memory system schedules its internal events.
///
/// The machine loop implements this on its global event queue; the blanket
/// impl below lets tests use a bare [`EventQueue<MemEvent>`].
pub trait MemSched {
    /// Schedule `ev` to be handed back via [`MemSystem::handle_event`] at
    /// time `at`.
    fn sched(&mut self, at: Cycle, ev: MemEvent);
}

impl MemSched for EventQueue<MemEvent> {
    fn sched(&mut self, at: Cycle, ev: MemEvent) {
        self.push(at, ev);
    }
}

/// Immediate outcome of a processor-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// L1 hit: the access completes in the L1 hit time; the processor does
    /// not block on the memory system.
    HitL1,
    /// The access is in flight; the processor blocks until a
    /// [`Completion`] with this token is delivered.
    Pending(Token),
    /// A non-binding prefetch was accepted (or dropped); the processor
    /// continues immediately.
    Accepted,
}

/// Directory permission state for one line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum Perm {
    #[default]
    Uncached,
    Shared(SharerSet), // bit per node
    Excl(NodeId),
}

/// What an in-flight directory transaction is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitKind {
    /// Memory data (reply scheduled via `MemReady`).
    Mem,
    /// The exclusive owner's response to an intervention.
    Owner,
    /// Invalidation acks from sharers.
    Acks,
}

#[derive(Debug)]
struct PendingTxn {
    requester: NodeId,
    excl: bool,
    needs_data: bool,
    acks_left: u32,
    wait: WaitKind,
    owner_gone: bool,
    wb_received: bool,
    si_hint: bool,
}

#[derive(Debug, Default)]
struct DirLine {
    perm: Perm,
    /// Future-sharer bits (§4.2), one per node, set by transparent loads.
    /// Always tracked precisely, in every [`DirScheme`].
    future: SharerSet,
    /// Limited-pointer overflow: the sharer list stopped tracking new
    /// readers once the pointer budget was exhausted, so the next write
    /// must broadcast invalidations. Always `false` under
    /// [`DirScheme::FullMap`].
    ovfl: bool,
    busy: Option<PendingTxn>,
    waiters: VecDeque<Msg>,
    /// Consecutive exclusive-ownership hand-offs between distinct nodes
    /// (saturating); two or more marks the line migratory.
    handoffs: u8,
    /// The last node that held the line exclusively.
    last_excl: Option<NodeId>,
}

impl DirLine {
    /// Records an exclusive grant to `to`, updating migratory detection.
    fn note_excl_handoff(&mut self, to: NodeId) {
        match self.last_excl {
            Some(prev) if prev != to => self.handoffs = self.handoffs.saturating_add(1),
            Some(_) => {}
            None => {}
        }
        self.last_excl = Some(to);
    }

    /// Whether the line follows a migratory (read-modify-write hand-off)
    /// pattern.
    fn migratory(&self) -> bool {
        self.handoffs >= 2
    }
}

#[derive(Debug)]
struct NodeState {
    l1: [L1Cache; 2],
    l2: L2Cache,
    dc: Server,
    port_in: Server,
    port_out: Server,
    /// The node's memory bank: `MemTime` is both its access latency and
    /// its occupancy, so each node sustains at most one line transfer per
    /// `MemTime` cycles ("contention is modeled ... at the memory
    /// controller", Table 1).
    mem_bank: Server,
    /// Earliest time the next self-invalidation step may run (rate limit).
    si_next: Cycle,
}

/// The complete memory system of the simulated machine: all caches,
/// directories, network ports, and synchronization controllers.
///
/// Driven by three entry points — [`MemSystem::access`],
/// [`MemSystem::sync`], and [`MemSystem::handle_event`] — and a clock-less
/// design: every method takes the current simulated time, and internal
/// progress is made through [`MemEvent`]s scheduled on the caller's queue.
#[derive(Debug)]
pub struct MemSystem {
    /// Latency table, copied out of the [`MachineConfig`] (it is `Copy`);
    /// the full config is not retained.
    lat: Latencies,
    migratory_opt: bool,
    /// Directory sharer-tracking scheme ([`MachineConfig::dir_scheme`]).
    scheme: DirScheme,
    n_nodes: u16,
    /// Global index of the first node materialized in `nodes`: 0 for a
    /// whole-machine system, the owning node's index for a single-node
    /// PDES partition ([`MemSystem::new_partition`]).
    first_node: usize,
    home: HomeMap,
    line_bytes: u64,
    nodes: Vec<NodeState>,
    dir: FxHashMap<LineAddr, DirLine>,
    sync: SyncCtl,
    stats: MemStats,
    next_token: u64,
    si_interval: u64,
    /// Observability hook ([`MemTracer`]); `None` on the default path, so
    /// tracing costs one branch per hook site when disabled.
    tracer: Option<Box<dyn MemTracer>>,
}

/// Adds `from` to a shared line's sharer set under the configured
/// directory scheme. A full-map directory always records the sharer; a
/// limited-pointer directory stops recording once the pointer budget is
/// exhausted and marks the line overflowed instead, so the next write
/// broadcasts invalidations.
fn track_sharer(scheme: DirScheme, s: &mut SharerSet, ovfl: &mut bool, from: NodeId) {
    match scheme {
        DirScheme::FullMap => s.insert(from),
        DirScheme::LimitedPointer { ptrs, .. } => {
            if *ovfl {
                return;
            }
            if s.contains(from) || s.count() < u32::from(ptrs) {
                s.insert(from);
            } else {
                *ovfl = true;
            }
        }
    }
}

fn node_state(cfg: &MachineConfig) -> NodeState {
    NodeState {
        l1: [L1Cache::new(cfg.l1), L1Cache::new(cfg.l1)],
        l2: L2Cache::new(cfg.l2),
        dc: Server::new(),
        port_in: Server::new(),
        port_out: Server::new(),
        mem_bank: Server::new(),
        si_next: Cycle::ZERO,
    }
}

fn is_a_group(role: StreamRole) -> bool {
    role.is_a()
}

impl MemSystem {
    /// Creates the memory system for `cfg.nodes` CMP nodes with the given
    /// address-to-home map; `participants` is the number of tasks arriving
    /// at every barrier.
    ///
    /// # Panics
    ///
    /// Panics if the home map disagrees with the machine's node count.
    pub fn new(cfg: &MachineConfig, home: HomeMap, participants: u32) -> MemSystem {
        assert_eq!(home.nodes(), cfg.nodes, "home map and machine disagree on node count");
        let line_bytes = cfg.line_bytes();
        let nodes = (0..cfg.nodes).map(|_| node_state(cfg)).collect();
        MemSystem {
            lat: cfg.lat,
            migratory_opt: cfg.migratory_opt,
            scheme: cfg.dir_scheme,
            n_nodes: cfg.nodes,
            first_node: 0,
            home,
            line_bytes,
            nodes,
            dir: FxHashMap::default(),
            sync: SyncCtl::new(participants),
            stats: MemStats::default(),
            next_token: 0,
            si_interval: 4,
            tracer: None,
        }
    }

    /// Creates a single-node partition of the memory system for parallel
    /// (PDES) execution: only `node`'s caches, ports, and memory bank are
    /// materialized, while the directory and sync-controller hashing still
    /// span the whole `cfg.nodes`-node machine, so directory homes and
    /// sync objects shard naturally across partitions (every message for
    /// line `l` reaches exactly the partition owning `home_of_line(l)`).
    ///
    /// Tokens are drawn from a per-partition counter: memory tokens only
    /// pair completions with waiters inside one node, and sync tokens
    /// round-trip through the owning partition's controller keyed by
    /// `(cpu, token)`, so token values are never compared across nodes.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MemSystem::new`], plus `node` out of range.
    pub fn new_partition(
        cfg: &MachineConfig,
        home: HomeMap,
        participants: u32,
        node: NodeId,
    ) -> MemSystem {
        assert_eq!(home.nodes(), cfg.nodes, "home map and machine disagree on node count");
        assert!(node.idx() < cfg.nodes as usize, "partition node out of range");
        MemSystem {
            lat: cfg.lat,
            migratory_opt: cfg.migratory_opt,
            scheme: cfg.dir_scheme,
            n_nodes: cfg.nodes,
            first_node: node.idx(),
            home,
            line_bytes: cfg.line_bytes(),
            nodes: vec![node_state(cfg)],
            dir: FxHashMap::default(),
            sync: SyncCtl::new(participants),
            stats: MemStats::default(),
            next_token: 0,
            si_interval: 4,
            tracer: None,
        }
    }

    /// Index of `node` within this system's materialized `nodes` slice.
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        node.idx() - self.first_node
    }

    /// Installs an observability hook. Tracers are purely observational —
    /// see [`MemTracer`] — so installing one never changes simulated
    /// behavior.
    pub fn set_tracer(&mut self, tracer: Box<dyn MemTracer>) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the installed tracer, if any.
    pub fn clear_tracer(&mut self) -> Option<Box<dyn MemTracer>> {
        self.tracer.take()
    }

    #[inline]
    fn trace_access(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        kind: AccessKind,
        line: LineAddr,
        outcome: AccessOutcome,
    ) {
        if let Some(t) = self.tracer.as_deref_mut() {
            t.access(now, cpu, role, kind, line, outcome);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Takes ownership of the accumulated statistics, leaving zeroed
    /// counters behind. Used at end of run so the report does not clone
    /// the (non-trivial) stats block.
    pub fn take_stats(&mut self) -> MemStats {
        std::mem::take(&mut self.stats)
    }

    /// Sets the self-invalidation drain rate (one line per `interval`
    /// cycles; the paper uses 4).
    pub fn set_si_interval(&mut self, interval: u64) {
        assert!(interval > 0);
        self.si_interval = interval;
    }

    /// Number of lines flagged but not yet processed for self-invalidation
    /// at `node`.
    pub fn si_backlog(&self, node: NodeId) -> usize {
        self.nodes[self.local(node)].l2.si_queue.len()
    }

    fn token(&mut self) -> Token {
        self.next_token += 1;
        Token(self.next_token)
    }

    // ------------------------------------------------------------------
    // Processor-side API
    // ------------------------------------------------------------------

    /// Issues a data access from `cpu` at time `now`.
    ///
    /// `shared` marks coherent application data (vs. task-private data);
    /// `in_cs` marks accesses made while holding a lock (drives the SI
    /// migratory-vs-producer-consumer policy).
    ///
    /// # Panics
    ///
    /// Panics if an A-stream issues a `Write` to shared data — the
    /// slipstream runtime must squash those (§3.1) — or if a prefetch or
    /// transparent load is issued by a non-A stream.
    #[allow(clippy::too_many_arguments)] // mirrors the processor-side request fields
    pub fn access(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        kind: AccessKind,
        addr: Addr,
        shared: bool,
        in_cs: bool,
        sched: &mut impl MemSched,
    ) -> Access {
        let line = addr.line(self.line_bytes);
        match kind {
            AccessKind::Read => self.access_read(now, cpu, role, false, line, shared, sched),
            AccessKind::TransparentRead => {
                assert!(role.is_a(), "transparent loads come from A-streams only");
                self.access_read(now, cpu, role, true, line, shared, sched)
            }
            AccessKind::Write => {
                assert!(
                    !(role.is_a() && shared),
                    "A-stream stores to shared memory must be squashed by the runtime"
                );
                self.access_write(now, cpu, role, line, shared, in_cs, sched)
            }
            AccessKind::ExclPrefetch => {
                assert!(role.is_a() && shared, "exclusive prefetches come from A-streams only");
                self.access_excl_prefetch(now, cpu, line, sched)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn access_read(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        trans: bool,
        line: LineAddr,
        shared: bool,
        sched: &mut impl MemSched,
    ) -> Access {
        let n = self.local(cpu.node());
        let core = cpu.core() as usize;
        let kind = if trans { AccessKind::TransparentRead } else { AccessKind::Read };
        if self.nodes[n].l1[core].lookup(line).is_some() {
            self.stats.l1_hits += 1;
            self.trace_access(now, cpu, role, kind, line, AccessOutcome::L1Hit);
            return Access::HitL1;
        }
        // L2 lookup.
        let mut l2_hit = false;
        {
            let node = &mut self.nodes[n];
            if let Some(entry) = node.l2.touch(line) {
                if !entry.transparent || role.is_a() {
                    l2_hit = true;
                    // Reading the latest data: a sibling L1's dirty copy is
                    // folded into the L2.
                    if let Some(d) = entry.l1_dirty.take() {
                        if d as usize != core {
                            node.l1[d as usize].downgrade(line);
                        }
                    }
                    classify_touch(entry, role);
                    entry.l1_mask |= 1 << core;
                }
            }
        }
        if l2_hit {
            self.stats.l2_hits += 1;
            self.trace_access(now, cpu, role, kind, line, AccessOutcome::L2Hit);
            self.fill_l1(cpu, line, L1State::Shared);
            let token = self.token();
            sched.sched(now + self.lat.l2_hit, MemEvent::L2Done { cpu, token });
            return Access::Pending(token);
        }
        // Miss: merge into or create an MSHR.
        self.stats.l2_misses += 1;
        let token = self.token();
        let waiter = Waiter { cpu, token };
        let node_id = cpu.node();
        let mut launch: Option<MsgKind> = None;
        let mut merged = false;
        {
            let mshrs = &mut self.nodes[n].l2.mshrs;
            if let Some(mshr) = mshrs.get_mut(&line) {
                self.stats.merged_misses += 1;
                merged = true;
                merge_classify(&mut self.stats, mshr, role);
                if role.is_a() {
                    // Any fill (transparent or coherent) satisfies an A read.
                    mshr.a_waiters.push(waiter);
                } else {
                    mshr.waiters.push(waiter);
                    if !mshr.norm_pending && !mshr.excl_pending {
                        // Only a transparent request is in flight; an R read
                        // needs a coherent copy, so launch a normal read.
                        mshr.norm_pending = true;
                        if shared && mshr.open_read.is_none() {
                            mshr.open_read = Some(OpenReq::new(role));
                        }
                        self.stats.read_txns += 1;
                        launch = Some(MsgKind::ReadReq { line, from: node_id, role });
                    }
                }
            } else {
                let mut mshr = Mshr::new();
                if role.is_a() {
                    mshr.a_waiters.push(waiter);
                } else {
                    mshr.waiters.push(waiter);
                }
                self.stats.read_txns += 1;
                if role.is_a() {
                    self.stats.a_read_txns += 1;
                }
                let kind = if trans {
                    mshr.trans_pending = true;
                    self.stats.transparent_issued += 1;
                    MsgKind::TransReadReq { line, from: node_id }
                } else {
                    mshr.norm_pending = true;
                    MsgKind::ReadReq { line, from: node_id, role }
                };
                if shared {
                    mshr.open_read = Some(OpenReq::new(role));
                }
                mshrs.insert(line, mshr);
                launch = Some(kind);
            }
        }
        let outcome = if merged { AccessOutcome::MissMerged } else { AccessOutcome::MissNew };
        self.trace_access(now, cpu, role, kind, line, outcome);
        if !merged {
            if let Some(t) = self.tracer.as_deref_mut() {
                t.mshr_alloc(now, node_id, line);
            }
        }
        if let Some(kind) = launch {
            self.issue_txn(now, node_id, line, kind, sched);
        }
        Access::Pending(token)
    }

    #[allow(clippy::too_many_arguments)]
    fn access_write(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        line: LineAddr,
        shared: bool,
        in_cs: bool,
        sched: &mut impl MemSched,
    ) -> Access {
        let n = self.local(cpu.node());
        let core = cpu.core() as usize;
        if self.nodes[n].l1[core].lookup(line) == Some(L1State::Modified) {
            self.stats.l1_hits += 1;
            self.trace_access(now, cpu, role, AccessKind::Write, line, AccessOutcome::L1Hit);
            return Access::HitL1;
        }
        let node_id = cpu.node();
        let token = self.token();
        let waiter = Waiter { cpu, token };
        // Resident and writable within the node?
        let mut grant = false;
        {
            let node = &mut self.nodes[n];
            if let Some(entry) = node.l2.touch(line) {
                if entry.state == L2State::Exclusive && !entry.transparent {
                    grant = true;
                    // Write-invalidate within the CMP: drop the sibling's
                    // L1 copy.
                    let sib = core ^ 1;
                    if entry.l1_mask & (1 << sib) != 0 {
                        node.l1[sib].invalidate(entry.line);
                        entry.l1_mask &= !(1 << sib);
                    }
                    entry.l1_mask |= 1 << core;
                    entry.l1_dirty = Some(core as u8);
                    entry.dirty = true;
                    if shared && in_cs {
                        entry.wrote_in_cs = true;
                    }
                    classify_touch(entry, role);
                }
            }
        }
        if grant {
            self.stats.l2_hits += 1;
            self.trace_access(now, cpu, role, AccessKind::Write, line, AccessOutcome::L2Hit);
            self.fill_l1(cpu, line, L1State::Modified);
            sched.sched(now + self.lat.l2_hit, MemEvent::L2Done { cpu, token });
            return Access::Pending(token);
        }
        self.stats.l2_misses += 1;
        let mut launch: Option<MsgKind> = None;
        let mut merged = false;
        {
            let l2 = &mut self.nodes[n].l2;
            if let Some(mshr) = l2.mshrs.get_mut(&line) {
                self.stats.merged_misses += 1;
                merged = true;
                merge_classify(&mut self.stats, mshr, role);
                mshr.store_waiters.push(waiter);
                mshr.store_in_cs |= in_cs;
                if !mshr.excl_pending && !mshr.norm_pending {
                    // Transparent-only in flight: launch the exclusive fetch.
                    mshr.excl_pending = true;
                    mshr.excl_is_prefetch = false;
                    if shared && mshr.open_excl.is_none() {
                        mshr.open_excl = Some(OpenReq::new(role));
                    }
                    self.stats.excl_txns += 1;
                    launch =
                        Some(MsgKind::ReadExclReq { line, from: node_id, role, had_shared: false });
                } else if mshr.excl_pending {
                    // A real store binds an in-flight prefetch.
                    mshr.excl_is_prefetch = false;
                }
                // A pending normal read will trigger the upgrade at fill
                // time (the fill handler sees the queued store).
            } else {
                // Upgrade if we hold a coherent shared copy, else full
                // read-exclusive.
                let had_shared = l2.get(line).map(|e| !e.transparent).unwrap_or(false);
                let mut mshr = Mshr::new();
                mshr.excl_pending = true;
                mshr.store_waiters.push(waiter);
                mshr.store_in_cs = in_cs;
                if shared {
                    mshr.open_excl = Some(OpenReq::new(role));
                }
                l2.mshrs.insert(line, mshr);
                self.stats.excl_txns += 1;
                launch = Some(MsgKind::ReadExclReq { line, from: node_id, role, had_shared });
            }
        }
        let outcome = if merged { AccessOutcome::MissMerged } else { AccessOutcome::MissNew };
        self.trace_access(now, cpu, role, AccessKind::Write, line, outcome);
        if !merged {
            if let Some(t) = self.tracer.as_deref_mut() {
                t.mshr_alloc(now, node_id, line);
            }
        }
        if let Some(kind) = launch {
            self.issue_txn(now, node_id, line, kind, sched);
        }
        Access::Pending(token)
    }

    fn access_excl_prefetch(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        line: LineAddr,
        sched: &mut impl MemSched,
    ) -> Access {
        let n = self.local(cpu.node());
        let node_id = cpu.node();
        // `Some(had_shared)` if the prefetch should be issued; `None` if it
        // is dropped (a request already in flight, or the line is owned).
        let issue: Option<bool> = {
            let l2 = &mut self.nodes[n].l2;
            if l2.mshrs.contains_key(&line) {
                None // something already in flight
            } else {
                let had_shared = match l2.get(line) {
                    Some(e) if e.state == L2State::Exclusive && !e.transparent => None, // owned
                    Some(e) => Some(!e.transparent),
                    None => Some(false),
                };
                if had_shared.is_some() {
                    let mut mshr = Mshr::new();
                    mshr.excl_pending = true;
                    mshr.excl_is_prefetch = true;
                    mshr.open_excl = Some(OpenReq::new(StreamRole::A));
                    l2.mshrs.insert(line, mshr);
                }
                had_shared
            }
        };
        let Some(had_shared) = issue else {
            self.trace_access(
                now,
                cpu,
                StreamRole::A,
                AccessKind::ExclPrefetch,
                line,
                AccessOutcome::PrefetchDropped,
            );
            return Access::Accepted;
        };
        self.stats.excl_txns += 1;
        self.stats.excl_prefetches += 1;
        self.trace_access(
            now,
            cpu,
            StreamRole::A,
            AccessKind::ExclPrefetch,
            line,
            AccessOutcome::PrefetchIssued,
        );
        if let Some(t) = self.tracer.as_deref_mut() {
            t.mshr_alloc(now, node_id, line);
        }
        self.issue_txn(
            now,
            node_id,
            line,
            MsgKind::ReadExclReq { line, from: node_id, role: StreamRole::A, had_shared },
            sched,
        );
        Access::Accepted
    }

    /// Issues a synchronization operation. The returned token identifies
    /// the eventual completion for blocking ops (`op.blocks()`);
    /// fire-and-forget ops never complete but still generate traffic.
    pub fn sync(&mut self, now: Cycle, cpu: CpuId, op: SyncOp, sched: &mut impl MemSched) -> Token {
        let token = self.token();
        let home = self.sync_home(op);
        let msg = Msg { src: cpu.node(), dst: home, kind: MsgKind::SyncReq { op, cpu, token } };
        sched.sched(now + self.lat.bus, MemEvent::AtLocalDc(msg));
        token
    }

    fn sync_home(&self, op: SyncOp) -> NodeId {
        let x = match op {
            SyncOp::BarrierArrive(BarrierId(i)) => i as u64,
            SyncOp::LockAcquire(LockId(i)) | SyncOp::LockRelease(LockId(i)) => {
                0x1000_0000 + i as u64
            }
            SyncOp::EventPost(EventId(i)) | SyncOp::EventWait(EventId(i), _) => {
                0x2000_0000 + i as u64
            }
        };
        NodeId(((x.wrapping_mul(2654435761) >> 16) % self.n_nodes as u64) as u16)
    }

    /// Starts draining `node`'s self-invalidation queue — the paper
    /// processes flagged lines when the R-stream reaches a synchronization
    /// point, at a peak rate of one line per `si_interval` cycles,
    /// overlapped with the synchronization itself.
    pub fn kick_si(&mut self, now: Cycle, node: NodeId, sched: &mut impl MemSched) {
        let n = self.local(node);
        let st = &mut self.nodes[n];
        if st.l2.si_active || st.l2.si_queue.is_empty() {
            return;
        }
        st.l2.si_active = true;
        let at = now.max(st.si_next);
        sched.sched(at, MemEvent::SiStep(node));
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Advances the memory system for one internal event, pushing any
    /// processor completions into `out`.
    pub fn handle_event(
        &mut self,
        now: Cycle,
        ev: MemEvent,
        sched: &mut impl MemSched,
        out: &mut Vec<Completion>,
    ) {
        match ev {
            MemEvent::L2Done { cpu, token } => out.push(Completion { cpu, token }),
            MemEvent::AtLocalDc(msg) => {
                let n = self.local(msg.src);
                if msg.src == msg.dst {
                    let occ = Cycle(self.local_dc_occ(&msg.kind));
                    let done = self.nodes[n].dc.serve(now, occ);
                    sched.sched(done, MemEvent::Handle(msg));
                } else {
                    let occ = Cycle(self.lat.pi_remote_dc);
                    let done = self.nodes[n].dc.serve(now, occ);
                    sched.sched(done, MemEvent::NetOut(msg));
                }
            }
            MemEvent::NetOut(msg) => {
                let at = self.net_out(now, &msg);
                sched.sched(at, MemEvent::NetIn(msg));
            }
            MemEvent::NetIn(msg) => {
                let n = self.local(msg.dst);
                let start = self.nodes[n].port_in.serve_start(now, Cycle(self.lat.net_port));
                sched.sched(start, MemEvent::AtDestDc(msg));
            }
            MemEvent::AtDestDc(msg) => {
                let n = self.local(msg.dst);
                let occ = Cycle(self.dest_dc_occ(&msg.kind));
                let done = self.nodes[n].dc.serve(now, occ);
                sched.sched(done, MemEvent::Handle(msg));
            }
            MemEvent::Handle(msg) => self.handle_msg(now, msg, sched),
            MemEvent::MemReady(msg) => self.mem_ready(now, msg, sched),
            MemEvent::AtL2(msg) => self.at_l2(now, msg, sched, out),
            MemEvent::SiStep(node) => self.si_step(now, node, sched),
        }
    }

    /// Serves the source-side network-port occupancy for an outbound
    /// message and returns the time it arrives at the destination node
    /// (the `NetIn` time). Split out of [`MemSystem::handle_event`] so a
    /// parallel (PDES) driver can divert cross-partition sends through
    /// exactly the same accounting the serial loop performs.
    pub fn net_out(&mut self, now: Cycle, msg: &Msg) -> Cycle {
        self.stats.net_messages += 1;
        let n = self.local(msg.src);
        let start = self.nodes[n].port_out.serve_start(now, Cycle(self.lat.net_port));
        start + self.lat.net
    }

    fn local_dc_occ(&self, kind: &MsgKind) -> u64 {
        match kind {
            MsgKind::ReadReq { .. }
            | MsgKind::ReadExclReq { .. }
            | MsgKind::TransReadReq { .. } => self.lat.pi_local_dc,
            MsgKind::SyncReq { .. } => self.lat.sync_ctrl,
            _ => self.lat.ni_remote_dc,
        }
    }

    fn dest_dc_occ(&self, kind: &MsgKind) -> u64 {
        match kind {
            MsgKind::ReadReq { .. }
            | MsgKind::ReadExclReq { .. }
            | MsgKind::TransReadReq { .. } => self.lat.ni_local_dc,
            MsgKind::SyncReq { .. } => self.lat.sync_ctrl,
            _ => self.lat.ni_remote_dc,
        }
    }

    /// Serves one memory-bank read at `home`, returning the time the
    /// data is available: the bank's pipelined latency (`MemTime`) past
    /// the service start, where the start queues behind earlier transfers
    /// (the bank is occupied `mem_bank_occ` cycles per line).
    fn mem_access(&mut self, home: NodeId, now: Cycle) -> Cycle {
        let occ = Cycle(self.lat.mem_bank_occ);
        let n = self.local(home);
        let start = self.nodes[n].mem_bank.serve_start(now, occ);
        start + self.lat.mem
    }

    /// Serves one memory-bank *write* (writeback or SI downgrade) at
    /// `home`. Writes are buffered at the controller, so they occupy the
    /// bank only for the transfer time (`MemTime`), not the full read
    /// occupancy — nobody waits on them.
    fn mem_write(&mut self, home: NodeId, now: Cycle) {
        let occ = Cycle(self.lat.mem);
        let n = self.local(home);
        let _ = self.nodes[n].mem_bank.serve_start(now, occ);
    }

    /// Routes a message originating at `src` (already past that node's DC)
    /// to `dst`'s L2/controller.
    fn route(&mut self, now: Cycle, msg: Msg, sched: &mut impl MemSched) {
        if msg.src == msg.dst {
            sched.sched(now + self.lat.bus, MemEvent::AtL2(msg));
        } else {
            sched.sched(now, MemEvent::NetOut(msg));
        }
    }

    /// Sends a message from a node's L2 through the full path (bus, DCs,
    /// network) to `dst`.
    fn send_from_l2(&mut self, now: Cycle, msg: Msg, sched: &mut impl MemSched) {
        sched.sched(now + self.lat.bus, MemEvent::AtLocalDc(msg));
    }

    /// Issues a new directory transaction from `src`'s L2.
    fn issue_txn(
        &mut self,
        now: Cycle,
        src: NodeId,
        line: LineAddr,
        kind: MsgKind,
        sched: &mut impl MemSched,
    ) {
        let home = self.home.home_of_line(line, self.line_bytes);
        if home == src {
            self.stats.local_txns += 1;
        } else {
            self.stats.remote_txns += 1;
        }
        self.send_from_l2(now, Msg { src, dst: home, kind }, sched);
    }

    // ------------------------------------------------------------------
    // Directory
    // ------------------------------------------------------------------

    fn handle_msg(&mut self, now: Cycle, msg: Msg, sched: &mut impl MemSched) {
        match &msg.kind {
            MsgKind::ReadReq { .. }
            | MsgKind::ReadExclReq { .. }
            | MsgKind::TransReadReq { .. }
            | MsgKind::WritebackDirty { .. }
            | MsgKind::ReplHint { .. }
            | MsgKind::DowngradeWb { .. }
            | MsgKind::WbShared { .. }
            | MsgKind::TransferAck { .. }
            | MsgKind::InvAck { .. }
            | MsgKind::FwdNack { .. } => self.handle_dir(now, msg, sched),
            MsgKind::SyncReq { op, cpu, token } => {
                let (op, cpu, token) = (*op, *cpu, *token);
                let home = msg.dst;
                match self.sync.handle(op, cpu, token) {
                    SyncOutcome::Queued => {
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.sync_event(now, cpu, op, 0);
                        }
                    }
                    SyncOutcome::Grant(grants) => {
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.sync_event(now, cpu, op, grants.len() as u32);
                        }
                        for (gcpu, gtoken) in grants {
                            let gm = Msg {
                                src: home,
                                dst: gcpu.node(),
                                kind: MsgKind::SyncGrant { cpu: gcpu, token: gtoken },
                            };
                            self.route(now, gm, sched);
                        }
                    }
                }
            }
            // Everything else is cache-side: cross the bus into the L2.
            _ => sched.sched(now + self.lat.bus, MemEvent::AtL2(msg)),
        }
    }

    fn handle_dir(&mut self, now: Cycle, msg: Msg, sched: &mut impl MemSched) {
        let line = msg.kind.line().expect("directory messages carry a line");
        debug_assert_eq!(
            msg.dst,
            self.home.home_of_line(line, self.line_bytes),
            "directory message routed to a non-home node"
        );
        let home = msg.dst;
        let mut dl = self.dir.remove(&line).unwrap_or_default();
        let is_request = matches!(
            msg.kind,
            MsgKind::ReadReq { .. } | MsgKind::ReadExclReq { .. } | MsgKind::TransReadReq { .. }
        );
        if dl.busy.is_some() && is_request {
            dl.waiters.push_back(msg);
            self.dir.insert(line, dl);
            return;
        }
        let mut retry = false;
        // Snapshot the pre-transition state only when someone is watching:
        // the clone is potentially allocating (spilled sharer sets), so the
        // default path must not pay for it.
        let before = self.tracer.is_some().then(|| (dl.perm.clone(), dl.ovfl));
        // Dissolve the message so the kind can be matched by move (no
        // per-message clone on the directory hot path); src/dst stay
        // available for the one arm that re-queues the message.
        let Msg { src: msg_src, dst: msg_dst, kind } = msg;
        match kind {
            MsgKind::ReadReq { from, role, .. } => {
                if !role.is_a() {
                    dl.future.remove(from);
                }
                match &mut dl.perm {
                    Perm::Uncached => {
                        // MSI: reads are granted shared (the paper's
                        // "invalidate-based fully-mapped directory").
                        dl.perm = Perm::Shared(SharerSet::single(from));
                        dl.busy = Some(mem_wait(from, false));
                        let reply = data_reply(home, from, line, false, false);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                    Perm::Shared(s) => {
                        track_sharer(self.scheme, s, &mut dl.ovfl, from);
                        dl.busy = Some(mem_wait(from, false));
                        let reply = data_reply(home, from, line, false, false);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                    Perm::Excl(owner) if *owner != from => {
                        let owner = *owner;
                        self.stats.interventions += 1;
                        let migratory_grant =
                            self.migratory_opt && dl.migratory() && !role.is_a();
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.intervention(now, line, owner, from, migratory_grant);
                        }
                        if migratory_grant {
                            // Migratory optimization: the reader will write
                            // next, so transfer ownership outright and save
                            // its upgrade.
                            self.stats.migratory_grants += 1;
                            dl.note_excl_handoff(from);
                            dl.busy = Some(PendingTxn {
                                requester: from,
                                excl: true,
                                needs_data: true,
                                acks_left: 0,
                                wait: WaitKind::Owner,
                                owner_gone: false,
                                wb_received: false,
                                si_hint: false,
                            });
                            let fwd = Msg {
                                src: home,
                                dst: owner,
                                kind: MsgKind::FwdExcl { line, owner, requester: from },
                            };
                            self.route(now, fwd, sched);
                        } else {
                            dl.busy = Some(PendingTxn {
                                requester: from,
                                excl: false,
                                needs_data: true,
                                acks_left: 0,
                                wait: WaitKind::Owner,
                                owner_gone: false,
                                wb_received: false,
                                si_hint: false,
                            });
                            let fwd = Msg {
                                src: home,
                                dst: owner,
                                kind: MsgKind::FwdRead { line, owner, requester: from },
                            };
                            self.route(now, fwd, sched);
                        }
                    }
                    Perm::Excl(_) => {
                        // Request from the node the directory believes is
                        // the owner. FIFO channels guarantee an eviction
                        // notice would have arrived before a re-request, so
                        // this is a duplicate (e.g. a normal read racing a
                        // transparent request the directory upgraded to a
                        // MESI grant): re-grant exclusively from memory.
                        dl.busy = Some(mem_wait(from, false));
                        let reply = data_reply(home, from, line, true, false);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                }
            }
            MsgKind::ReadExclReq { from, role, .. } => {
                let si_hint = !role.is_a() && dl.future.any_except(from);
                if !role.is_a() {
                    dl.future.remove(from);
                }
                dl.note_excl_handoff(from);
                match &mut dl.perm {
                    Perm::Uncached => {
                        dl.perm = Perm::Excl(from);
                        dl.busy = Some(PendingTxn { si_hint, ..mem_wait(from, true) });
                        let reply = data_reply(home, from, line, true, si_hint);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                    Perm::Shared(_) => {
                        // Take the sharer set out so the fan-out below can
                        // iterate it while the directory entry mutates.
                        let Perm::Shared(s) = std::mem::replace(&mut dl.perm, Perm::Excl(from))
                        else {
                            unreachable!("matched Shared above")
                        };
                        let bcast = dl.ovfl;
                        dl.ovfl = false;
                        let needs_data = !s.contains(from);
                        let n_targets = if bcast {
                            // Limited-pointer overflow: the precise sharer
                            // list is gone, so invalidate every other node
                            // (they all ack, cached copy or not).
                            u32::from(self.n_nodes) - 1
                        } else {
                            s.count_except(from)
                        };
                        dl.busy = Some(PendingTxn {
                            requester: from,
                            excl: true,
                            needs_data,
                            acks_left: n_targets,
                            wait: if n_targets > 0 { WaitKind::Acks } else { WaitKind::Mem },
                            owner_gone: false,
                            wb_received: false,
                            si_hint,
                        });
                        self.stats.invalidations_sent += n_targets as u64;
                        if bcast {
                            self.stats.broadcast_invalidations += 1;
                            for i in 0..self.n_nodes {
                                let to = NodeId(i);
                                if to == from {
                                    continue;
                                }
                                if let Some(t) = self.tracer.as_deref_mut() {
                                    t.invalidation(now, line, to);
                                }
                                let inv =
                                    Msg { src: home, dst: to, kind: MsgKind::Inv { line, to } };
                                self.route(now, inv, sched);
                            }
                        } else {
                            for to in s.iter() {
                                if to == from {
                                    continue;
                                }
                                if let Some(t) = self.tracer.as_deref_mut() {
                                    t.invalidation(now, line, to);
                                }
                                let inv =
                                    Msg { src: home, dst: to, kind: MsgKind::Inv { line, to } };
                                self.route(now, inv, sched);
                            }
                        }
                        if n_targets == 0 {
                            let reply = data_reply(home, from, line, true, si_hint);
                            let at = if needs_data { self.mem_access(home, now) } else { now };
                            sched.sched(at, MemEvent::MemReady(reply));
                        }
                    }
                    Perm::Excl(owner) if *owner != from => {
                        let owner = *owner;
                        self.stats.interventions += 1;
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.intervention(now, line, owner, from, true);
                        }
                        dl.busy = Some(PendingTxn {
                            requester: from,
                            excl: true,
                            needs_data: true,
                            acks_left: 0,
                            wait: WaitKind::Owner,
                            owner_gone: false,
                            wb_received: false,
                            si_hint,
                        });
                        let fwd = Msg {
                            src: home,
                            dst: owner,
                            kind: MsgKind::FwdExcl { line, owner, requester: from },
                        };
                        self.route(now, fwd, sched);
                    }
                    Perm::Excl(_) => {
                        // Duplicate request from the believed owner (see
                        // the ReadReq arm): re-grant.
                        dl.busy = Some(PendingTxn { si_hint, ..mem_wait(from, true) });
                        let reply = data_reply(home, from, line, true, si_hint);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                }
            }
            MsgKind::TransReadReq { from, .. } => {
                dl.future.insert(from);
                match &mut dl.perm {
                    Perm::Excl(owner) if *owner != from => {
                        let owner = *owner;
                        // Stale copy straight from memory; advise the owner
                        // (§4.2, left half of Figure 8). The directory is
                        // not blocked and the sharing list is untouched.
                        self.stats.transparent_replies += 1;
                        self.stats.si_hints += 1;
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.transparent_reply(now, line, from);
                            t.si_hint(now, line, owner);
                        }
                        let reply =
                            Msg { src: home, dst: from, kind: MsgKind::TransReply { line, to: from } };
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                        let hint =
                            Msg { src: home, dst: owner, kind: MsgKind::SiHint { line, owner } };
                        self.route(now, hint, sched);
                    }
                    Perm::Excl(_) => {
                        // Transparent request from the believed owner:
                        // upgrade to a normal exclusive re-grant.
                        self.stats.upgraded_replies += 1;
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.transparent_upgrade(now, line, from);
                        }
                        dl.busy = Some(mem_wait(from, false));
                        let reply = data_reply(home, from, line, true, false);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                    Perm::Uncached => {
                        // Upgraded to a normal (shared) load (§4.1).
                        self.stats.upgraded_replies += 1;
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.transparent_upgrade(now, line, from);
                        }
                        dl.perm = Perm::Shared(SharerSet::single(from));
                        dl.busy = Some(mem_wait(from, false));
                        let reply = data_reply(home, from, line, false, false);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                    Perm::Shared(s) => {
                        self.stats.upgraded_replies += 1;
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.transparent_upgrade(now, line, from);
                        }
                        track_sharer(self.scheme, s, &mut dl.ovfl, from);
                        dl.busy = Some(mem_wait(from, false));
                        let reply = data_reply(home, from, line, false, false);
                        let done = self.mem_access(home, now);
                        sched.sched(done, MemEvent::MemReady(reply));
                    }
                }
            }
            MsgKind::WritebackDirty { from, .. } => {
                self.stats.writebacks += 1;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.writeback(now, line, from);
                }
                // The line's data is written to memory (consumes bank
                // bandwidth even though nobody waits on it).
                self.mem_write(home, now);
                dl.future.remove(from);
                if let Some(p) = dl.busy.as_mut() {
                    p.wb_received = true;
                    if p.owner_gone {
                        {
                            let mem_done = self.mem_access(home, now);
                            complete_from_memory(&mut dl, home, line, mem_done, sched);
                        }
                    }
                    // else: the intervention outcome resolves the txn.
                } else if dl.perm == Perm::Excl(from) {
                    dl.perm = Perm::Uncached;
                    retry = true;
                }
                // Otherwise: stale writeback after ownership transfer; drop.
            }
            MsgKind::DowngradeWb { from, .. } => {
                if dl.busy.is_some() {
                    // Let the in-flight transaction resolve first.
                    dl.waiters.push_back(Msg {
                        src: msg_src,
                        dst: msg_dst,
                        kind: MsgKind::DowngradeWb { line, from },
                    });
                } else if dl.perm == Perm::Excl(from) {
                    self.mem_write(home, now);
                    dl.perm = Perm::Shared(SharerSet::single(from));
                    retry = true;
                }
            }
            MsgKind::ReplHint { from, .. } => {
                dl.future.remove(from);
                match &mut dl.perm {
                    Perm::Shared(s) => {
                        // Under limited-pointer overflow the sharer list is
                        // no longer precise, so evictions cannot shrink it
                        // (an untracked sharer might remain); the line stays
                        // overflowed until the next write broadcasts.
                        if !dl.ovfl {
                            s.remove(from);
                            if s.is_empty() {
                                dl.perm = Perm::Uncached;
                            }
                        }
                        retry = dl.busy.is_none();
                    }
                    Perm::Excl(o) if *o == from && dl.busy.is_none() => {
                        // Clean exclusive eviction. An owner that never
                        // wrote also disproves a migratory prediction.
                        dl.perm = Perm::Uncached;
                        dl.handoffs = 0;
                        retry = true;
                    }
                    Perm::Excl(o) if *o == from => {
                        // Clean exclusive eviction racing an intervention:
                        // memory is current (the copy was clean), so this
                        // resolves the stalled transaction like a writeback.
                        let p = dl.busy.as_mut().expect("checked busy above");
                        p.wb_received = true;
                        if p.owner_gone {
                            {
                            let mem_done = self.mem_access(home, now);
                            complete_from_memory(&mut dl, home, line, mem_done, sched);
                        }
                        }
                    }
                    _ => {}
                }
            }
            MsgKind::WbShared { from, requester, .. } => {
                let p = dl.busy.take().expect("WbShared without pending transaction");
                debug_assert!(!p.excl && p.wait == WaitKind::Owner);
                debug_assert_eq!(p.requester, requester);
                dl.perm = Perm::Shared(SharerSet::pair(from, requester));
                retry = true;
            }
            MsgKind::TransferAck { new_owner, .. } => {
                let p = dl.busy.take().expect("TransferAck without pending transaction");
                debug_assert!(p.excl && p.wait == WaitKind::Owner);
                debug_assert_eq!(p.requester, new_owner);
                dl.perm = Perm::Excl(new_owner);
                retry = true;
            }
            MsgKind::InvAck { .. } => {
                let mem_lat = self.lat.mem;
                let p = dl.busy.as_mut().expect("InvAck without pending transaction");
                debug_assert!(p.wait == WaitKind::Acks && p.acks_left > 0);
                p.acks_left -= 1;
                if p.acks_left == 0 {
                    p.wait = WaitKind::Mem;
                    let needs_data = p.needs_data;
                    let reply = data_reply(home, p.requester, line, true, p.si_hint);
                    let _ = mem_lat;
                    let at = if needs_data { self.mem_access(home, now) } else { now };
                    sched.sched(at, MemEvent::MemReady(reply));
                }
            }
            MsgKind::FwdNack { .. } => {
                self.stats.intervention_nacks += 1;
                let p = dl.busy.as_mut().expect("FwdNack without pending transaction");
                debug_assert!(p.wait == WaitKind::Owner);
                p.owner_gone = true;
                if p.wb_received {
                    {
                            let mem_done = self.mem_access(home, now);
                            complete_from_memory(&mut dl, home, line, mem_done, sched);
                        }
                }
            }
            other => unreachable!("non-directory message {other:?} in handle_dir"),
        }
        if let Some((perm_before, ovfl_before)) = before {
            if dl.perm != perm_before || dl.ovfl != ovfl_before {
                let from = trace_perm(&perm_before, ovfl_before);
                let to = trace_perm(&dl.perm, dl.ovfl);
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.dir_transition(now, line, &from, &to, msg_src);
                }
            }
        }
        self.dir.insert(line, dl);
        if retry {
            self.retry_waiters(now, line, sched);
        }
    }

    /// Memory data ready at the home node: route the prepared reply, clear
    /// the memory-wait transaction, and retry deferred requests.
    fn mem_ready(&mut self, now: Cycle, msg: Msg, sched: &mut impl MemSched) {
        let line = msg.kind.line().expect("MemReady carries a line");
        let is_data_reply = matches!(msg.kind, MsgKind::DataReply { .. });
        self.route(now, msg, sched);
        if is_data_reply {
            let mut retry = false;
            if let Some(dl) = self.dir.get_mut(&line) {
                if matches!(dl.busy, Some(PendingTxn { wait: WaitKind::Mem, .. })) {
                    dl.busy = None;
                    retry = true;
                }
            }
            if retry {
                self.retry_waiters(now, line, sched);
            }
        }
    }

    /// Re-dispatches deferred requests for `line` until one re-busies it.
    fn retry_waiters(&mut self, now: Cycle, line: LineAddr, sched: &mut impl MemSched) {
        loop {
            let next = {
                let dl = match self.dir.get_mut(&line) {
                    Some(dl) => dl,
                    None => return,
                };
                if dl.busy.is_some() {
                    return;
                }
                match dl.waiters.pop_front() {
                    Some(m) => m,
                    None => return,
                }
            };
            self.handle_dir(now, next, sched);
        }
    }

    // ------------------------------------------------------------------
    // L2-side message handling
    // ------------------------------------------------------------------

    fn at_l2(
        &mut self,
        now: Cycle,
        msg: Msg,
        sched: &mut impl MemSched,
        out: &mut Vec<Completion>,
    ) {
        let node = msg.dst;
        match msg.kind {
            MsgKind::DataReply { line, excl, si_hint, .. } => {
                self.fill_coherent(now, node, line, excl, si_hint, sched, out);
            }
            MsgKind::FwdData { line, excl, .. } => {
                self.fill_coherent(now, node, line, excl, false, sched, out);
            }
            MsgKind::TransReply { line, .. } => {
                self.fill_transparent(now, node, line, sched, out);
            }
            MsgKind::FwdRead { line, requester, .. } => {
                self.owner_fwd_read(now, node, line, requester, sched);
            }
            MsgKind::FwdExcl { line, requester, .. } => {
                self.owner_fwd_excl(now, node, line, requester, sched);
            }
            MsgKind::Inv { line, .. } => {
                self.invalidate_line(now, node, line);
                let home = self.home.home_of_line(line, self.line_bytes);
                let ack = Msg { src: node, dst: home, kind: MsgKind::InvAck { line, from: node } };
                self.send_from_l2(now, ack, sched);
            }
            MsgKind::SiHint { line, .. } => {
                let n = self.local(node);
                let st = &mut self.nodes[n];
                if st.l2.get(line).map(|e| e.state == L2State::Exclusive).unwrap_or(false) {
                    st.l2.flag_si(line);
                }
            }
            MsgKind::SyncGrant { cpu, token } => out.push(Completion { cpu, token }),
            other => unreachable!("unexpected message at L2: {other:?}"),
        }
    }

    fn fill_l1(&mut self, cpu: CpuId, line: LineAddr, state: L1State) {
        let n = self.local(cpu.node());
        let core = cpu.core() as usize;
        let victim = self.nodes[n].l1[core].insert(line, state);
        if let Some(v) = victim {
            if let Some(entry) = self.nodes[n].l2.get_mut(v.line) {
                entry.l1_mask &= !(1 << core);
                if v.dirty {
                    entry.dirty = true;
                    if entry.l1_dirty == Some(cpu.core()) {
                        entry.l1_dirty = None;
                    }
                }
            }
        }
    }

    /// A coherent fill (from memory or a forwarding owner) lands in the L2.
    #[allow(clippy::too_many_arguments)]
    fn fill_coherent(
        &mut self,
        now: Cycle,
        node: NodeId,
        line: LineAddr,
        excl: bool,
        si_hint: bool,
        sched: &mut impl MemSched,
        out: &mut Vec<Completion>,
    ) {
        let n = self.local(node);
        let mut mshr = match self.nodes[n].l2.mshrs.remove(&line) {
            Some(m) => m,
            None => return, // stale reply; drop
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.fill(now, node, line, excl, false);
        }
        // A coherent fill supersedes everything outstanding for the line,
        // including a transparent request the directory upgraded (its
        // duplicate reply, if any, is dropped against the missing MSHR).
        mshr.norm_pending = false;
        mshr.trans_pending = false;
        if excl {
            mshr.excl_pending = false;
        }
        let shared_data = mshr.open_read.is_some()
            || mshr.open_excl.is_some()
            || self.nodes[n].l2.get(line).map(|e| e.shared_data).unwrap_or(false);

        // Update or insert the line.
        let state = if excl { L2State::Exclusive } else { L2State::Shared };
        let mut victim = None;
        {
            let l2 = &mut self.nodes[n].l2;
            if let Some(entry) = l2.get_mut(line) {
                // Upgrade fill, or a coherent fill over a transparent copy.
                entry.state = state;
                entry.transparent = false;
                entry.shared_data |= shared_data;
                if let Some(op) = mshr.open_read.take() {
                    if let Some(old) = entry.open_read.replace(op) {
                        self.stats.class.close(true, old);
                    }
                }
                if excl {
                    if let Some(op) = mshr.open_excl.take() {
                        if let Some(old) = entry.open_excl.replace(op) {
                            self.stats.class.close(false, old);
                        }
                    }
                }
            } else {
                let mut entry = L2Line::new(line, state, shared_data);
                entry.open_read = mshr.open_read.take();
                if excl {
                    entry.open_excl = mshr.open_excl.take();
                }
                let (v, _slot) = l2.insert(entry);
                victim = v;
            }
        }
        if let Some(v) = victim {
            self.evict_line(now, node, v.entry, sched);
        }
        if si_hint && excl {
            self.nodes[n].l2.flag_si(line);
        }

        // Complete read waiters. A-stream waiters first: the A-stream
        // requested first whenever both merged (it runs ahead), and at
        // equal timestamps it must get to consume its A-R token before the
        // R-stream's deviation check runs.
        let read_waiters = std::mem::take(&mut mshr.a_waiters)
            .into_iter()
            .chain(std::mem::take(&mut mshr.waiters));
        for w in read_waiters {
            self.fill_l1(w.cpu, line, L1State::Shared);
            if let Some(entry) = self.nodes[n].l2.get_mut(line) {
                entry.l1_mask |= 1 << w.cpu.core();
            }
            out.push(Completion { cpu: w.cpu, token: w.token });
        }
        if excl {
            // Complete store waiters: ownership is here.
            let store_waiters = std::mem::take(&mut mshr.store_waiters);
            let n_stores = store_waiters.len();
            if n_stores > 0 {
                if let Some(entry) = self.nodes[n].l2.get_mut(line) {
                    classify_store_fill(entry);
                }
            }
            for (i, w) in store_waiters.into_iter().enumerate() {
                let last = i + 1 == n_stores;
                let st = if last { L1State::Modified } else { L1State::Shared };
                self.fill_l1(w.cpu, line, st);
                if let Some(entry) = self.nodes[n].l2.get_mut(line) {
                    entry.l1_mask |= 1 << w.cpu.core();
                    if last {
                        entry.dirty = true;
                        entry.l1_dirty = Some(w.cpu.core());
                        if mshr.store_in_cs && entry.shared_data {
                            entry.wrote_in_cs = true;
                        }
                    }
                }
                out.push(Completion { cpu: w.cpu, token: w.token });
            }
        } else if !mshr.store_waiters.is_empty() && !mshr.excl_pending {
            // Shared fill but stores are queued: upgrade now.
            mshr.excl_pending = true;
            if shared_data && mshr.open_excl.is_none() {
                mshr.open_excl = Some(OpenReq::new(StreamRole::R));
            }
            self.stats.excl_txns += 1;
            self.nodes[n].l2.mshrs.insert(line, mshr);
            self.issue_txn(
                now,
                node,
                line,
                MsgKind::ReadExclReq { line, from: node, role: StreamRole::R, had_shared: true },
                sched,
            );
            return;
        }
        if mshr.pending() {
            // A transparent (or exclusive) reply is still due; keep the
            // MSHR so the late reply is recognized.
            self.nodes[n].l2.mshrs.insert(line, mshr);
        } else {
            debug_assert!(mshr.store_waiters.is_empty(), "store waiters dropped at fill");
            if let Some(t) = self.tracer.as_deref_mut() {
                t.mshr_free(now, node, line);
            }
        }
    }

    /// A transparent (possibly stale) reply lands in the L2 — visible to
    /// the A-stream only (§4.1).
    fn fill_transparent(
        &mut self,
        now: Cycle,
        node: NodeId,
        line: LineAddr,
        sched: &mut impl MemSched,
        out: &mut Vec<Completion>,
    ) {
        let n = self.local(node);
        let mut mshr = match self.nodes[n].l2.mshrs.remove(&line) {
            Some(m) => m,
            None => return,
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.fill(now, node, line, false, true);
        }
        mshr.trans_pending = false;
        let resident = self.nodes[n].l2.get(line).is_some();
        let mut victim = None;
        if !resident && !mshr.norm_pending && !mshr.excl_pending {
            let mut entry = L2Line::new(line, L2State::Shared, true);
            entry.transparent = true;
            entry.open_read = mshr.open_read.take();
            let (v, _slot) = self.nodes[n].l2.insert(entry);
            victim = v;
        }
        if let Some(v) = victim {
            self.evict_line(now, node, v.entry, sched);
        }
        // Complete the A-stream waiters; coherent waiters (if any) are
        // still waiting on the normal/exclusive fill.
        let a_waiters = std::mem::take(&mut mshr.a_waiters);
        for w in a_waiters {
            self.fill_l1(w.cpu, line, L1State::Shared);
            if let Some(entry) = self.nodes[n].l2.get_mut(line) {
                entry.l1_mask |= 1 << w.cpu.core();
            }
            out.push(Completion { cpu: w.cpu, token: w.token });
        }
        if mshr.pending() {
            self.nodes[n].l2.mshrs.insert(line, mshr);
        } else {
            debug_assert!(
                mshr.waiters.is_empty() && mshr.store_waiters.is_empty(),
                "coherent waiters dropped at transparent fill"
            );
            if let Some(t) = self.tracer.as_deref_mut() {
                t.mshr_free(now, node, line);
            }
        }
    }

    /// Evicts a victim line: back-invalidates L1 copies, closes open
    /// classification, and notifies the home node.
    fn evict_line(
        &mut self,
        now: Cycle,
        node: NodeId,
        mut entry: L2Line,
        sched: &mut impl MemSched,
    ) {
        let n = self.local(node);
        for core in 0..2usize {
            if entry.l1_mask & (1 << core) != 0 {
                if let Some(dirty) = self.nodes[n].l1[core].invalidate(entry.line) {
                    if dirty {
                        entry.dirty = true;
                    }
                }
            }
        }
        if let Some(op) = entry.open_read.take() {
            self.stats.class.close(true, op);
        }
        if let Some(op) = entry.open_excl.take() {
            self.stats.class.close(false, op);
        }
        let home = self.home.home_of_line(entry.line, self.line_bytes);
        let dirty_wb = !entry.transparent && entry.dirty && entry.state == L2State::Exclusive;
        let kind = if dirty_wb {
            MsgKind::WritebackDirty { line: entry.line, from: node }
        } else {
            MsgKind::ReplHint { line: entry.line, from: node }
        };
        if let Some(t) = self.tracer.as_deref_mut() {
            t.l2_evict(now, node, entry.line, dirty_wb, entry.transparent);
        }
        self.send_from_l2(now, Msg { src: node, dst: home, kind }, sched);
    }

    fn invalidate_line(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        let n = self.local(node);
        if let Some(mut entry) = self.nodes[n].l2.remove(line) {
            for core in 0..2usize {
                if entry.l1_mask & (1 << core) != 0 {
                    self.nodes[n].l1[core].invalidate(line);
                }
            }
            if let Some(op) = entry.open_read.take() {
                self.stats.class.close(true, op);
            }
            if let Some(op) = entry.open_excl.take() {
                self.stats.class.close(false, op);
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.l2_invalidate(now, node, line);
            }
        }
    }

    fn owner_fwd_read(
        &mut self,
        now: Cycle,
        node: NodeId,
        line: LineAddr,
        requester: NodeId,
        sched: &mut impl MemSched,
    ) {
        let n = self.local(node);
        let home = self.home.home_of_line(line, self.line_bytes);
        // `was_excl` can be false here: a self-invalidation downgrade may
        // already have demoted the copy while its `DowngradeWb` races this
        // intervention to the home. The data reply proceeds either way;
        // only the downgrade observation is conditional (the hook reports
        // transitions out of exclusivity, and there is none to report).
        let (have, was_excl) = {
            let st = &mut self.nodes[n];
            if let Some(entry) = st.l2.get_mut(line) {
                if let Some(d) = entry.l1_dirty.take() {
                    st.l1[d as usize].downgrade(line);
                }
                let was_excl = entry.state == L2State::Exclusive;
                entry.state = L2State::Shared;
                entry.dirty = false;
                entry.si_flag = false;
                entry.wrote_in_cs = false;
                (true, was_excl)
            } else {
                (false, false)
            }
        };
        if have {
            if was_excl {
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.l2_downgrade(now, node, line);
                }
            }
            let data = Msg {
                src: node,
                dst: requester,
                kind: MsgKind::FwdData { line, to: requester, excl: false },
            };
            self.send_from_l2(now, data, sched);
            let wb =
                Msg { src: node, dst: home, kind: MsgKind::WbShared { line, from: node, requester } };
            self.send_from_l2(now, wb, sched);
        } else {
            let nack = Msg { src: node, dst: home, kind: MsgKind::FwdNack { line, from: node } };
            self.send_from_l2(now, nack, sched);
        }
    }

    fn owner_fwd_excl(
        &mut self,
        now: Cycle,
        node: NodeId,
        line: LineAddr,
        requester: NodeId,
        sched: &mut impl MemSched,
    ) {
        let home = self.home.home_of_line(line, self.line_bytes);
        let have = self.nodes[self.local(node)].l2.get(line).is_some();
        if have {
            self.invalidate_line(now, node, line);
            let data = Msg {
                src: node,
                dst: requester,
                kind: MsgKind::FwdData { line, to: requester, excl: true },
            };
            self.send_from_l2(now, data, sched);
            let ack = Msg {
                src: node,
                dst: home,
                kind: MsgKind::TransferAck { line, from: node, new_owner: requester },
            };
            self.send_from_l2(now, ack, sched);
        } else {
            let nack = Msg { src: node, dst: home, kind: MsgKind::FwdNack { line, from: node } };
            self.send_from_l2(now, nack, sched);
        }
    }

    // ------------------------------------------------------------------
    // Self-invalidation
    // ------------------------------------------------------------------

    fn si_step(&mut self, now: Cycle, node: NodeId, sched: &mut impl MemSched) {
        let n = self.local(node);
        let line = loop {
            match self.nodes[n].l2.si_queue.pop_front() {
                None => {
                    self.nodes[n].l2.si_active = false;
                    return;
                }
                Some(l) => {
                    let valid = self.nodes[n]
                        .l2
                        .get(l)
                        .map(|e| e.si_flag && e.state == L2State::Exclusive)
                        .unwrap_or(false);
                    if valid {
                        break l;
                    }
                }
            }
        };
        let wrote_in_cs =
            self.nodes[n].l2.get(line).map(|e| e.wrote_in_cs).unwrap_or(false);
        let home = self.home.home_of_line(line, self.line_bytes);
        if wrote_in_cs {
            // Migratory: invalidate (and write back if dirty).
            let dirty = self.nodes[n].l2.get(line).map(|e| e.dirty).unwrap_or(false);
            self.invalidate_line(now, node, line);
            let kind = if dirty {
                MsgKind::WritebackDirty { line, from: node }
            } else {
                MsgKind::ReplHint { line, from: node }
            };
            self.send_from_l2(now, Msg { src: node, dst: home, kind }, sched);
            self.stats.si_invalidations += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.si_action(now, node, line, true);
            }
        } else {
            // Producer-consumer: write back and downgrade to shared.
            {
                let st = &mut self.nodes[n];
                if let Some(entry) = st.l2.get_mut(line) {
                    if let Some(d) = entry.l1_dirty.take() {
                        st.l1[d as usize].downgrade(line);
                    }
                    entry.state = L2State::Shared;
                    entry.dirty = false;
                    entry.si_flag = false;
                }
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.l2_downgrade(now, node, line);
            }
            let kind = MsgKind::DowngradeWb { line, from: node };
            self.send_from_l2(now, Msg { src: node, dst: home, kind }, sched);
            self.stats.si_downgrades += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.si_action(now, node, line, false);
            }
        }
        // Rate limit: one line per si_interval cycles.
        let next = now + self.si_interval;
        self.nodes[n].si_next = next;
        if self.nodes[n].l2.si_queue.is_empty() {
            self.nodes[n].l2.si_active = false;
        } else {
            sched.sched(next, MemEvent::SiStep(node));
        }
    }

    // ------------------------------------------------------------------
    // Finalization / invariants
    // ------------------------------------------------------------------

    /// Closes all open request classifications (call once, at the end of a
    /// run, before reading [`MemStats::class`]). Empties the caches and
    /// folds the per-node contention-server counters into
    /// [`MemStats::contention`].
    pub fn finalize(&mut self) {
        for st in &self.nodes {
            let c = &mut self.stats.contention;
            for (server, res) in [
                (&st.dc, &mut c.dir_ctl),
                (&st.port_in, &mut c.net_in),
                (&st.port_out, &mut c.net_out),
                (&st.mem_bank, &mut c.mem_bank),
            ] {
                res.busy_cycles += server.busy_cycles();
                res.jobs += server.jobs();
                res.wait_cycles += server.wait_cycles();
            }
        }
        for st in &mut self.nodes {
            for entry in st.l2.drain_all() {
                if let Some(op) = entry.open_read {
                    self.stats.class.close(true, op);
                }
                if let Some(op) = entry.open_excl {
                    self.stats.class.close(false, op);
                }
            }
            for (_line, mshr) in st.l2.mshrs.drain() {
                if let Some(op) = mshr.open_read {
                    self.stats.class.close(true, op);
                }
                if let Some(op) = mshr.open_excl {
                    self.stats.class.close(false, op);
                }
            }
        }
    }

    /// Verifies that no transaction, sync object, or MSHR is still in
    /// flight.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found (indicates a
    /// protocol bug or a deadlocked workload).
    pub fn check_quiescent(&self) -> Result<(), String> {
        for (line, dl) in &self.dir {
            if let Some(p) = &dl.busy {
                return Err(format!(
                    "directory line {line} still busy: {p:?}, perm={:?}, {} deferred",
                    dl.perm,
                    dl.waiters.len()
                ));
            }
            if !dl.waiters.is_empty() {
                return Err(format!(
                    "directory line {line} has {} deferred requests: perm={:?} waiters={:?}",
                    dl.waiters.len(),
                    dl.perm,
                    dl.waiters
                ));
            }
        }
        for (i, st) in self.nodes.iter().enumerate() {
            if !st.l2.mshrs.is_empty() {
                let g = self.first_node + i;
                return Err(format!("node {g} has {} outstanding MSHRs", st.l2.mshrs.len()));
            }
        }
        if !self.sync.quiescent() {
            return Err("sync controller not quiescent".to_string());
        }
        Ok(())
    }
}

fn trace_perm(p: &Perm, ovfl: bool) -> TracePerm {
    match p {
        Perm::Uncached => TracePerm::Uncached,
        Perm::Shared(s) => TracePerm::Shared { sharers: s.clone(), overflow: ovfl },
        Perm::Excl(o) => TracePerm::Excl { owner: *o },
    }
}

fn mem_wait(requester: NodeId, excl: bool) -> PendingTxn {
    PendingTxn {
        requester,
        excl,
        needs_data: true,
        acks_left: 0,
        wait: WaitKind::Mem,
        owner_gone: false,
        wb_received: false,
        si_hint: false,
    }
}

fn data_reply(home: NodeId, to: NodeId, line: LineAddr, excl: bool, si_hint: bool) -> Msg {
    Msg { src: home, dst: to, kind: MsgKind::DataReply { line, to, excl, si_hint } }
}

/// An interventioned owner turned out to have evicted the line and its
/// writeback has arrived: complete the stalled transaction from memory.
fn complete_from_memory(
    dl: &mut DirLine,
    home: NodeId,
    line: LineAddr,
    mem_done: Cycle,
    sched: &mut impl MemSched,
) {
    let p = dl.busy.as_mut().expect("complete_from_memory requires a pending txn");
    p.wait = WaitKind::Mem;
    if p.excl {
        dl.perm = Perm::Excl(p.requester);
    } else {
        dl.perm = Perm::Shared(SharerSet::single(p.requester));
    }
    dl.ovfl = false;
    let reply = data_reply(home, p.requester, line, p.excl, p.si_hint);
    sched.sched(mem_done, MemEvent::MemReady(reply));
}

/// Records that `role` touched a line with open classification state.
fn classify_touch(entry: &mut L2Line, role: StreamRole) {
    if !entry.shared_data {
        return;
    }
    let is_a = is_a_group(role);
    if let Some(op) = entry.open_read.as_mut() {
        if is_a_group(op.issuer) != is_a {
            op.reffed_other = true;
        }
    }
    if let Some(op) = entry.open_excl.as_mut() {
        if is_a_group(op.issuer) != is_a {
            op.reffed_other = true;
        }
    }
}

/// When an exclusive fill completes queued R-stream stores on a line whose
/// open requests were A-issued (prefetches), the store is the R reference.
fn classify_store_fill(entry: &mut L2Line) {
    if !entry.shared_data {
        return;
    }
    if let Some(op) = entry.open_excl.as_mut() {
        if is_a_group(op.issuer) {
            op.reffed_other = true;
        }
    }
    if let Some(op) = entry.open_read.as_mut() {
        if is_a_group(op.issuer) {
            op.reffed_other = true;
        }
    }
}

/// Detects `Late` classifications when a miss merges into an outstanding
/// request issued by the other stream.
fn merge_classify(stats: &mut MemStats, mshr: &mut Mshr, role: StreamRole) {
    let is_a = is_a_group(role);
    if let Some(op) = mshr.open_read.as_mut() {
        if is_a_group(op.issuer) != is_a && !op.late {
            op.late = true;
            stats.class.count_late(true, op.issuer);
        }
    }
    if let Some(op) = mshr.open_excl.as_mut() {
        if is_a_group(op.issuer) != is_a && !op.late {
            op.late = true;
            stats.class.count_late(false, op.issuer);
        }
    }
}
