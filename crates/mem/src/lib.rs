//! The memory system of the simulated CMP-based DSM multiprocessor.
//!
//! Each CMP node holds two processors with private L1 data caches, a shared
//! unified L2, a slice of the globally shared memory, a directory controller
//! (DC), and network input/output ports. System-wide coherence of the L2
//! caches is maintained by an invalidate-based, fully-mapped directory
//! protocol, exactly as in §2 of the paper. The latency and occupancy
//! parameters default to Table 1 (Origin 3000-like): a contention-free
//! local miss costs 170 cycles and a remote miss 290 cycles — asserted by
//! this crate's tests.
//!
//! Beyond a conventional protocol, this crate implements the paper's §4
//! mechanisms:
//!
//! * **transparent loads** — A-stream read requests that may be answered
//!   with a (possibly stale) memory copy without disturbing an exclusive
//!   owner; the returned line is visible only to the A-stream;
//! * **future-sharer bits** per directory entry, set by transparent loads
//!   and cleared by evictions or R-stream requests;
//! * **self-invalidation hints** sent to exclusive owners, processed at
//!   R-stream synchronization points at a peak rate of one line per
//!   `si_interval` cycles: lines written inside a critical section are
//!   invalidated (migratory), others are written back and downgraded to
//!   shared (producer-consumer);
//! * **request classification** for Figure 7 (A/R × Timely/Late/Only, for
//!   read and exclusive requests).
//!
//! The crate is driven by the `slipstream-core` machine loop through three
//! entry points: [`MemSystem::access`] (processor-side), [`MemSystem::sync`]
//! (barrier/lock/event operations, which travel through the same network
//! and controllers), and [`MemSystem::handle_event`] (the discrete-event
//! callbacks). Completions are returned to the caller as [`Completion`]
//! values.

mod classify;
mod home;
mod l1;
mod l2;
mod msg;
mod stats;
mod sync;
mod system;
mod trace;

pub use classify::{ClassCounts, RequestClass};
pub use home::HomeMap;
pub use msg::{AccessKind, Completion, MemEvent, Msg, StreamRole, SyncOp, Token};
pub use stats::{ContentionStats, MemStats, ResourceUse};
pub use system::{Access, MemSched, MemSystem};
pub use trace::{AccessOutcome, FanoutTracer, MemTracer, TracePerm};
