use crate::classify::RequestClass;

/// Occupancy counters for one FIFO contention server, summed over all
/// nodes. Cycles are simulated cycles, so these are deterministic and
/// identical between the serial and parallel engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUse {
    /// Total simulated cycles the resource spent serving jobs.
    pub busy_cycles: u64,
    /// Jobs served.
    pub jobs: u64,
    /// Total cycles jobs spent queued behind earlier jobs.
    pub wait_cycles: u64,
}

impl ResourceUse {
    fn accumulate(&mut self, o: &ResourceUse) {
        self.busy_cycles += o.busy_cycles;
        self.jobs += o.jobs;
        self.wait_cycles += o.wait_cycles;
    }

    /// Busy cycles as a fraction of `total_cycles` (0 when the run is
    /// empty). With N nodes each resource has N instances, so the
    /// meaningful denominator is `exec_cycles * nodes`.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total_cycles as f64
        }
    }
}

/// Per-resource contention totals: where simulated requests queued.
/// Populated by [`crate::MemSystem::finalize`] from the per-node
/// [`slipstream_kernel::Server`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Directory controller occupancy.
    pub dir_ctl: ResourceUse,
    /// Network ingress port.
    pub net_in: ResourceUse,
    /// Network egress port.
    pub net_out: ResourceUse,
    /// Memory bank.
    pub mem_bank: ResourceUse,
}

impl ContentionStats {
    fn accumulate(&mut self, o: &ContentionStats) {
        self.dir_ctl.accumulate(&o.dir_ctl);
        self.net_in.accumulate(&o.net_in);
        self.net_out.accumulate(&o.net_out);
        self.mem_bank.accumulate(&o.mem_bank);
    }

    /// `(name, use)` pairs in a fixed report order.
    pub fn named(&self) -> [(&'static str, &ResourceUse); 4] {
        [
            ("dir_ctl", &self.dir_ctl),
            ("net_in", &self.net_in),
            ("net_out", &self.net_out),
            ("mem_bank", &self.mem_bank),
        ]
    }
}

/// Aggregate memory-system statistics for one simulation run.
///
/// Combines hit/miss counters, network traffic, the Figure 7 request
/// classification, the Figure 9 transparent-load breakdown, and
/// self-invalidation activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// Accesses that hit in a valid, visible L2 line (after missing L1).
    pub l2_hits: u64,
    /// Accesses that missed the L2 and started (or merged into) a
    /// directory transaction.
    pub l2_misses: u64,
    /// Misses merged into an already-outstanding request for the line.
    pub merged_misses: u64,
    /// Directory transactions whose home node was the requester's node.
    pub local_txns: u64,
    /// Directory transactions to a remote home.
    pub remote_txns: u64,
    /// Read transactions issued (coherent reads, by any stream).
    pub read_txns: u64,
    /// Exclusive transactions issued (read-exclusive and upgrades).
    pub excl_txns: u64,
    /// Exclusive transactions that were A-stream prefetch conversions.
    pub excl_prefetches: u64,
    /// Read transactions issued by A-streams (denominator of Figure 9).
    pub a_read_txns: u64,
    /// A-stream reads issued as transparent loads.
    pub transparent_issued: u64,
    /// Transparent loads answered with a transparent (possibly stale) reply.
    pub transparent_replies: u64,
    /// Transparent loads upgraded to normal loads at the directory.
    pub upgraded_replies: u64,
    /// Self-invalidation hints delivered to exclusive owners.
    pub si_hints: u64,
    /// Lines invalidated by self-invalidation (migratory policy).
    pub si_invalidations: u64,
    /// Lines written back and downgraded by self-invalidation
    /// (producer-consumer policy).
    pub si_downgrades: u64,
    /// Dirty writebacks (evictions and SI).
    pub writebacks: u64,
    /// Invalidation messages sent by the directory.
    pub invalidations_sent: u64,
    /// Write transactions that had to broadcast invalidations because a
    /// limited-pointer directory entry had overflowed
    /// ([`slipstream_kernel::config::DirScheme::LimitedPointer`]). Always 0
    /// under the default full-map scheme.
    pub broadcast_invalidations: u64,
    /// 3-hop interventions (exclusive owner forwarded data).
    pub interventions: u64,
    /// Reads of detected-migratory lines granted exclusively
    /// (`MachineConfig::migratory_opt` extension).
    pub migratory_grants: u64,
    /// Interventions that found the owner already evicted (races resolved
    /// via the in-flight writeback).
    pub intervention_nacks: u64,
    /// Total network messages injected.
    pub net_messages: u64,
    /// Figure 7 classification of shared-data requests.
    pub class: RequestClass,
    /// Per-resource contention (filled in at finalize).
    pub contention: ContentionStats,
}

impl MemStats {
    /// Fold another run's (or another partition's) counters into this one.
    /// Used by the parallel engine to merge per-node partition statistics
    /// into a whole-run total.
    pub fn accumulate(&mut self, o: &MemStats) {
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.merged_misses += o.merged_misses;
        self.local_txns += o.local_txns;
        self.remote_txns += o.remote_txns;
        self.read_txns += o.read_txns;
        self.excl_txns += o.excl_txns;
        self.excl_prefetches += o.excl_prefetches;
        self.a_read_txns += o.a_read_txns;
        self.transparent_issued += o.transparent_issued;
        self.transparent_replies += o.transparent_replies;
        self.upgraded_replies += o.upgraded_replies;
        self.si_hints += o.si_hints;
        self.si_invalidations += o.si_invalidations;
        self.si_downgrades += o.si_downgrades;
        self.writebacks += o.writebacks;
        self.invalidations_sent += o.invalidations_sent;
        self.broadcast_invalidations += o.broadcast_invalidations;
        self.interventions += o.interventions;
        self.migratory_grants += o.migratory_grants;
        self.intervention_nacks += o.intervention_nacks;
        self.net_messages += o.net_messages;
        self.class.reads += o.class.reads;
        self.class.excl += o.class.excl;
        self.contention.accumulate(&o.contention);
    }

    /// Total data accesses that reached the memory system. Every access
    /// resolves as exactly one of L1 hit, L2 hit, or L2 miss (merged
    /// misses are a subset of `l2_misses`), so this is also the accounting
    /// identity the `slipstream-core` invariant tests check.
    pub fn data_accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l2_misses
    }

    /// Total classified shared-line requests (reads + exclusives, both
    /// streams) — the dynamic figure the static analyzer's request-count
    /// bounds are validated against.
    pub fn classified_total(&self) -> u64 {
        self.class.total()
    }

    /// Total self-invalidation actions taken (copies invalidated plus
    /// copies downgraded at session boundaries, §4). Zero whenever
    /// self-invalidation is off — in particular in every conventional
    /// (single/double) run, which the validation harness asserts.
    pub fn si_events(&self) -> u64 {
        self.si_invalidations + self.si_downgrades
    }

    /// Fraction of A-stream read transactions issued transparently
    /// (Figure 9's y-axis), in percent.
    pub fn transparent_pct(&self) -> f64 {
        if self.a_read_txns == 0 {
            0.0
        } else {
            100.0 * self.transparent_issued as f64 / self.a_read_txns as f64
        }
    }

    /// Of the transparent loads, the percentage answered transparently.
    pub fn transparent_reply_pct(&self) -> f64 {
        let t = self.transparent_replies + self.upgraded_replies;
        if t == 0 {
            0.0
        } else {
            100.0 * self.transparent_replies as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_percentages() {
        let mut s = MemStats::default();
        assert_eq!(s.transparent_pct(), 0.0);
        assert_eq!(s.transparent_reply_pct(), 0.0);
        s.a_read_txns = 100;
        s.transparent_issued = 27;
        s.transparent_replies = 16;
        s.upgraded_replies = 11;
        assert!((s.transparent_pct() - 27.0).abs() < 1e-9);
        assert!((s.transparent_reply_pct() - 16.0 / 27.0 * 100.0).abs() < 1e-9);
    }
}
