use slipstream_kernel::{CpuId, LineAddr, NodeId, TaskId};
use slipstream_prog::{BarrierId, EventId, LockId};

/// Which stream a processor-side request originates from.
///
/// `Solo` is a conventional task (single/double/sequential mode); it behaves
/// like an R-stream at the protocol level but is excluded from slipstream
/// request classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamRole {
    /// The unreduced, architecturally correct task.
    R,
    /// The reduced, speculative advanced stream.
    A,
    /// A conventional (non-slipstream) task.
    Solo,
}

impl StreamRole {
    /// Whether this role is the advanced stream.
    #[inline]
    pub fn is_a(self) -> bool {
        matches!(self, StreamRole::A)
    }
}

/// Kinds of processor-side memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A normal load.
    Read,
    /// A store (requires ownership).
    Write,
    /// A non-binding exclusive prefetch: the A-stream's conversion of a
    /// skipped shared store (§3.3). Never blocks the issuing processor.
    ExclPrefetch,
    /// A transparent load (§4.1): may be satisfied by a possibly-stale
    /// memory copy without disturbing the exclusive owner.
    TransparentRead,
}

/// Opaque handle linking a blocking request to its eventual [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Synchronization operations, routed to the home node's sync controller
/// through the same network/DC path as coherence traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// Arrive at a barrier; completes when all participants have arrived.
    BarrierArrive(BarrierId),
    /// Request a lock; completes when granted.
    LockAcquire(LockId),
    /// Release a lock (fire-and-forget; no completion).
    LockRelease(LockId),
    /// Post an event (fire-and-forget; no completion).
    EventPost(EventId),
    /// Wait for an event post (semaphore semantics, per waiting task).
    EventWait(EventId, TaskId),
}

impl SyncOp {
    /// Whether the issuing processor blocks until a completion arrives.
    pub fn blocks(self) -> bool {
        matches!(
            self,
            SyncOp::BarrierArrive(_) | SyncOp::LockAcquire(_) | SyncOp::EventWait(..)
        )
    }
}

/// A completion delivered back to the machine loop: the blocked processor
/// identified by `cpu`/`token` may resume at the completion's event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The processor that issued the blocking request.
    pub cpu: CpuId,
    /// The token returned when the request was issued.
    pub token: Token,
}

/// Internal discrete events of the memory system. The machine loop stores
/// these in its global event queue and hands them back via
/// [`crate::MemSystem::handle_event`].
#[derive(Debug, Clone)]
pub enum MemEvent {
    /// A message has left the issuing L2 and reached its node's DC input
    /// (after the L2-to-DC bus).
    AtLocalDc(Msg),
    /// A message is at the source node's network output port.
    NetOut(Msg),
    /// A message has arrived at the destination node's network input port.
    NetIn(Msg),
    /// A message has reached the destination DC and must be served there.
    AtDestDc(Msg),
    /// DC service complete: run the protocol/sync handler.
    Handle(Msg),
    /// Memory data is ready at the home node; send the prepared reply.
    MemReady(Msg),
    /// A reply/forwarded message has crossed the bus back into the L2: fill
    /// the cache and wake waiters.
    AtL2(Msg),
    /// Process the next line in a node's self-invalidation queue.
    SiStep(NodeId),
    /// An L2-internal access (hit or grant) completes after the L2 latency.
    L2Done { cpu: CpuId, token: Token },
}

/// A protocol or synchronization message.
///
/// `src` is the node the message is currently travelling *from*, `dst` the
/// node it is travelling *to* (these are rewritten when a message is
/// forwarded).
#[derive(Debug, Clone)]
pub struct Msg {
    pub src: NodeId,
    pub dst: NodeId,
    pub kind: MsgKind,
}

/// Payloads of protocol and sync messages.
#[derive(Debug, Clone)]
pub enum MsgKind {
    // ---- processor-side requests (L2 -> home directory) ----
    /// Fetch a shared copy.
    ReadReq { line: LineAddr, from: NodeId, role: StreamRole },
    /// Fetch or upgrade to an exclusive copy. `had_shared` distinguishes an
    /// upgrade (requester holds a shared copy) from a full fetch.
    ReadExclReq { line: LineAddr, from: NodeId, role: StreamRole, had_shared: bool },
    /// A transparent load request from an A-stream.
    TransReadReq { line: LineAddr, from: NodeId },
    /// Dirty eviction (or SI invalidation) writeback.
    WritebackDirty { line: LineAddr, from: NodeId },
    /// Clean eviction notification: clears sharer and future-sharer bits.
    ReplHint { line: LineAddr, from: NodeId },
    /// SI producer-consumer action: memory updated, owner downgrades to
    /// shared but keeps its copy.
    DowngradeWb { line: LineAddr, from: NodeId },

    // ---- home directory -> caches ----
    /// Data reply from memory. `excl` grants ownership; `si_hint` tells the
    /// new owner to self-invalidate at its next sync point (§4.2).
    DataReply { line: LineAddr, to: NodeId, excl: bool, si_hint: bool },
    /// Transparent reply: a possibly-stale memory copy, A-visible only.
    TransReply { line: LineAddr, to: NodeId },
    /// Intervention: downgrade your exclusive copy, forward data to
    /// `requester`, write back to home.
    FwdRead { line: LineAddr, owner: NodeId, requester: NodeId },
    /// Intervention: invalidate your exclusive copy, forward exclusive data
    /// to `requester`, ack home.
    FwdExcl { line: LineAddr, owner: NodeId, requester: NodeId },
    /// Invalidate your shared copy and ack home.
    Inv { line: LineAddr, to: NodeId },
    /// Advise the exclusive owner that a future sharer exists (§4.2).
    SiHint { line: LineAddr, owner: NodeId },

    // ---- cache -> home / requester (transaction second halves) ----
    /// Owner's data sent directly to the requester (reply forwarding).
    FwdData { line: LineAddr, to: NodeId, excl: bool },
    /// Owner downgraded and wrote back; home adds both as sharers.
    WbShared { line: LineAddr, from: NodeId, requester: NodeId },
    /// Owner invalidated after `FwdExcl`; home records the new owner.
    TransferAck { line: LineAddr, from: NodeId, new_owner: NodeId },
    /// A sharer has invalidated its copy.
    InvAck { line: LineAddr, from: NodeId },
    /// The targeted owner no longer has the line (eviction race); home must
    /// complete the transaction from memory once the writeback lands.
    FwdNack { line: LineAddr, from: NodeId },

    // ---- synchronization ----
    /// A sync operation travelling to its home sync controller.
    SyncReq { op: SyncOp, cpu: CpuId, token: Token },
    /// A grant/release travelling back to the blocked processor.
    SyncGrant { cpu: CpuId, token: Token },
}

impl MsgKind {
    /// The cache line this message concerns, if any.
    pub fn line(&self) -> Option<LineAddr> {
        use MsgKind::*;
        match self {
            ReadReq { line, .. }
            | ReadExclReq { line, .. }
            | TransReadReq { line, .. }
            | WritebackDirty { line, .. }
            | ReplHint { line, .. }
            | DowngradeWb { line, .. }
            | DataReply { line, .. }
            | TransReply { line, .. }
            | FwdRead { line, .. }
            | FwdExcl { line, .. }
            | Inv { line, .. }
            | SiHint { line, .. }
            | FwdData { line, .. }
            | WbShared { line, .. }
            | TransferAck { line, .. }
            | InvAck { line, .. }
            | FwdNack { line, .. } => Some(*line),
            SyncReq { .. } | SyncGrant { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_op_blocking() {
        assert!(SyncOp::BarrierArrive(BarrierId(0)).blocks());
        assert!(SyncOp::LockAcquire(LockId(0)).blocks());
        assert!(SyncOp::EventWait(EventId(0), TaskId(0)).blocks());
        assert!(!SyncOp::LockRelease(LockId(0)).blocks());
        assert!(!SyncOp::EventPost(EventId(0)).blocks());
    }

    #[test]
    fn msg_line_extraction() {
        let m = MsgKind::ReadReq { line: LineAddr(7), from: NodeId(0), role: StreamRole::R };
        assert_eq!(m.line(), Some(LineAddr(7)));
        let s = MsgKind::SyncGrant { cpu: CpuId::new(NodeId(0), 0), token: Token(1) };
        assert_eq!(s.line(), None);
    }

    #[test]
    fn role_predicates() {
        assert!(StreamRole::A.is_a());
        assert!(!StreamRole::R.is_a());
        assert!(!StreamRole::Solo.is_a());
    }
}
