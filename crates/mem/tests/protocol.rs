//! Protocol-level integration tests for the memory system: Table 1
//! latencies, coherence transitions, transparent loads, self-invalidation,
//! synchronization, and request classification.

use slipstream_kernel::config::MachineConfig;
use slipstream_kernel::{Addr, CpuId, Cycle, EventQueue, NodeId};
use slipstream_mem::{
    Access, AccessKind, Completion, HomeMap, MemEvent, MemSystem, StreamRole, SyncOp, Token,
};
use slipstream_prog::{BarrierId, LockId};

/// Tiny deterministic harness: drives the event queue to quiescence and
/// records every completion with its timestamp.
struct Harness {
    mem: MemSystem,
    q: EventQueue<MemEvent>,
    done: Vec<(Cycle, Completion)>,
}

impl Harness {
    fn new(nodes: u16) -> Harness {
        let cfg = MachineConfig::with_nodes(nodes);
        let home = HomeMap::uniform(nodes, cfg.page_bytes);
        Harness {
            mem: MemSystem::new(&cfg, home, nodes as u32),
            q: EventQueue::new(),
            done: Vec::new(),
        }
    }

    fn with_participants(nodes: u16, participants: u32) -> Harness {
        let cfg = MachineConfig::with_nodes(nodes);
        let home = HomeMap::uniform(nodes, cfg.page_bytes);
        Harness {
            mem: MemSystem::new(&cfg, home, participants),
            q: EventQueue::new(),
            done: Vec::new(),
        }
    }

    fn access(
        &mut self,
        now: u64,
        cpu: CpuId,
        role: StreamRole,
        kind: AccessKind,
        addr: u64,
    ) -> Access {
        self.mem.access(
            Cycle(now),
            cpu,
            role,
            kind,
            Addr(addr),
            true,
            false,
            &mut self.q,
        )
    }

    fn run(&mut self) {
        let mut out = Vec::new();
        while let Some((t, ev)) = self.q.pop() {
            out.clear();
            self.mem.handle_event(t, ev, &mut self.q, &mut out);
            for c in &out {
                self.done.push((t, *c));
            }
        }
    }

    fn completion_time(&self, token: Token) -> Cycle {
        self.done
            .iter()
            .find(|(_, c)| c.token == token)
            .map(|(t, _)| *t)
            .unwrap_or_else(|| panic!("no completion for {token:?}"))
    }
}

fn cpu(node: u16, core: u8) -> CpuId {
    CpuId::new(NodeId(node), core)
}

/// An address homed at node 0 (page 0 of the uniform interleave).
const LOCAL0: u64 = 0x100;
/// An address homed at node 1 (page 1).
const PAGE: u64 = 4096;

#[test]
fn local_cold_miss_is_170_cycles() {
    let mut h = Harness::new(4);
    let a = h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0);
    let tok = match a {
        Access::Pending(t) => t,
        other => panic!("expected pending, got {other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(tok), Cycle(170));
    assert_eq!(h.mem.stats().local_txns, 1);
    h.mem.check_quiescent().expect("quiescent");
}

#[test]
fn remote_cold_miss_is_290_cycles() {
    let mut h = Harness::new(4);
    // Node 0 reads an address homed at node 1.
    let a = h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Read, PAGE);
    let tok = match a {
        Access::Pending(t) => t,
        other => panic!("expected pending, got {other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(tok), Cycle(290));
    assert_eq!(h.mem.stats().remote_txns, 1);
    h.mem.check_quiescent().expect("quiescent");
}

#[test]
fn second_read_hits_l1_and_sibling_hits_l2() {
    let mut h = Harness::new(2);
    let t0 = match h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let fill = h.completion_time(t0);
    // Same CPU: L1 hit.
    let a = h.access(fill.raw(), cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0);
    assert_eq!(a, Access::HitL1);
    // Sibling CPU on the same CMP: misses L1, hits the shared L2 in 10cyc.
    let t1 = match h.access(fill.raw(), cpu(0, 1), StreamRole::Solo, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(t1), fill + Cycle(10));
    assert_eq!(h.mem.stats().l2_hits, 1);
}

#[test]
fn read_to_unowned_line_grants_shared_then_store_upgrades() {
    let mut h = Harness::new(2);
    let t0 = match h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let fill = h.completion_time(t0);
    // MSI: the read was granted shared, so a store needs an upgrade
    // transaction (no data, no invalidations: sole sharer).
    let before = h.mem.stats().excl_txns;
    let t1 = match h.access(fill.raw(), cpu(0, 0), StreamRole::Solo, AccessKind::Write, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert!(h.completion_time(t1) > fill + Cycle(10), "upgrade is a directory transaction");
    assert_eq!(h.mem.stats().excl_txns, before + 1);
    // A second store after ownership is granted hits locally.
    let own = h.completion_time(t1).raw();
    let t2 = h.access(own, cpu(0, 0), StreamRole::Solo, AccessKind::Write, LOCAL0);
    assert_eq!(t2, Access::HitL1);
}

#[test]
fn three_hop_read_intervention_downgrades_owner() {
    let mut h = Harness::new(4);
    // Node 1 takes the (node-0-homed) line exclusively.
    let t0 = match h.access(0, cpu(1, 0), StreamRole::Solo, AccessKind::Write, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let own = h.completion_time(t0);
    // Node 2 reads it: 3-hop intervention through home node 0.
    let t1 = match h.access(own.raw(), cpu(2, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let got = h.completion_time(t1);
    assert!(got > own + Cycle(290), "intervention must cost more than a plain remote miss");
    assert_eq!(h.mem.stats().interventions, 1);
    h.mem.check_quiescent().expect("quiescent");
    // After the downgrade, node 1 writing again needs an upgrade (its copy
    // is now shared).
    let before = h.mem.stats().excl_txns;
    let t2 = match h.access(got.raw(), cpu(1, 0), StreamRole::Solo, AccessKind::Write, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert!(h.completion_time(t2) > got + Cycle(100));
    assert_eq!(h.mem.stats().excl_txns, before + 1);
    assert_eq!(h.mem.stats().invalidations_sent, 1, "node 2's shared copy invalidated");
}

#[test]
fn store_to_shared_line_invalidates_all_sharers() {
    let mut h = Harness::new(4);
    // Three nodes read the line (all granted shared).
    let mut last = 0;
    for n in 0..3u16 {
        let t = match h.access(last, cpu(n, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
            Access::Pending(t) => t,
            other => panic!("{other:?}"),
        };
        h.run();
        last = h.completion_time(t).raw();
    }
    let invs_before = h.mem.stats().invalidations_sent;
    // Node 3 writes: every copy must be invalidated.
    let t = match h.access(last, cpu(3, 0), StreamRole::Solo, AccessKind::Write, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let done = h.completion_time(t).raw();
    assert!(h.mem.stats().invalidations_sent > invs_before);
    h.mem.check_quiescent().expect("quiescent");
    // All previous sharers now miss.
    let t0 = match h.access(done, cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    // Must be slower than an L2 hit: the copy is gone.
    assert!(h.completion_time(t0) > Cycle(done + 10));
}

#[test]
fn a_stream_prefetch_gives_r_stream_an_l2_hit() {
    let mut h = Harness::new(4);
    // A-stream (core 1) reads a remote line; R-stream (core 0) then hits L2.
    let ta = match h.access(0, cpu(0, 1), StreamRole::A, AccessKind::Read, PAGE) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let fill = h.completion_time(ta);
    assert_eq!(fill, Cycle(290));
    let tr = match h.access(fill.raw(), cpu(0, 0), StreamRole::R, AccessKind::Read, PAGE) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(tr), fill + Cycle(10), "prefetched line: L2 hit");
    // Classification: the A request brought data later used by R.
    h.mem.finalize();
    assert_eq!(h.mem.stats().class.reads.a_timely, 1);
}

#[test]
fn r_merging_into_outstanding_a_request_is_a_late() {
    let mut h = Harness::new(4);
    let ta = match h.access(0, cpu(0, 1), StreamRole::A, AccessKind::Read, PAGE) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    // R reads the same line 50 cycles later, while A's request is in
    // flight: the accesses merge in the MSHR.
    let tr = match h.access(50, cpu(0, 0), StreamRole::R, AccessKind::Read, PAGE) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(ta), h.completion_time(tr), "merged fills complete together");
    assert_eq!(h.mem.stats().merged_misses, 1);
    h.mem.finalize();
    assert_eq!(h.mem.stats().class.reads.a_late, 1);
    assert_eq!(h.mem.stats().class.reads.a_timely, 0);
}

#[test]
fn unused_a_prefetch_classifies_a_only() {
    let mut h = Harness::new(4);
    let ta = match h.access(0, cpu(0, 1), StreamRole::A, AccessKind::Read, PAGE) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let _ = h.completion_time(ta);
    h.mem.finalize();
    assert_eq!(h.mem.stats().class.reads.a_only, 1);
}

#[test]
fn exclusive_prefetch_is_nonblocking_and_counts() {
    let mut h = Harness::new(4);
    let a = h.access(0, cpu(0, 1), StreamRole::A, AccessKind::ExclPrefetch, PAGE);
    assert_eq!(a, Access::Accepted);
    h.run();
    assert_eq!(h.mem.stats().excl_prefetches, 1);
    // R store afterwards: local grant (the node owns the line exclusively).
    let tr = match h.access(1000, cpu(0, 0), StreamRole::R, AccessKind::Write, PAGE) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(tr), Cycle(1010));
    h.mem.finalize();
    assert_eq!(h.mem.stats().class.excl.a_timely, 1);
}

#[test]
fn transparent_load_leaves_owner_exclusive() {
    let mut h = Harness::new(4);
    // Node 1 owns the line (written, dirty).
    let t0 = match h.access(0, cpu(1, 0), StreamRole::R, AccessKind::Write, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let own = h.completion_time(t0).raw();
    // Node 2's A-stream issues a transparent load.
    let ta = match h.access(own, cpu(2, 1), StreamRole::A, AccessKind::TransparentRead, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let ttime = h.completion_time(ta).raw();
    assert_eq!(h.mem.stats().transparent_issued, 1);
    assert_eq!(h.mem.stats().transparent_replies, 1);
    assert_eq!(h.mem.stats().upgraded_replies, 0);
    assert_eq!(h.mem.stats().interventions, 0, "owner keeps its exclusive copy");
    assert_eq!(h.mem.stats().si_hints, 1);
    // Node 1 can still write with a plain L1/L2 hit (no coherence action).
    let t1 = h.access(ttime, cpu(1, 0), StreamRole::R, AccessKind::Write, LOCAL0);
    assert_eq!(t1, Access::HitL1);
    // The transparent copy is invisible to node 2's R-stream: it must fetch
    // a coherent copy (intervention).
    let tr = match h.access(ttime, cpu(2, 0), StreamRole::R, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let _ = h.completion_time(tr);
    assert_eq!(h.mem.stats().interventions, 1);
    h.mem.check_quiescent().expect("quiescent");
}

#[test]
fn transparent_load_on_idle_line_upgrades_to_normal() {
    let mut h = Harness::new(4);
    let ta = match h.access(0, cpu(2, 1), StreamRole::A, AccessKind::TransparentRead, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let fill = h.completion_time(ta).raw();
    assert_eq!(h.mem.stats().upgraded_replies, 1);
    assert_eq!(h.mem.stats().transparent_replies, 0);
    // Upgraded reply is coherent: visible to the R-stream as an L2 hit.
    let tr = match h.access(fill, cpu(2, 0), StreamRole::R, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(tr), Cycle(fill + 10));
}

#[test]
fn self_invalidation_downgrades_producer_consumer_line() {
    let mut h = Harness::new(4);
    // Node 1: producer writes the line (outside any critical section).
    let t0 = match h.access(0, cpu(1, 0), StreamRole::R, AccessKind::Write, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let own = h.completion_time(t0).raw();
    // Node 2's A-stream transparent-loads it -> SI hint to node 1.
    let ta = match h.access(own, cpu(2, 1), StreamRole::A, AccessKind::TransparentRead, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let ttime = h.completion_time(ta).raw();
    assert_eq!(h.mem.si_backlog(NodeId(1)), 1, "owner flagged the line");
    // Node 1's R-stream reaches a sync point: SI drains the queue.
    h.mem.kick_si(Cycle(ttime), NodeId(1), &mut h.q);
    h.run();
    assert_eq!(h.mem.stats().si_downgrades, 1);
    assert_eq!(h.mem.stats().si_invalidations, 0);
    h.mem.check_quiescent().expect("quiescent");
    // Now node 2's R-stream read is satisfied from memory (290), not via a
    // 3-hop intervention.
    let t_end = ttime + 10_000;
    let tr = match h.access(t_end, cpu(2, 0), StreamRole::R, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    // Home is node 0; requester node 2: full remote path, no intervention.
    assert_eq!(h.completion_time(tr), Cycle(t_end + 290));
    assert_eq!(h.mem.stats().interventions, 0);
}

#[test]
fn self_invalidation_invalidates_migratory_line() {
    let mut h = Harness::new(4);
    // Node 1 writes the line inside a critical section.
    let t0 = h.mem.access(
        Cycle(0),
        cpu(1, 0),
        StreamRole::R,
        AccessKind::Write,
        Addr(LOCAL0),
        true,
        true, // in_cs
        &mut h.q,
    );
    let t0 = match t0 {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let own = h.completion_time(t0).raw();
    let ta = match h.access(own, cpu(2, 1), StreamRole::A, AccessKind::TransparentRead, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let ttime = h.completion_time(ta).raw();
    h.mem.kick_si(Cycle(ttime), NodeId(1), &mut h.q);
    h.run();
    assert_eq!(h.mem.stats().si_invalidations, 1);
    assert_eq!(h.mem.stats().si_downgrades, 0);
    // The owner's copy is gone: its next read misses.
    let tr = match h.access(ttime + 10_000, cpu(1, 0), StreamRole::R, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert!(h.completion_time(tr).raw() > ttime + 10_000 + 100);
    h.mem.check_quiescent().expect("quiescent");
}

#[test]
fn barrier_round_trip_through_network() {
    let mut h = Harness::with_participants(4, 2);
    let b = SyncOp::BarrierArrive(BarrierId(0));
    let t0 = h.mem.sync(Cycle(0), cpu(0, 0), b, &mut h.q);
    let t1 = h.mem.sync(Cycle(500), cpu(1, 0), b, &mut h.q);
    h.run();
    let c0 = h.completion_time(t0);
    let c1 = h.completion_time(t1);
    // Both released after the last arrival, each no earlier than the
    // network round trip allows.
    assert!(c0 > Cycle(500));
    assert!(c1 > Cycle(500));
    assert!(c0.raw() >= 500 + 30, "release includes bus transit");
    h.mem.check_quiescent().expect("quiescent");
}

#[test]
fn lock_transfer_is_serialized() {
    let mut h = Harness::with_participants(4, 2);
    let acq = SyncOp::LockAcquire(LockId(3));
    let rel = SyncOp::LockRelease(LockId(3));
    let t0 = h.mem.sync(Cycle(0), cpu(0, 0), acq, &mut h.q);
    let t1 = h.mem.sync(Cycle(10), cpu(1, 0), acq, &mut h.q);
    h.run();
    let c0 = h.completion_time(t0);
    // cpu1 is still queued.
    assert!(h.done.iter().all(|(_, c)| c.token != t1));
    h.mem.sync(c0 + Cycle(100), cpu(0, 0), rel, &mut h.q);
    h.run();
    let c1 = h.completion_time(t1);
    assert!(c1 > c0 + Cycle(100));
    h.mem.sync(c1 + Cycle(10), cpu(1, 0), rel, &mut h.q);
    h.run();
    h.mem.check_quiescent().expect("quiescent");
}

#[test]
fn dirty_eviction_writes_back_and_reread_is_clean_miss() {
    // Tiny L2 (1 set would break geometry; use a 2-way 128-byte cache with
    // 64-byte lines -> 1 set... use 256B, 2-way = 2 sets).
    let mut cfg = MachineConfig::with_nodes(2);
    cfg.l2 = slipstream_kernel::config::CacheGeometry { bytes: 256, ways: 2, line_bytes: 64 };
    cfg.l1 = slipstream_kernel::config::CacheGeometry { bytes: 128, ways: 2, line_bytes: 64 };
    let home = HomeMap::uniform(2, cfg.page_bytes);
    let mut h = Harness {
        mem: MemSystem::new(&cfg, home, 2),
        q: EventQueue::new(),
        done: Vec::new(),
    };
    // Write line A (homed node 0, set 0), then read two more lines mapping
    // to set 0 to evict it.
    let la = 0x100u64; // line 4, set 0
    let lb = 0x180u64; // line 6, set 0
    let lc = 0x200u64; // line 8, set 0
    let t = match h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Write, la) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let mut now = h.completion_time(t).raw();
    for addr in [lb, lc] {
        let t = match h.access(now, cpu(0, 0), StreamRole::Solo, AccessKind::Read, addr) {
            Access::Pending(t) => t,
            other => panic!("{other:?}"),
        };
        h.run();
        now = h.completion_time(t).raw();
    }
    h.run();
    assert_eq!(h.mem.stats().writebacks, 1, "dirty line written back on eviction");
    h.mem.check_quiescent().expect("quiescent");
    // Re-reading line A misses (clean fetch from memory, no intervention).
    let t = match h.access(now + 1000, cpu(0, 0), StreamRole::Solo, AccessKind::Read, la) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    assert_eq!(h.completion_time(t), Cycle(now + 1000 + 170));
    assert_eq!(h.mem.stats().interventions, 0);
}

#[test]
fn contention_queues_at_directory() {
    let mut h = Harness::new(2);
    // Two CPUs on different nodes miss to the same home (different lines,
    // same page) at the same instant: the second is delayed by DC occupancy.
    let t0 = match h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    let t1 = match h.access(0, cpu(0, 1), StreamRole::Solo, AccessKind::Read, LOCAL0 + 64) {
        Access::Pending(t) => t,
        other => panic!("{other:?}"),
    };
    h.run();
    let c0 = h.completion_time(t0);
    let c1 = h.completion_time(t1);
    assert_eq!(c0, Cycle(170));
    assert!(c1 >= Cycle(170 + 60), "second local miss waits out the DC occupancy");
}

#[test]
fn quiescence_detects_outstanding_transactions() {
    let mut h = Harness::new(2);
    let _ = h.access(0, cpu(0, 0), StreamRole::Solo, AccessKind::Read, LOCAL0);
    // Don't run the queue: an MSHR is outstanding.
    assert!(h.mem.check_quiescent().is_err());
}

#[test]
fn migratory_detection_grants_reads_exclusively() {
    // A migratory pattern: nodes 1, 2, 3 take turns reading then writing
    // the same line. With the optimization on, after two hand-offs the
    // reads themselves receive exclusive ownership, so the writes stop
    // issuing upgrade transactions.
    let mk = |migratory: bool| {
        let mut cfg = MachineConfig::with_nodes(4);
        cfg.migratory_opt = migratory;
        let home = HomeMap::uniform(4, cfg.page_bytes);
        Harness { mem: MemSystem::new(&cfg, home, 4), q: EventQueue::new(), done: Vec::new() }
    };
    let run_pattern = |h: &mut Harness| -> u64 {
        let mut now = 0;
        for round in 0..3 {
            for n in 1..=3u16 {
                let t = match h.access(now, cpu(n, 0), StreamRole::Solo, AccessKind::Read, LOCAL0) {
                    Access::Pending(t) => t,
                    other => panic!("{other:?} in round {round}"),
                };
                h.run();
                now = h.completion_time(t).raw() + 10;
                let t = match h.access(now, cpu(n, 0), StreamRole::Solo, AccessKind::Write, LOCAL0)
                {
                    Access::Pending(t) => t,
                    Access::HitL1 => continue, // already owned: the optimization worked
                    other => panic!("{other:?}"),
                };
                h.run();
                now = h.completion_time(t).raw() + 10;
            }
        }
        now
    };
    let mut base = mk(false);
    let end_base = run_pattern(&mut base);
    let mut opt = mk(true);
    let end_opt = run_pattern(&mut opt);
    assert_eq!(base.mem.stats().migratory_grants, 0);
    assert!(opt.mem.stats().migratory_grants > 0, "pattern must be detected");
    assert!(
        opt.mem.stats().excl_txns < base.mem.stats().excl_txns,
        "migratory grants must save upgrades: {} vs {}",
        opt.mem.stats().excl_txns,
        base.mem.stats().excl_txns
    );
    assert!(end_opt < end_base, "the hand-off chain should be faster: {end_opt} vs {end_base}");
    opt.mem.check_quiescent().expect("quiescent");
}
