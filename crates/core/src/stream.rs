use slipstream_kernel::config::ArSyncMode;
use slipstream_kernel::{CpuId, Cycle, TaskId};
use slipstream_mem::{StreamRole, Token};
use slipstream_prog::{Op, ProgramIter};

use crate::report::TimeBreakdown;

/// Why a stream is blocked (used to attribute wait time to the Figure 6
/// categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Waiting on a memory-system completion.
    Mem,
    /// Waiting for a barrier release or event post.
    Barrier,
    /// Waiting for a lock grant.
    Lock,
    /// A-stream waiting for an A-R token or an R-stream input value.
    ArSync,
}

/// Execution state of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// Runnable (a `Resume` event is or will be scheduled).
    Ready,
    /// Blocked on a memory or synchronization completion with this token.
    Blocked(Token, BlockKind),
    /// A-stream waiting for an A-R token (at a session boundary).
    WaitToken,
    /// A-stream waiting for the R-stream to perform an `Input` operation.
    WaitInput,
    /// Program finished.
    Done,
}

/// One running stream: a processor executing (a copy of) a task program.
#[derive(Debug)]
pub(crate) struct StreamExec {
    pub cpu: CpuId,
    pub role: StreamRole,
    pub task: TaskId,
    /// Index of the pair record (slipstream mode only).
    pub pair: Option<usize>,
    pub iter: ProgramIter,
    pub state: StreamState,
    /// A shared-space op deferred so it executes at its exact issue time.
    pub pending_op: Option<Op>,
    /// When the current block started (for wait attribution).
    pub blocked_at: Cycle,
    /// Nesting depth of held (or, for A-streams, skipped) locks.
    pub lock_depth: u32,
    /// Number of `Input` results this A-stream has consumed.
    pub inputs_taken: u64,
    pub breakdown: TimeBreakdown,
    /// Simulated time through which `breakdown` accounts. The machine
    /// advances it at every yield, block, and wake, maintaining the
    /// invariant `breakdown.total() == frontier` whenever the stream is
    /// quiescent — so at the end of the run `total()` equals `finish`
    /// exactly (the accounting invariant tests rely on this).
    pub frontier: Cycle,
    pub finish: Option<Cycle>,
}

impl StreamExec {
    pub(crate) fn new(
        cpu: CpuId,
        role: StreamRole,
        task: TaskId,
        pair: Option<usize>,
        iter: ProgramIter,
    ) -> StreamExec {
        StreamExec {
            cpu,
            role,
            task,
            pair,
            iter,
            state: StreamState::Ready,
            pending_op: None,
            blocked_at: Cycle::ZERO,
            lock_depth: 0,
            inputs_taken: 0,
            breakdown: TimeBreakdown::default(),
            frontier: Cycle::ZERO,
            finish: None,
        }
    }

    /// Records a block starting at `at`.
    pub(crate) fn block(&mut self, token: Token, kind: BlockKind, at: Cycle) {
        debug_assert_eq!(self.state, StreamState::Ready);
        self.state = StreamState::Blocked(token, kind);
        self.blocked_at = at;
        self.frontier = at;
    }

    /// Attributes the wait ending at `now` to the proper category.
    pub(crate) fn attribute_wait(&mut self, kind: BlockKind, now: Cycle) {
        let wait = now.since(self.blocked_at).raw();
        match kind {
            BlockKind::Mem => self.breakdown.mem_stall += wait,
            BlockKind::Barrier => self.breakdown.barrier += wait,
            BlockKind::Lock => self.breakdown.lock += wait,
            BlockKind::ArSync => self.breakdown.ar_sync += wait,
        }
        self.frontier = now;
    }

    /// Whether this stream is parked at a session boundary (used by the
    /// deviation check: the A-stream "reached the end of its session").
    ///
    /// Covers both the blocked state (waiting for a token) and the woken-
    /// but-not-yet-resumed state, where the session-ending sync op is still
    /// parked in `pending_op` — otherwise an R-stream racing through an
    /// empty session at the same timestamp would misread a healthy A-stream
    /// as deviated.
    pub(crate) fn at_session_end(&self) -> bool {
        matches!(self.state, StreamState::WaitToken)
            || self.pending_op.map(|op| op.ends_session()).unwrap_or(false)
    }
}

/// State shared by an R-stream/A-stream pair (one per CMP node in
/// slipstream mode): the token-bucket semaphore of §3.2 plus session
/// counters and the input-forwarding semaphore.
#[derive(Debug)]
pub(crate) struct PairState {
    pub a_idx: usize,
    /// Tokens available to the A-stream.
    pub tokens: u32,
    /// Sessions completed by the R-stream (increments at sync exit).
    pub r_session: u64,
    /// Sessions entered by the A-stream (increments on token consumption).
    pub a_session: u64,
    /// `Input` operations completed by the R-stream.
    pub r_inputs_done: u64,
    /// The R-stream finished its program (A no longer throttled).
    pub r_done: bool,
    /// The A-R synchronization method currently in force for this pair.
    pub method: ArSyncMode,
    /// Adaptive-selection sampling state (None once locked in, or when
    /// adaptation is disabled).
    pub adapt: Option<AdaptState>,
}

/// Sampling state for dynamic A-R method selection (§6 of the paper):
/// run `adapt_window` sessions under each method, score by elapsed
/// cycles, keep the fastest.
#[derive(Debug)]
pub(crate) struct AdaptState {
    /// Index into [`ArSyncMode::ALL`] of the method being sampled.
    pub next: usize,
    /// Cycle at which the current window began.
    pub window_start: Cycle,
    /// Sessions completed in the current window.
    pub sessions: u64,
    /// `(method, cycles-per-window)` scores collected so far.
    pub scores: Vec<(ArSyncMode, u64)>,
}

impl PairState {
    pub(crate) fn new(a_idx: usize, method: ArSyncMode, adaptive: bool) -> PairState {
        PairState {
            a_idx,
            tokens: method.initial_tokens(),
            r_session: 0,
            a_session: 0,
            r_inputs_done: 0,
            r_done: false,
            method,
            adapt: if adaptive {
                Some(AdaptState {
                    next: 0,
                    window_start: Cycle::ZERO,
                    sessions: 0,
                    scores: Vec::new(),
                })
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_kernel::NodeId;
    use slipstream_prog::ProgBuilder;

    fn stream() -> StreamExec {
        let prog = ProgBuilder::new().build("empty");
        StreamExec::new(CpuId::new(NodeId(0), 0), StreamRole::R, TaskId(0), None, prog.iter())
    }

    #[test]
    fn wait_attribution_by_kind() {
        let mut s = stream();
        s.block(Token(1), BlockKind::Mem, Cycle(100));
        s.attribute_wait(BlockKind::Mem, Cycle(150));
        assert_eq!(s.breakdown.mem_stall, 50);
        s.state = StreamState::Ready;
        s.block(Token(2), BlockKind::Barrier, Cycle(200));
        s.attribute_wait(BlockKind::Barrier, Cycle(260));
        assert_eq!(s.breakdown.barrier, 60);
        s.state = StreamState::Ready;
        s.block(Token(3), BlockKind::Lock, Cycle(300));
        s.attribute_wait(BlockKind::Lock, Cycle(330));
        assert_eq!(s.breakdown.lock, 30);
    }

    #[test]
    fn session_end_detection() {
        let mut s = stream();
        assert!(!s.at_session_end());
        s.state = StreamState::WaitToken;
        assert!(s.at_session_end());
    }

    #[test]
    fn pair_state_initial_tokens() {
        let p = PairState::new(1, ArSyncMode::OneTokenLocal, false);
        assert_eq!(p.tokens, 1);
        assert_eq!(p.r_session, 0);
        assert_eq!(p.a_session, 0);
        assert!(!p.r_done);
    }
}
