//! Run-level observability: structured event traces, interval metrics, and
//! hot-line profiling.
//!
//! The memory system exposes raw protocol observations through the
//! [`MemTracer`] hook trait (in `slipstream-mem`); this module is the
//! collector side. A [`Recorder`] installed into the memory system and the
//! machine loop's own records (recoveries, session ends) feed a shared
//! [`TraceBuffer`]; the machine additionally snapshots [`IntervalSample`]s
//! at a configurable cycle interval. At the end of a run everything is
//! packaged into a [`TraceData`], which knows how to export itself as
//!
//! * JSONL event records ([`TraceData::events_jsonl`]),
//! * Chrome `trace_event` JSON viewable in Perfetto
//!   ([`TraceData::chrome_trace_json`]),
//! * interval-metrics JSONL ([`TraceData::metrics_jsonl`]), and
//! * a top-K hot-line text report ([`TraceData::hotline_report`]).
//!
//! Everything is gated by [`TraceConfig`]: with the default (disabled)
//! config no buffer is allocated, no tracer is installed, and the
//! simulation path is identical to a build without this module. Tracing is
//! purely observational — a traced run produces a bit-identical
//! [`RunResult`] to an untraced one (asserted by the `accounting`
//! integration test and the `trace` binary).
//!
//! All exports are hand-rolled JSON: the workspace deliberately has no
//! serialization dependency, and the schemas are small and flat.

use std::cell::RefCell;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

use slipstream_kernel::{CpuId, Cycle, FxHashMap, LineAddr, NodeId};
use slipstream_mem::{
    AccessKind, AccessOutcome, MemStats, MemTracer, StreamRole, SyncOp, TracePerm,
};
use slipstream_prog::{BarrierId, EventId, LockId};

use crate::report::RunResult;

/// What to collect during a run. The default is everything off; the
/// simulation then takes the exact same path as before this module existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record typed event records (misses, fills, directory transitions,
    /// SI traffic, sync operations, recoveries).
    pub events: bool,
    /// Snapshot interval metrics every this many cycles (0 = off).
    pub interval: u64,
    /// Keep per-line coherence counters for the hot-line report.
    pub hotlines: bool,
    /// Hard cap on stored event records; further events increment
    /// [`TraceData::dropped`] instead of growing the buffer, so a
    /// pathological run cannot exhaust memory — and the truncation is
    /// explicit, never silent.
    pub max_events: usize,
    /// Default number of lines shown by [`TraceData::hotline_report`].
    pub top_k: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { events: false, interval: 0, hotlines: false, max_events: 1_000_000, top_k: 32 }
    }
}

impl TraceConfig {
    /// Everything on, sampling every `interval` cycles.
    pub fn full(interval: u64) -> TraceConfig {
        TraceConfig { events: true, interval, hotlines: true, ..TraceConfig::default() }
    }

    /// Whether any collection is requested (drives tracer installation).
    pub fn enabled(&self) -> bool {
        self.events || self.interval > 0 || self.hotlines
    }
}

/// One timestamped event record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated cycle at which the event happened.
    pub t: u64,
    pub kind: TraceKind,
}

/// The typed event vocabulary. Protocol-level events come from the
/// [`Recorder`]'s [`MemTracer`] hooks; `Recovery` and `SessionEnd` come
/// from the machine loop.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// An access missed the L2 and started (or merged into) a directory
    /// transaction.
    MissStart { cpu: CpuId, role: StreamRole, kind: AccessKind, line: LineAddr, merged: bool },
    /// A fill completed at `node` (transparent fills are A-stream-only).
    Fill { node: NodeId, line: LineAddr, excl: bool, transparent: bool },
    /// The home directory's permission state changed.
    DirTransition { line: LineAddr, from: TracePerm, to: TracePerm, requester: NodeId },
    /// The directory forwarded an intervention to the exclusive owner.
    Intervention { line: LineAddr, owner: NodeId, requester: NodeId, excl: bool },
    /// An invalidation was sent to a sharer.
    Invalidation { line: LineAddr, target: NodeId },
    /// A self-invalidation hint was sent to the exclusive owner (§4.2).
    SiHint { line: LineAddr, owner: NodeId },
    /// A flagged line was processed at a sync point: invalidated
    /// (migratory) or written back and downgraded (producer-consumer).
    SiAction { node: NodeId, line: LineAddr, invalidated: bool },
    /// A transparent load was upgraded to a normal load at the directory.
    TransparentUpgrade { line: LineAddr, from: NodeId },
    /// A transparent load was answered with a (possibly stale) memory copy.
    TransparentReply { line: LineAddr, from: NodeId },
    /// A dirty writeback arrived at the home.
    Writeback { line: LineAddr, from: NodeId },
    /// The sync controller handled an operation, releasing `granted`
    /// blocked processors (barrier release = the arrival with granted > 0).
    Sync { cpu: CpuId, op: SyncOp, granted: u32 },
    /// A deviated A-stream was killed and reforked (§3.2). Sessions are
    /// the pre-recovery counters.
    Recovery { node: NodeId, r_session: u64, a_session: u64 },
    /// An R-stream finished a session (barrier or event-wait reached).
    SessionEnd { node: NodeId, session: u64 },
}

/// Cheap per-outcome access counters, kept for *every* access (unlike
/// event records, which cover only misses). These power the accounting
/// identity checks: `l1_hits + l2_hits + miss_new + miss_merged` must
/// equal the memory system's own counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub miss_new: u64,
    pub miss_merged: u64,
    pub prefetch_issued: u64,
    pub prefetch_dropped: u64,
}

impl AccessCounts {
    /// Total data accesses (prefetches are extra traffic, not accesses).
    pub fn data_accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.miss_new + self.miss_merged
    }
}

/// Per-line coherence activity (the hot-line profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineCounters {
    /// L2 misses (new + merged) for the line.
    pub misses: u64,
    /// Interventions forwarded to an exclusive owner of the line.
    pub interventions: u64,
    /// Invalidations sent to sharers of the line.
    pub invalidations: u64,
    /// Self-invalidation activity: hints delivered plus lines processed.
    pub si: u64,
}

impl LineCounters {
    /// Total activity, the hot-line ranking key.
    pub fn total(&self) -> u64 {
        self.misses + self.interventions + self.invalidations + self.si
    }
}

/// The shared collection buffer. One lives behind an `Rc<RefCell<..>>`,
/// cloned between the [`Recorder`] installed in the memory system and the
/// machine loop (the simulation is single-threaded, so the `RefCell` is
/// never contended).
#[derive(Debug)]
pub struct TraceBuffer {
    events_on: bool,
    hotlines_on: bool,
    max_events: usize,
    /// Stored event records, in simulation order.
    pub records: Vec<TraceRecord>,
    /// Events discarded after `max_events` was reached.
    pub dropped: u64,
    /// Per-outcome access counters (always collected; they are six adds).
    pub counts: AccessCounts,
    /// Per-line coherence counters (only when `hotlines` is on).
    pub hot: FxHashMap<u64, LineCounters>,
}

impl TraceBuffer {
    pub fn new(cfg: &TraceConfig) -> TraceBuffer {
        TraceBuffer {
            events_on: cfg.events,
            hotlines_on: cfg.hotlines,
            max_events: cfg.max_events,
            records: Vec::new(),
            dropped: 0,
            counts: AccessCounts::default(),
            hot: FxHashMap::default(),
        }
    }

    /// Appends an event record, honoring the cap.
    pub fn push(&mut self, t: Cycle, kind: TraceKind) {
        if !self.events_on {
            return;
        }
        if self.records.len() >= self.max_events {
            self.dropped += 1;
        } else {
            self.records.push(TraceRecord { t: t.raw(), kind });
        }
    }

    fn hot_line(&mut self, line: LineAddr) -> Option<&mut LineCounters> {
        if self.hotlines_on {
            Some(self.hot.entry(line.0).or_default())
        } else {
            None
        }
    }
}

/// The [`MemTracer`] implementation: forwards protocol observations into a
/// shared [`TraceBuffer`].
pub struct Recorder {
    buf: Rc<RefCell<TraceBuffer>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately shallow: the buffer can hold a million records and
        // the Machine derives Debug through this type.
        let b = self.buf.borrow();
        write!(f, "Recorder({} records, {} dropped)", b.records.len(), b.dropped)
    }
}

impl Recorder {
    pub fn new(buf: Rc<RefCell<TraceBuffer>>) -> Recorder {
        Recorder { buf }
    }
}

impl MemTracer for Recorder {
    fn access(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        kind: AccessKind,
        line: LineAddr,
        outcome: AccessOutcome,
    ) {
        let mut b = self.buf.borrow_mut();
        match outcome {
            AccessOutcome::L1Hit => b.counts.l1_hits += 1,
            AccessOutcome::L2Hit => b.counts.l2_hits += 1,
            AccessOutcome::MissNew => b.counts.miss_new += 1,
            AccessOutcome::MissMerged => b.counts.miss_merged += 1,
            AccessOutcome::PrefetchIssued => b.counts.prefetch_issued += 1,
            AccessOutcome::PrefetchDropped => b.counts.prefetch_dropped += 1,
        }
        let merged = match outcome {
            AccessOutcome::MissNew => false,
            AccessOutcome::MissMerged => true,
            _ => return, // hits and prefetch decisions are counters only
        };
        if let Some(h) = b.hot_line(line) {
            h.misses += 1;
        }
        b.push(now, TraceKind::MissStart { cpu, role, kind, line, merged });
    }

    fn fill(&mut self, now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool) {
        self.buf.borrow_mut().push(now, TraceKind::Fill { node, line, excl, transparent });
    }

    fn dir_transition(
        &mut self,
        now: Cycle,
        line: LineAddr,
        from: &TracePerm,
        to: &TracePerm,
        requester: NodeId,
    ) {
        self.buf.borrow_mut().push(
            now,
            TraceKind::DirTransition { line, from: from.clone(), to: to.clone(), requester },
        );
    }

    fn intervention(
        &mut self,
        now: Cycle,
        line: LineAddr,
        owner: NodeId,
        requester: NodeId,
        excl: bool,
    ) {
        let mut b = self.buf.borrow_mut();
        if let Some(h) = b.hot_line(line) {
            h.interventions += 1;
        }
        b.push(now, TraceKind::Intervention { line, owner, requester, excl });
    }

    fn invalidation(&mut self, now: Cycle, line: LineAddr, target: NodeId) {
        let mut b = self.buf.borrow_mut();
        if let Some(h) = b.hot_line(line) {
            h.invalidations += 1;
        }
        b.push(now, TraceKind::Invalidation { line, target });
    }

    fn si_hint(&mut self, now: Cycle, line: LineAddr, owner: NodeId) {
        let mut b = self.buf.borrow_mut();
        if let Some(h) = b.hot_line(line) {
            h.si += 1;
        }
        b.push(now, TraceKind::SiHint { line, owner });
    }

    fn si_action(&mut self, now: Cycle, node: NodeId, line: LineAddr, invalidated: bool) {
        let mut b = self.buf.borrow_mut();
        if let Some(h) = b.hot_line(line) {
            h.si += 1;
        }
        b.push(now, TraceKind::SiAction { node, line, invalidated });
    }

    fn transparent_upgrade(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        self.buf.borrow_mut().push(now, TraceKind::TransparentUpgrade { line, from });
    }

    fn transparent_reply(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        self.buf.borrow_mut().push(now, TraceKind::TransparentReply { line, from });
    }

    fn writeback(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        self.buf.borrow_mut().push(now, TraceKind::Writeback { line, from });
    }

    fn sync_event(&mut self, now: Cycle, cpu: CpuId, op: SyncOp, granted: u32) {
        self.buf.borrow_mut().push(now, TraceKind::Sync { cpu, op, granted });
    }
}

/// A periodic snapshot of run state. Counters are *cumulative*; the
/// metrics exporter turns them into deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Sample boundary (cycles).
    pub cycle: u64,
    /// Cumulative memory-system statistics at the boundary.
    pub stats: MemStats,
    /// Per-pair run-ahead distance in sessions (`a_session - r_session`);
    /// negative means the A-stream has fallen behind.
    pub run_ahead: Vec<i64>,
    /// Per-pair A-R tokens available.
    pub tokens: Vec<u32>,
    /// Pending events in the global queue.
    pub queue_len: usize,
    /// Cumulative host events processed.
    pub host_events: u64,
    /// Cumulative A-stream recoveries.
    pub recoveries: u64,
}

/// Live collection state carried by the machine during a traced run.
#[derive(Debug)]
pub(crate) struct TraceState {
    pub(crate) cfg: TraceConfig,
    pub(crate) buf: Rc<RefCell<TraceBuffer>>,
    pub(crate) next_sample: Cycle,
    pub(crate) samples: Vec<IntervalSample>,
}

impl TraceState {
    /// Creates the state plus the [`Recorder`] to install into the memory
    /// system (both share one buffer).
    pub(crate) fn new(cfg: TraceConfig) -> (TraceState, Recorder) {
        let buf = Rc::new(RefCell::new(TraceBuffer::new(&cfg)));
        let recorder = Recorder::new(buf.clone());
        let first = if cfg.interval > 0 { Cycle(cfg.interval) } else { Cycle(u64::MAX) };
        (TraceState { cfg, buf, next_sample: first, samples: Vec::new() }, recorder)
    }
}

/// Everything collected during one traced run, with the exporters.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// The configuration the run was traced with.
    pub config: TraceConfig,
    /// Event records in simulation order.
    pub records: Vec<TraceRecord>,
    /// Events discarded after the `max_events` cap.
    pub dropped: u64,
    /// Per-outcome access counters.
    pub counts: AccessCounts,
    /// Per-line counters, sorted by total activity (descending), line
    /// address breaking ties — deterministic across runs.
    pub hot: Vec<(u64, LineCounters)>,
    /// Interval snapshots (includes one final sample at the end of run).
    pub samples: Vec<IntervalSample>,
    /// Events pushed onto the global queue over the run.
    pub queue_total_pushed: u64,
    /// Peak global queue depth.
    pub queue_high_water: usize,
    /// The run's end-to-end execution time.
    pub end_cycle: u64,
}

impl TraceData {
    pub(crate) fn assemble(
        cfg: TraceConfig,
        buf: TraceBuffer,
        samples: Vec<IntervalSample>,
        queue_total_pushed: u64,
        queue_high_water: usize,
        end_cycle: u64,
    ) -> TraceData {
        let mut hot: Vec<(u64, LineCounters)> = buf.hot.into_iter().collect();
        hot.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(&b.0)));
        TraceData {
            config: cfg,
            records: buf.records,
            dropped: buf.dropped,
            counts: buf.counts,
            hot,
            samples,
            queue_total_pushed,
            queue_high_water,
            end_cycle,
        }
    }

    /// One JSON object per line, one line per event record.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            record_json(&mut out, r);
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (the "JSON Array Format" with metadata),
    /// loadable in Perfetto / `chrome://tracing`. Timestamps are simulated
    /// cycles reported in the `ts` microsecond field: 1 µs on the timeline
    /// reads as 1 cycle.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 160 + 4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push_str(",\n");
            }
        };
        // Name the processes: one per node the events mention.
        let mut nodes: Vec<u16> = self
            .records
            .iter()
            .map(|r| chrome_pid(&r.kind))
            .chain(self.samples.iter().flat_map(|_| [0u16]))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        for n in nodes {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            );
        }
        for r in &self.records {
            sep(&mut out);
            let pid = chrome_pid(&r.kind);
            let tid = chrome_tid(&r.kind);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\
                 \"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":",
                event_name(&r.kind),
                event_category(&r.kind),
                r.t,
            );
            args_json(&mut out, &r.kind);
            out.push('}');
        }
        // Counter tracks from the interval samples (pid 0, whole machine).
        let mut prev: Option<&IntervalSample> = None;
        for s in &self.samples {
            let d = |cur: u64, f: fn(&MemStats) -> u64| {
                cur - prev.map(|p| f(&p.stats)).unwrap_or(0)
            };
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"mem\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\
                 \"l2_misses\":{},\"net_messages\":{}}}}}",
                s.cycle,
                d(s.stats.l2_misses, |m| m.l2_misses),
                d(s.stats.net_messages, |m| m.net_messages),
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"queue\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                 \"args\":{{\"pending\":{}}}}}",
                s.cycle, s.queue_len
            );
            if !s.run_ahead.is_empty() {
                sep(&mut out);
                let _ = write!(out, "{{\"name\":\"run_ahead\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{", s.cycle);
                for (i, ra) in s.run_ahead.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"pair{i}\":{ra}");
                }
                out.push_str("}}");
            }
            prev = Some(s);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Interval metrics as JSONL: one object per sample, memory counters
    /// as per-interval deltas, run state as point-in-time values.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 256);
        let mut prev: Option<&IntervalSample> = None;
        for s in &self.samples {
            let d = |f: fn(&MemStats) -> u64| {
                f(&s.stats) - prev.map(|p| f(&p.stats)).unwrap_or(0)
            };
            let _ = write!(
                out,
                "{{\"cycle\":{},\"l1_hits\":{},\"l2_hits\":{},\"l2_misses\":{},\
                 \"merged_misses\":{},\"net_messages\":{},\"writebacks\":{},\
                 \"invalidations\":{},\"interventions\":{},\"si_hints\":{},\
                 \"si_invalidations\":{},\"si_downgrades\":{},\"transparent_issued\":{},\
                 \"queue_len\":{},\"host_events\":{},\"recoveries\":{}",
                s.cycle,
                d(|m| m.l1_hits),
                d(|m| m.l2_hits),
                d(|m| m.l2_misses),
                d(|m| m.merged_misses),
                d(|m| m.net_messages),
                d(|m| m.writebacks),
                d(|m| m.invalidations_sent),
                d(|m| m.interventions),
                d(|m| m.si_hints),
                d(|m| m.si_invalidations),
                d(|m| m.si_downgrades),
                d(|m| m.transparent_issued),
                s.queue_len,
                s.host_events,
                s.recoveries,
            );
            out.push_str(",\"run_ahead\":[");
            for (i, ra) in s.run_ahead.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{ra}");
            }
            out.push_str("],\"tokens\":[");
            for (i, t) in s.tokens.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{t}");
            }
            out.push_str("]}\n");
            prev = Some(s);
        }
        out
    }

    /// Human-readable top-`k` hot-line report (`k = 0` uses the config's
    /// `top_k`).
    pub fn hotline_report(&self, k: usize) -> String {
        let k = if k == 0 { self.config.top_k } else { k };
        let shown = k.min(self.hot.len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hot lines: top {} of {} tracked, ranked by total coherence activity",
            shown,
            self.hot.len()
        );
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>10} {:>12} {:>6} {:>8}",
            "line", "misses", "intervene", "invalidate", "si", "total"
        );
        for (line, c) in self.hot.iter().take(k) {
            let _ = writeln!(
                out,
                "{:<#18x} {:>8} {:>10} {:>12} {:>6} {:>8}",
                line,
                c.misses,
                c.interventions,
                c.invalidations,
                c.si,
                c.total()
            );
        }
        out
    }
}

fn chrome_pid(k: &TraceKind) -> u16 {
    match *k {
        TraceKind::MissStart { cpu, .. } | TraceKind::Sync { cpu, .. } => cpu.node().0,
        TraceKind::Fill { node, .. }
        | TraceKind::SiAction { node, .. }
        | TraceKind::Recovery { node, .. }
        | TraceKind::SessionEnd { node, .. } => node.0,
        TraceKind::DirTransition { requester, .. } => requester.0,
        TraceKind::Intervention { owner, .. } | TraceKind::SiHint { owner, .. } => owner.0,
        TraceKind::Invalidation { target, .. } => target.0,
        TraceKind::TransparentUpgrade { from, .. }
        | TraceKind::TransparentReply { from, .. }
        | TraceKind::Writeback { from, .. } => from.0,
    }
}

fn chrome_tid(k: &TraceKind) -> u32 {
    match *k {
        TraceKind::MissStart { cpu, .. } | TraceKind::Sync { cpu, .. } => cpu.core() as u32,
        _ => 0,
    }
}

fn event_name(k: &TraceKind) -> &'static str {
    match k {
        TraceKind::MissStart { .. } => "miss",
        TraceKind::Fill { .. } => "fill",
        TraceKind::DirTransition { .. } => "dir_transition",
        TraceKind::Intervention { .. } => "intervention",
        TraceKind::Invalidation { .. } => "invalidation",
        TraceKind::SiHint { .. } => "si_hint",
        TraceKind::SiAction { .. } => "si_action",
        TraceKind::TransparentUpgrade { .. } => "transparent_upgrade",
        TraceKind::TransparentReply { .. } => "transparent_reply",
        TraceKind::Writeback { .. } => "writeback",
        TraceKind::Sync { op, .. } => sync_op_parts(*op).0,
        TraceKind::Recovery { .. } => "recovery",
        TraceKind::SessionEnd { .. } => "session_end",
    }
}

fn event_category(k: &TraceKind) -> &'static str {
    match k {
        TraceKind::MissStart { .. } | TraceKind::Fill { .. } => "cache",
        TraceKind::DirTransition { .. }
        | TraceKind::Intervention { .. }
        | TraceKind::Invalidation { .. }
        | TraceKind::Writeback { .. } => "directory",
        TraceKind::SiHint { .. }
        | TraceKind::SiAction { .. }
        | TraceKind::TransparentUpgrade { .. }
        | TraceKind::TransparentReply { .. } => "slipstream",
        TraceKind::Sync { .. } => "sync",
        TraceKind::Recovery { .. } | TraceKind::SessionEnd { .. } => "runtime",
    }
}

fn role_str(r: StreamRole) -> &'static str {
    match r {
        StreamRole::A => "A",
        StreamRole::R => "R",
        StreamRole::Solo => "solo",
    }
}

fn access_kind_str(k: AccessKind) -> &'static str {
    match k {
        AccessKind::Read => "read",
        AccessKind::TransparentRead => "trans_read",
        AccessKind::Write => "write",
        AccessKind::ExclPrefetch => "excl_prefetch",
    }
}

fn sync_op_parts(op: SyncOp) -> (&'static str, u64) {
    match op {
        SyncOp::BarrierArrive(BarrierId(i)) => ("barrier_arrive", i as u64),
        SyncOp::LockAcquire(LockId(i)) => ("lock_acquire", i as u64),
        SyncOp::LockRelease(LockId(i)) => ("lock_release", i as u64),
        SyncOp::EventPost(EventId(i)) => ("event_post", i as u64),
        SyncOp::EventWait(EventId(i), _) => ("event_wait", i as u64),
    }
}

fn perm_json(out: &mut String, p: &TracePerm) {
    match p {
        TracePerm::Uncached => out.push_str("{\"state\":\"uncached\"}"),
        TracePerm::Shared { sharers, overflow } => {
            // Compatibility path: the historical format was an integer
            // bit-mask, kept whenever every sharer index fits in 128 bits;
            // larger machines emit an explicit node-id list.
            match sharers.as_mask() {
                Some(mask) => {
                    let _ = write!(out, "{{\"state\":\"shared\",\"sharers\":{mask}");
                }
                None => {
                    out.push_str("{\"state\":\"shared\",\"sharer_list\":[");
                    for (i, n) in sharers.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", n.0);
                    }
                    out.push(']');
                }
            }
            if *overflow {
                out.push_str(",\"overflow\":true");
            }
            out.push('}');
        }
        TracePerm::Excl { owner } => {
            let _ = write!(out, "{{\"state\":\"excl\",\"owner\":{}}}", owner.0);
        }
    }
}

/// The event's payload fields, as one JSON object (shared by the JSONL and
/// Chrome exporters).
fn args_json(out: &mut String, k: &TraceKind) {
    match k {
        TraceKind::MissStart { cpu, role, kind, line, merged } => {
            let _ = write!(
                out,
                "{{\"node\":{},\"core\":{},\"role\":\"{}\",\"kind\":\"{}\",\
                 \"line\":{},\"merged\":{}}}",
                cpu.node().0,
                cpu.core(),
                role_str(*role),
                access_kind_str(*kind),
                line.0,
                merged
            );
        }
        TraceKind::Fill { node, line, excl, transparent } => {
            let _ = write!(
                out,
                "{{\"node\":{},\"line\":{},\"excl\":{excl},\"transparent\":{transparent}}}",
                node.0, line.0
            );
        }
        TraceKind::DirTransition { line, from, to, requester } => {
            let _ = write!(out, "{{\"line\":{},\"requester\":{},\"from\":", line.0, requester.0);
            perm_json(out, from);
            out.push_str(",\"to\":");
            perm_json(out, to);
            out.push('}');
        }
        TraceKind::Intervention { line, owner, requester, excl } => {
            let _ = write!(
                out,
                "{{\"line\":{},\"owner\":{},\"requester\":{},\"excl\":{excl}}}",
                line.0, owner.0, requester.0
            );
        }
        TraceKind::Invalidation { line, target } => {
            let _ = write!(out, "{{\"line\":{},\"target\":{}}}", line.0, target.0);
        }
        TraceKind::SiHint { line, owner } => {
            let _ = write!(out, "{{\"line\":{},\"owner\":{}}}", line.0, owner.0);
        }
        TraceKind::SiAction { node, line, invalidated } => {
            let _ = write!(
                out,
                "{{\"node\":{},\"line\":{},\"invalidated\":{invalidated}}}",
                node.0, line.0
            );
        }
        TraceKind::TransparentUpgrade { line, from } | TraceKind::TransparentReply { line, from } => {
            let _ = write!(out, "{{\"line\":{},\"node\":{}}}", line.0, from.0);
        }
        TraceKind::Writeback { line, from } => {
            let _ = write!(out, "{{\"line\":{},\"from\":{}}}", line.0, from.0);
        }
        TraceKind::Sync { cpu, op, granted } => {
            let (_, id) = sync_op_parts(*op);
            let _ = write!(
                out,
                "{{\"node\":{},\"core\":{},\"id\":{id},\"granted\":{granted}}}",
                cpu.node().0,
                cpu.core()
            );
        }
        TraceKind::Recovery { node, r_session, a_session } => {
            let _ = write!(
                out,
                "{{\"node\":{},\"r_session\":{r_session},\"a_session\":{a_session}}}",
                node.0
            );
        }
        TraceKind::SessionEnd { node, session } => {
            let _ = write!(out, "{{\"node\":{},\"session\":{session}}}", node.0);
        }
    }
}

fn record_json(out: &mut String, r: &TraceRecord) {
    let _ = write!(out, "{{\"t\":{},\"ev\":\"{}\",\"args\":", r.t, event_name(&r.kind));
    args_json(out, &r.kind);
    out.push('}');
}

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Hand-serializes a [`RunResult`] (breakdowns, memory statistics, request
/// classification) as one JSON object — the `inspect --json` output.
pub fn run_result_json(r: &RunResult) -> String {
    let mut out = String::with_capacity(1024 + r.streams.len() * 192);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"mode\":\"{}\",\"nodes\":{},\"tasks\":{},\
         \"exec_cycles\":{},\"recoveries\":{},\"host_events\":{},\"streams\":[",
        escape_json(&r.name),
        r.mode,
        r.nodes,
        r.tasks,
        r.exec_cycles,
        r.recoveries,
        r.host_events
    );
    for (i, s) in r.streams.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let b = s.breakdown;
        let _ = write!(
            out,
            "{{\"node\":{},\"core\":{},\"role\":\"{}\",\"task\":{},\"finish\":{},\
             \"breakdown\":{{\"busy\":{},\"mem_stall\":{},\"barrier\":{},\"lock\":{},\
             \"ar_sync\":{},\"total\":{}}}}}",
            s.cpu.node().0,
            s.cpu.core(),
            role_str(s.role),
            s.task.0,
            s.finish,
            b.busy,
            b.mem_stall,
            b.barrier,
            b.lock,
            b.ar_sync,
            b.total()
        );
    }
    out.push_str("],\"mem\":{");
    let m = &r.mem;
    let _ = write!(
        out,
        "\"l1_hits\":{},\"l2_hits\":{},\"l2_misses\":{},\"merged_misses\":{},\
         \"data_accesses\":{},\"local_txns\":{},\"remote_txns\":{},\"read_txns\":{},\
         \"excl_txns\":{},\"excl_prefetches\":{},\"a_read_txns\":{},\
         \"transparent_issued\":{},\"transparent_replies\":{},\"upgraded_replies\":{},\
         \"si_hints\":{},\"si_invalidations\":{},\"si_downgrades\":{},\"writebacks\":{},\
         \"invalidations_sent\":{},\"interventions\":{},\"migratory_grants\":{},\
         \"intervention_nacks\":{},\"net_messages\":{}",
        m.l1_hits,
        m.l2_hits,
        m.l2_misses,
        m.merged_misses,
        m.data_accesses(),
        m.local_txns,
        m.remote_txns,
        m.read_txns,
        m.excl_txns,
        m.excl_prefetches,
        m.a_read_txns,
        m.transparent_issued,
        m.transparent_replies,
        m.upgraded_replies,
        m.si_hints,
        m.si_invalidations,
        m.si_downgrades,
        m.writebacks,
        m.invalidations_sent,
        m.interventions,
        m.migratory_grants,
        m.intervention_nacks,
        m.net_messages
    );
    let class = |out: &mut String, c: &slipstream_mem::ClassCounts| {
        let _ = write!(
            out,
            "{{\"a_timely\":{},\"a_late\":{},\"a_only\":{},\
             \"r_timely\":{},\"r_late\":{},\"r_only\":{}}}",
            c.a_timely, c.a_late, c.a_only, c.r_timely, c.r_late, c.r_only
        );
    };
    out.push_str(",\"class\":{\"reads\":");
    class(&mut out, &m.class.reads);
    out.push_str(",\"excl\":");
    class(&mut out, &m.class.excl);
    out.push('}');
    // Contention-server occupancy, summed over nodes; utilization is
    // against exec_cycles * nodes (one server instance per node).
    out.push_str(",\"contention\":{");
    let total = r.exec_cycles.saturating_mul(r.nodes as u64);
    for (i, (name, u)) in m.contention.named().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{name}\":{{\"busy_cycles\":{},\"jobs\":{},\"wait_cycles\":{},\
             \"utilization\":{:.4}}}",
            u.busy_cycles,
            u.jobs,
            u.wait_cycles,
            u.utilization(total)
        );
    }
    out.push_str("}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let cfg = TraceConfig::default();
        assert!(!cfg.enabled());
        assert!(TraceConfig { events: true, ..cfg }.enabled());
        assert!(TraceConfig { interval: 100, ..cfg }.enabled());
        assert!(TraceConfig { hotlines: true, ..cfg }.enabled());
        assert!(TraceConfig::full(1000).enabled());
    }

    #[test]
    fn buffer_caps_events_and_counts_drops() {
        let cfg = TraceConfig { events: true, max_events: 2, ..TraceConfig::default() };
        let mut buf = TraceBuffer::new(&cfg);
        for i in 0..5u64 {
            buf.push(Cycle(i), TraceKind::Writeback { line: LineAddr(i), from: NodeId(0) });
        }
        assert_eq!(buf.records.len(), 2);
        assert_eq!(buf.dropped, 3);
    }

    #[test]
    fn buffer_ignores_events_when_off() {
        let cfg = TraceConfig { hotlines: true, ..TraceConfig::default() };
        let mut buf = TraceBuffer::new(&cfg);
        buf.push(Cycle(1), TraceKind::Writeback { line: LineAddr(1), from: NodeId(0) });
        assert!(buf.records.is_empty());
        assert_eq!(buf.dropped, 0);
    }

    #[test]
    fn recorder_counts_accesses_and_profiles_lines() {
        let cfg = TraceConfig { events: true, hotlines: true, ..TraceConfig::default() };
        let buf = Rc::new(RefCell::new(TraceBuffer::new(&cfg)));
        let mut rec = Recorder::new(buf.clone());
        let cpu = CpuId::new(NodeId(1), 0);
        rec.access(Cycle(5), cpu, StreamRole::R, AccessKind::Read, LineAddr(7), AccessOutcome::L1Hit);
        rec.access(Cycle(6), cpu, StreamRole::R, AccessKind::Read, LineAddr(7), AccessOutcome::MissNew);
        rec.access(Cycle(7), cpu, StreamRole::A, AccessKind::Read, LineAddr(7), AccessOutcome::MissMerged);
        rec.intervention(Cycle(8), LineAddr(7), NodeId(0), NodeId(1), true);
        let b = buf.borrow();
        assert_eq!(b.counts.l1_hits, 1);
        assert_eq!(b.counts.miss_new, 1);
        assert_eq!(b.counts.miss_merged, 1);
        assert_eq!(b.counts.data_accesses(), 3);
        // Only the two misses and the intervention become event records.
        assert_eq!(b.records.len(), 3);
        let h = b.hot[&7];
        assert_eq!(h.misses, 2);
        assert_eq!(h.interventions, 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn hot_lines_sort_deterministically() {
        let data = TraceData::assemble(
            TraceConfig::default(),
            {
                let cfg = TraceConfig { hotlines: true, ..TraceConfig::default() };
                let mut buf = TraceBuffer::new(&cfg);
                buf.hot.insert(10, LineCounters { misses: 1, ..Default::default() });
                buf.hot.insert(3, LineCounters { misses: 5, ..Default::default() });
                buf.hot.insert(7, LineCounters { misses: 1, ..Default::default() });
                buf
            },
            Vec::new(),
            0,
            0,
            0,
        );
        let lines: Vec<u64> = data.hot.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![3, 7, 10]); // busiest first, then by address
        let report = data.hotline_report(2);
        assert!(report.contains("top 2 of 3"));
    }

    #[test]
    fn exporters_emit_parseable_shapes() {
        let cfg = TraceConfig::full(100);
        let mut buf = TraceBuffer::new(&cfg);
        buf.push(
            Cycle(1),
            TraceKind::MissStart {
                cpu: CpuId::new(NodeId(0), 1),
                role: StreamRole::A,
                kind: AccessKind::TransparentRead,
                line: LineAddr(42),
                merged: false,
            },
        );
        buf.push(
            Cycle(2),
            TraceKind::DirTransition {
                line: LineAddr(42),
                from: TracePerm::Uncached,
                to: TracePerm::Excl { owner: NodeId(1) },
                requester: NodeId(1),
            },
        );
        buf.push(
            Cycle(3),
            TraceKind::Sync {
                cpu: CpuId::new(NodeId(0), 0),
                op: SyncOp::BarrierArrive(BarrierId(2)),
                granted: 4,
            },
        );
        let sample = IntervalSample {
            cycle: 100,
            stats: MemStats { l2_misses: 9, ..Default::default() },
            run_ahead: vec![2, -1],
            tokens: vec![1, 0],
            queue_len: 5,
            host_events: 123,
            recoveries: 0,
        };
        let data = TraceData::assemble(cfg, buf, vec![sample], 1000, 32, 5000);

        let jsonl = data.events_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"ev\":\"miss\""));
        assert!(jsonl.contains("\"kind\":\"trans_read\""));
        assert!(jsonl.contains("\"ev\":\"barrier_arrive\""));
        assert!(jsonl.contains("\"granted\":4"));

        let chrome = data.chrome_trace_json();
        assert!(chrome.starts_with('{') && chrome.trim_end().ends_with('}'));
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"M\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"ph\":\"C\""));
        assert!(chrome.contains("\"pair0\":2"));
        // Balanced braces is a cheap proxy for well-formedness (no strings
        // in the output contain braces).
        let opens = chrome.matches('{').count();
        let closes = chrome.matches('}').count();
        assert_eq!(opens, closes);

        let metrics = data.metrics_jsonl();
        assert_eq!(metrics.lines().count(), 1);
        assert!(metrics.contains("\"l2_misses\":9"));
        assert!(metrics.contains("\"run_ahead\":[2,-1]"));
    }

    #[test]
    fn metrics_deltas_subtract_previous_sample() {
        let cfg = TraceConfig { interval: 10, ..TraceConfig::default() };
        let mk = |cycle, misses| IntervalSample {
            cycle,
            stats: MemStats { l2_misses: misses, ..Default::default() },
            run_ahead: vec![],
            tokens: vec![],
            queue_len: 0,
            host_events: 0,
            recoveries: 0,
        };
        let data = TraceData::assemble(
            cfg,
            TraceBuffer::new(&cfg),
            vec![mk(10, 4), mk(20, 10)],
            0,
            0,
            20,
        );
        let metrics = data.metrics_jsonl();
        let lines: Vec<&str> = metrics.lines().collect();
        assert!(lines[0].contains("\"l2_misses\":4"));
        assert!(lines[1].contains("\"l2_misses\":6")); // 10 - 4
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
