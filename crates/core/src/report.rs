use std::fmt;

use slipstream_kernel::config::ExecMode;
use slipstream_kernel::{CpuId, TaskId};
use slipstream_mem::{MemStats, StreamRole};

/// Where one stream's cycles went — the categories of Figure 6 of the
/// paper: busy cycles, memory stalls, and three kinds of synchronization
/// waits (barrier, lock, A-R).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeBreakdown {
    /// Executing instructions (compute + L1 hits + squashed ops).
    pub busy: u64,
    /// Blocked on the memory system.
    pub mem_stall: u64,
    /// Waiting at barriers and event waits.
    pub barrier: u64,
    /// Waiting for lock grants.
    pub lock: u64,
    /// A-R synchronization: token waits and input waits (A-stream side).
    pub ar_sync: u64,
}

impl TimeBreakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.mem_stall + self.barrier + self.lock + self.ar_sync
    }

    /// Element-wise accumulation (for averaging across streams).
    pub fn accumulate(&mut self, other: &TimeBreakdown) {
        self.busy += other.busy;
        self.mem_stall += other.mem_stall;
        self.barrier += other.barrier;
        self.lock += other.lock;
        self.ar_sync += other.ar_sync;
    }

    /// Element-wise integer division (completes an averaging pass).
    pub fn div(&self, n: u64) -> TimeBreakdown {
        if n == 0 {
            return TimeBreakdown::default();
        }
        TimeBreakdown {
            busy: self.busy / n,
            mem_stall: self.mem_stall / n,
            barrier: self.barrier / n,
            lock: self.lock / n,
            ar_sync: self.ar_sync / n,
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "busy={} stall={} barrier={} lock={} ar={}",
            self.busy, self.mem_stall, self.barrier, self.lock, self.ar_sync
        )
    }
}

/// Final accounting for one stream (one processor's task copy).
///
/// `PartialEq` exists so tests (and the `trace` binary) can assert that a
/// traced run is bit-identical to an untraced one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamReport {
    /// The processor the stream ran on.
    pub cpu: CpuId,
    /// R-stream, A-stream, or conventional task.
    pub role: StreamRole,
    /// The parallel task this stream executed.
    pub task: TaskId,
    /// Cycle at which the stream finished its program.
    pub finish: u64,
    /// Where its cycles went.
    pub breakdown: TimeBreakdown,
}

/// The complete result of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Workload name.
    pub name: String,
    /// Execution mode of the run.
    pub mode: ExecMode,
    /// Number of CMP nodes.
    pub nodes: u16,
    /// Parallel tasks (2x nodes in double mode).
    pub tasks: usize,
    /// End-to-end execution time: the last finish among R/conventional
    /// streams (A-streams are helpers and do not define completion).
    pub exec_cycles: u64,
    /// Per-stream accounting.
    pub streams: Vec<StreamReport>,
    /// Memory-system statistics (classification, transparent loads, SI...).
    pub mem: MemStats,
    /// Number of A-stream kill/refork recoveries (§3.2).
    pub recoveries: u64,
    /// Host-side event count: discrete events the simulator processed to
    /// produce this result. Purely an observability number (events/sec in
    /// BENCH_sim.json); it has no effect on simulated time.
    pub host_events: u64,
}

impl RunResult {
    /// Average time breakdown over streams with the given role.
    pub fn avg_breakdown(&self, role: StreamRole) -> TimeBreakdown {
        let mut acc = TimeBreakdown::default();
        let mut n = 0;
        for s in &self.streams {
            if s.role == role {
                acc.accumulate(&s.breakdown);
                n += 1;
            }
        }
        acc.div(n)
    }

    /// Speedup of this run relative to a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.exec_cycles as f64 / self.exec_cycles as f64
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} mode, {} CMPs, {} tasks]: {} cycles",
            self.name, self.mode, self.nodes, self.tasks, self.exec_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_kernel::NodeId;

    #[test]
    fn breakdown_totals_and_average() {
        let a = TimeBreakdown { busy: 10, mem_stall: 20, barrier: 5, lock: 3, ar_sync: 2 };
        assert_eq!(a.total(), 40);
        let mut acc = TimeBreakdown::default();
        acc.accumulate(&a);
        acc.accumulate(&a);
        assert_eq!(acc.div(2), a);
        assert_eq!(acc.div(0), TimeBreakdown::default());
    }

    #[test]
    fn avg_breakdown_filters_by_role() {
        let mk = |role, busy| StreamReport {
            cpu: CpuId::new(NodeId(0), 0),
            role,
            task: TaskId(0),
            finish: 0,
            breakdown: TimeBreakdown { busy, ..Default::default() },
        };
        let r = RunResult {
            name: "x".into(),
            mode: ExecMode::Slipstream,
            nodes: 1,
            tasks: 1,
            exec_cycles: 100,
            streams: vec![mk(StreamRole::R, 10), mk(StreamRole::A, 50)],
            mem: MemStats::default(),
            recoveries: 0,
            host_events: 0,
        };
        assert_eq!(r.avg_breakdown(StreamRole::R).busy, 10);
        assert_eq!(r.avg_breakdown(StreamRole::A).busy, 50);
        assert_eq!(r.avg_breakdown(StreamRole::Solo).busy, 0);
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let base = RunResult {
            name: "x".into(),
            mode: ExecMode::Single,
            nodes: 1,
            tasks: 1,
            exec_cycles: 200,
            streams: vec![],
            mem: MemStats::default(),
            recoveries: 0,
            host_events: 0,
        };
        let fast = RunResult { exec_cycles: 100, mode: ExecMode::Slipstream, ..base.clone() };
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn displays_are_nonempty() {
        let b = TimeBreakdown::default();
        assert!(!b.to_string().is_empty());
    }
}
