//! Conservative parallel discrete-event execution (PDES) of one run.
//!
//! The simulated machine decomposes naturally by node: each CMP node owns
//! its two processors with their private L1s, the shared L2, the slice of
//! the directory it is home for, and its network ports. The only coupling
//! between nodes is the interconnect, and every message crossing it pays
//! at least the network traversal latency (`Latencies::net`). That fixed
//! minimum is conservative *lookahead* in the classic PDES sense: a node
//! that has processed every event before time `T` cannot receive a new
//! message that fires before `T + net`.
//!
//! The engine therefore partitions the N nodes across K worker threads
//! (one [`Machine`] per *node*, regardless of K — so results are
//! bit-identical for every K by construction) and advances them in
//! epochs:
//!
//! 1. **run** — each node processes its queue and inbox up to the epoch
//!    bound `β`, diverting cross-node `NetOut` sends into a per-node
//!    mailbox instead of the local queue;
//! 2. **merge** — each node folds the messages addressed to it into its
//!    inbox, ordered by the fixed key `(arrival, src, seq)`, and reports
//!    the earliest time it still has work at;
//! 3. **advance** — the leader takes the global minimum `m` of those
//!    times and opens the next epoch at `β' = m + W`, where the window
//!    `W ≤ net` is the lookahead. Every message diverted while running
//!    events at `t ≥ m` arrives at `t + net ≥ m + W = β'`, so no node can
//!    ever receive a message for a time it has already passed.
//!
//! When every queue and inbox is empty the run has terminated (or
//! deadlocked, which the per-node teardown reports exactly like the
//! serial loop). Private work still batches ahead of the bound inside a
//! quantum — only globally visible operations (shared accesses, sync,
//! input) are pinned to exact times, and the inline-resume gate in
//! [`Machine`] refuses to carry one past the epoch bound or past a
//! pending inbox arrival.
//!
//! Tracing and checking ride the same determinism: each node records its
//! [`MemTracer`] hook calls and machine-level events as plain data
//! ([`NodeRec`]), and after the run the driver merges all records in
//! `(time, node, capture index)` order and replays them into the real
//! recorder and/or the caller's tracer on one thread. The replayed stream
//! is identical for every K.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use slipstream_kernel::config::{ArSyncMode, ExecMode, MachineConfig};
use slipstream_kernel::{CpuId, Cycle, LineAddr, NodeId, TaskId};
use slipstream_mem::{
    AccessKind, AccessOutcome, HomeMap, MemStats, MemSystem, MemTracer, Msg, StreamRole, SyncOp,
    TracePerm,
};
use slipstream_prog::{InstanceId, Layout};

use crate::machine::Machine;
use crate::report::{RunResult, StreamReport};
use crate::runner::RunSpec;
use crate::stream::{PairState, StreamExec};
use crate::telemetry::{
    Heartbeat, Histogram, HostProfileData, QueueStats, WorkerStats,
};
use crate::trace::{IntervalSample, TraceConfig, TraceData, TraceKind, TraceState};
use crate::workload::Workload;

/// A cross-partition message in flight between two node machines.
///
/// `(at, src, seq)` is the deterministic merge key: `at` is the arrival
/// time at the destination's network input port, `src` the sending node,
/// and `seq` the sender's running send counter. Each node is simulated by
/// exactly one machine for every worker count, so the key — and with it
/// the receiver's processing order — is independent of K.
#[derive(Debug, Clone)]
pub(crate) struct WireMsg {
    /// Arrival time at the destination (`NetIn` time).
    pub at: Cycle,
    /// Sending node.
    pub src: u16,
    /// The sender's send counter at the time of the send.
    pub seq: u64,
    /// The protocol message itself.
    pub msg: Msg,
}

/// One captured [`MemTracer`] hook invocation, stored as plain data so it
/// can cross threads and be replayed later. Mirrors the trait's sixteen
/// hooks one-to-one.
#[derive(Debug, Clone)]
pub(crate) enum TraceCall {
    Access { now: Cycle, cpu: CpuId, role: StreamRole, kind: AccessKind, line: LineAddr, outcome: AccessOutcome },
    Fill { now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool },
    DirTransition { now: Cycle, line: LineAddr, from: TracePerm, to: TracePerm, requester: NodeId },
    Intervention { now: Cycle, line: LineAddr, owner: NodeId, requester: NodeId, excl: bool },
    Invalidation { now: Cycle, line: LineAddr, target: NodeId },
    SiHint { now: Cycle, line: LineAddr, owner: NodeId },
    SiAction { now: Cycle, node: NodeId, line: LineAddr, invalidated: bool },
    TransparentUpgrade { now: Cycle, line: LineAddr, from: NodeId },
    TransparentReply { now: Cycle, line: LineAddr, from: NodeId },
    Writeback { now: Cycle, line: LineAddr, from: NodeId },
    SyncEvent { now: Cycle, cpu: CpuId, op: SyncOp, granted: u32 },
    L2Evict { now: Cycle, node: NodeId, line: LineAddr, dirty: bool, transparent: bool },
    L2Invalidate { now: Cycle, node: NodeId, line: LineAddr },
    L2Downgrade { now: Cycle, node: NodeId, line: LineAddr },
    MshrAlloc { now: Cycle, node: NodeId, line: LineAddr },
    MshrFree { now: Cycle, node: NodeId, line: LineAddr },
}

impl TraceCall {
    fn at(&self) -> Cycle {
        match *self {
            TraceCall::Access { now, .. }
            | TraceCall::Fill { now, .. }
            | TraceCall::DirTransition { now, .. }
            | TraceCall::Intervention { now, .. }
            | TraceCall::Invalidation { now, .. }
            | TraceCall::SiHint { now, .. }
            | TraceCall::SiAction { now, .. }
            | TraceCall::TransparentUpgrade { now, .. }
            | TraceCall::TransparentReply { now, .. }
            | TraceCall::Writeback { now, .. }
            | TraceCall::SyncEvent { now, .. }
            | TraceCall::L2Evict { now, .. }
            | TraceCall::L2Invalidate { now, .. }
            | TraceCall::L2Downgrade { now, .. }
            | TraceCall::MshrAlloc { now, .. }
            | TraceCall::MshrFree { now, .. } => now,
        }
    }

    /// Replays the captured call into a live tracer.
    fn apply(&self, t: &mut dyn MemTracer) {
        match self {
            TraceCall::Access { now, cpu, role, kind, line, outcome } => {
                t.access(*now, *cpu, *role, *kind, *line, *outcome)
            }
            TraceCall::Fill { now, node, line, excl, transparent } => {
                t.fill(*now, *node, *line, *excl, *transparent)
            }
            TraceCall::DirTransition { now, line, from, to, requester } => {
                t.dir_transition(*now, *line, from, to, *requester)
            }
            TraceCall::Intervention { now, line, owner, requester, excl } => {
                t.intervention(*now, *line, *owner, *requester, *excl)
            }
            TraceCall::Invalidation { now, line, target } => t.invalidation(*now, *line, *target),
            TraceCall::SiHint { now, line, owner } => t.si_hint(*now, *line, *owner),
            TraceCall::SiAction { now, node, line, invalidated } => {
                t.si_action(*now, *node, *line, *invalidated)
            }
            TraceCall::TransparentUpgrade { now, line, from } => {
                t.transparent_upgrade(*now, *line, *from)
            }
            TraceCall::TransparentReply { now, line, from } => {
                t.transparent_reply(*now, *line, *from)
            }
            TraceCall::Writeback { now, line, from } => t.writeback(*now, *line, *from),
            TraceCall::SyncEvent { now, cpu, op, granted } => {
                t.sync_event(*now, *cpu, *op, *granted)
            }
            TraceCall::L2Evict { now, node, line, dirty, transparent } => {
                t.l2_evict(*now, *node, *line, *dirty, *transparent)
            }
            TraceCall::L2Invalidate { now, node, line } => t.l2_invalidate(*now, *node, *line),
            TraceCall::L2Downgrade { now, node, line } => t.l2_downgrade(*now, *node, *line),
            TraceCall::MshrAlloc { now, node, line } => t.mshr_alloc(*now, *node, *line),
            TraceCall::MshrFree { now, node, line } => t.mshr_free(*now, *node, *line),
        }
    }
}

/// One record captured on a node during parallel execution: a memory
/// tracer hook or a machine-level trace event (recovery, session end).
/// Records are merged across nodes in `(time, node, capture index)`
/// order before replay.
#[derive(Debug, Clone)]
pub(crate) enum NodeRec {
    Mem(TraceCall),
    Machine(Cycle, TraceKind),
}

impl NodeRec {
    fn at(&self) -> Cycle {
        match self {
            NodeRec::Mem(c) => c.at(),
            NodeRec::Machine(t, _) => *t,
        }
    }
}

/// A [`MemTracer`] that captures every hook as a [`TraceCall`] for later
/// single-threaded replay. `capture_access` elides the (very hot) access
/// hook when no trace recorder will consume it — the protocol checker
/// does not observe accesses.
#[derive(Debug)]
pub(crate) struct RecordingTracer {
    sink: Rc<RefCell<Vec<NodeRec>>>,
    capture_access: bool,
}

impl RecordingTracer {
    pub(crate) fn new(sink: Rc<RefCell<Vec<NodeRec>>>, capture_access: bool) -> RecordingTracer {
        RecordingTracer { sink, capture_access }
    }

    fn push(&self, call: TraceCall) {
        self.sink.borrow_mut().push(NodeRec::Mem(call));
    }
}

impl MemTracer for RecordingTracer {
    fn access(
        &mut self,
        now: Cycle,
        cpu: CpuId,
        role: StreamRole,
        kind: AccessKind,
        line: LineAddr,
        outcome: AccessOutcome,
    ) {
        if self.capture_access {
            self.push(TraceCall::Access { now, cpu, role, kind, line, outcome });
        }
    }
    fn fill(&mut self, now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool) {
        self.push(TraceCall::Fill { now, node, line, excl, transparent });
    }
    fn dir_transition(
        &mut self,
        now: Cycle,
        line: LineAddr,
        from: &TracePerm,
        to: &TracePerm,
        requester: NodeId,
    ) {
        self.push(TraceCall::DirTransition {
            now,
            line,
            from: from.clone(),
            to: to.clone(),
            requester,
        });
    }
    fn intervention(&mut self, now: Cycle, line: LineAddr, owner: NodeId, requester: NodeId, excl: bool) {
        self.push(TraceCall::Intervention { now, line, owner, requester, excl });
    }
    fn invalidation(&mut self, now: Cycle, line: LineAddr, target: NodeId) {
        self.push(TraceCall::Invalidation { now, line, target });
    }
    fn si_hint(&mut self, now: Cycle, line: LineAddr, owner: NodeId) {
        self.push(TraceCall::SiHint { now, line, owner });
    }
    fn si_action(&mut self, now: Cycle, node: NodeId, line: LineAddr, invalidated: bool) {
        self.push(TraceCall::SiAction { now, node, line, invalidated });
    }
    fn transparent_upgrade(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        self.push(TraceCall::TransparentUpgrade { now, line, from });
    }
    fn transparent_reply(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        self.push(TraceCall::TransparentReply { now, line, from });
    }
    fn writeback(&mut self, now: Cycle, line: LineAddr, from: NodeId) {
        self.push(TraceCall::Writeback { now, line, from });
    }
    fn sync_event(&mut self, now: Cycle, cpu: CpuId, op: SyncOp, granted: u32) {
        self.push(TraceCall::SyncEvent { now, cpu, op, granted });
    }
    fn l2_evict(&mut self, now: Cycle, node: NodeId, line: LineAddr, dirty: bool, transparent: bool) {
        self.push(TraceCall::L2Evict { now, node, line, dirty, transparent });
    }
    fn l2_invalidate(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.push(TraceCall::L2Invalidate { now, node, line });
    }
    fn l2_downgrade(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.push(TraceCall::L2Downgrade { now, node, line });
    }
    fn mshr_alloc(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.push(TraceCall::MshrAlloc { now, node, line });
    }
    fn mshr_free(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.push(TraceCall::MshrFree { now, node, line });
    }
}

/// One node's share of the run results, produced by
/// [`Machine::pdes_finish`] and merged by the driver in node order.
#[derive(Debug)]
pub(crate) struct NodePart {
    pub streams: Vec<StreamReport>,
    /// Final `(run_ahead, tokens)` per pair on this node.
    pub pairs: Vec<(i64, u32)>,
    pub stats: MemStats,
    pub recoveries: u64,
    pub host_events: u64,
    pub queue_pushed: u64,
    pub queue_high_water: usize,
    pub queue_heap_pushes: u64,
    pub records: Vec<NodeRec>,
}

/// Per-worker host-profiling state ([`crate::telemetry`]): wall-clock
/// busy/wait split, per-epoch event and outbox histograms, and
/// queue-occupancy samples taken at merge barriers. Exists only when
/// `RunSpec::host` is on; the unprofiled worker loop pays one `Option`
/// check per phase.
struct WorkerProf {
    stats: WorkerStats,
    ring: Histogram,
    heap: Histogram,
    /// Host events across this worker's machines at the last epoch end.
    prev_events: u64,
    /// Wall-clock nanoseconds spent in `build_node_machines`.
    build_ns: u64,
    /// Start of the current busy/wait segment.
    last: Instant,
}

impl WorkerProf {
    fn new() -> WorkerProf {
        WorkerProf {
            stats: WorkerStats::default(),
            ring: Histogram::new(),
            heap: Histogram::new(),
            prev_events: 0,
            build_ns: 0,
            last: Instant::now(),
        }
    }

    /// Closes the current segment as busy (event execution / merging).
    fn mark_busy(&mut self) {
        let now = Instant::now();
        self.stats.busy_ns += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }

    /// Closes the current segment as barrier wait.
    fn mark_wait(&mut self) {
        let now = Instant::now();
        self.stats.wait_ns += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }
}

/// One node's contribution to an interval sample, snapshotted at an epoch
/// barrier.
#[derive(Debug)]
pub(crate) struct SamplePart {
    pub stats: MemStats,
    /// `(run_ahead, tokens)` per pair on this node.
    pub pairs: Vec<(i64, u32)>,
    pub queue_len: usize,
    pub host_events: u64,
    pub recoveries: u64,
}

/// Builds the per-node machines for nodes `lo..hi` of the run.
///
/// Program construction must replay the *whole* run's allocation sequence
/// — every instance's builder call mutates the shared [`Layout`] — so
/// each worker walks the full placement in the exact order the serial
/// runner uses and keeps only the programs for the nodes it owns. The
/// resulting layout (and with it every address and home assignment) is
/// identical on every worker and identical to a serial run.
fn build_node_machines(
    workload: &dyn Workload,
    spec: &RunSpec,
    cfg: &MachineConfig,
    ntasks: usize,
    lo: usize,
    hi: usize,
) -> Vec<Machine> {
    let mut layout = Layout::with_page_size(cfg.page_bytes);
    let builder = workload.instantiate(ntasks, &mut layout);

    let mut placement: Vec<NodeId> = Vec::new();
    // (streams, pairs) per owned node; pair indices are node-local.
    let mut per_node: Vec<(Vec<StreamExec>, Vec<PairState>)> =
        (lo..hi).map(|_| (Vec::new(), Vec::new())).collect();
    let mut next_inst = 0u32;
    let mut mk = |layout: &mut Layout,
                  placement: &mut Vec<NodeId>,
                  task: usize,
                  cpu: CpuId,
                  role: StreamRole,
                  pair: Option<usize>|
     -> Option<StreamExec> {
        let inst = InstanceId(next_inst);
        next_inst += 1;
        placement.push(cpu.node());
        let prog = builder(layout, inst, task);
        let owned = (lo..hi).contains(&cpu.node().idx());
        owned.then(|| StreamExec::new(cpu, role, TaskId(task as u16), pair, prog.iter()))
    };
    match spec.mode {
        ExecMode::Single => {
            for t in 0..ntasks {
                let cpu = CpuId::new(NodeId(t as u16), 0);
                if let Some(s) = mk(&mut layout, &mut placement, t, cpu, StreamRole::Solo, None) {
                    per_node[t - lo].0.push(s);
                }
            }
        }
        ExecMode::Double => {
            for t in 0..ntasks {
                let node = t / 2;
                let cpu = CpuId::new(NodeId(node as u16), (t % 2) as u8);
                if let Some(s) = mk(&mut layout, &mut placement, t, cpu, StreamRole::Solo, None) {
                    per_node[node - lo].0.push(s);
                }
            }
        }
        ExecMode::Slipstream => {
            for t in 0..ntasks {
                let node = NodeId(t as u16);
                let r = mk(&mut layout, &mut placement, t, CpuId::new(node, 0), StreamRole::R, Some(0));
                let a = mk(&mut layout, &mut placement, t, CpuId::new(node, 1), StreamRole::A, Some(0));
                if let (Some(r), Some(a)) = (r, a) {
                    let (streams, pairs) = &mut per_node[t - lo];
                    streams.push(r);
                    let a_idx = streams.len();
                    streams.push(a);
                    let start = if spec.slip.ar_adaptive {
                        ArSyncMode::ALL[0]
                    } else {
                        spec.slip.ar_sync
                    };
                    pairs.push(PairState::new(a_idx, start, spec.slip.ar_adaptive));
                }
            }
        }
    }

    let mode = spec.mode;
    let task_node = |task: u32| -> NodeId {
        match mode {
            ExecMode::Single | ExecMode::Slipstream => NodeId(task as u16),
            ExecMode::Double => NodeId((task / 2) as u16),
        }
    };
    let home = HomeMap::new(&layout, cfg.nodes, |inst| placement[inst.0 as usize], task_node);

    per_node
        .into_iter()
        .enumerate()
        .map(|(offset, (streams, pairs))| {
            let node = NodeId((lo + offset) as u16);
            assert!(!streams.is_empty(), "every node hosts at least one stream");
            let mut mem = MemSystem::new_partition(cfg, home.clone(), ntasks as u32, node);
            mem.set_si_interval(spec.slip.si_interval.max(1));
            Machine::assemble(
                workload.name().to_string(),
                cfg.clone(),
                spec.slip,
                spec.mode,
                mem,
                streams,
                pairs,
                spec.quantum_cycles,
                spec.input_cycles,
                ntasks,
                TraceConfig::default(),
                spec.fastpath,
                None,
            )
        })
        .collect()
}

/// Merges per-node sample parts (in node order) into one interval sample
/// stamped at `cycle`.
fn merge_sample(cycle: u64, slots: &[Mutex<Option<SamplePart>>]) -> IntervalSample {
    let mut stats = MemStats::default();
    let mut run_ahead = Vec::new();
    let mut tokens = Vec::new();
    let mut queue_len = 0usize;
    let mut host_events = 0u64;
    let mut recoveries = 0u64;
    for slot in slots {
        let guard = slot.lock().unwrap();
        let p = guard.as_ref().expect("every node wrote its sample part");
        stats.accumulate(&p.stats);
        for &(ra, tk) in &p.pairs {
            run_ahead.push(ra);
            tokens.push(tk);
        }
        queue_len += p.queue_len;
        host_events += p.host_events;
        recoveries += p.recoveries;
    }
    IntervalSample { cycle, stats, run_ahead, tokens, queue_len, host_events, recoveries }
}

/// Runs `workload` under `spec` on `spec.threads` worker threads and
/// returns results bit-identical for every thread count (see the module
/// docs for why). Called by the runner when `spec.threads >= 1`; `cfg`
/// and `ntasks` are the resolved machine description and task count.
pub(crate) fn run_pdes(
    workload: &dyn Workload,
    spec: &RunSpec,
    cfg: MachineConfig,
    ntasks: usize,
    extra_tracer: Option<Box<dyn MemTracer>>,
) -> (RunResult, Option<TraceData>, Option<HostProfileData>) {
    let nodes = cfg.nodes as usize;
    assert!(cfg.lat.net >= 1, "parallel execution needs a positive network latency for lookahead");
    // The epoch window: at most the lookahead (network traversal), at
    // least one cycle. Smaller windows mean more barriers but identical
    // results; the override exists for the boundary stress tests.
    let w = spec.epoch_window.unwrap_or(cfg.lat.net).clamp(1, cfg.lat.net);
    let k = (spec.threads as usize).min(nodes).max(1);
    let interval = if spec.trace.enabled() { spec.trace.interval } else { 0 };
    let want_records = spec.trace.enabled() || extra_tracer.is_some();
    let capture_access = spec.trace.enabled();

    let profiling = spec.host.is_on();

    let barrier = Barrier::new(k);
    // Mailboxes indexed by destination node; workers append during the run
    // phase and the owner drains at the merge phase.
    let mail: Vec<Mutex<Vec<WireMsg>>> = (0..nodes).map(|_| Mutex::new(Vec::new())).collect();
    // Per-worker minimum next-event time (u64::MAX = idle).
    let next_times: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(u64::MAX)).collect();
    let bound = AtomicU64::new(w);
    let done = AtomicBool::new(false);
    let sample_slots: Vec<Mutex<Option<SamplePart>>> =
        (0..nodes).map(|_| Mutex::new(None)).collect();
    // Global progress counter for the heartbeat (profiled runs only):
    // each worker adds its epoch's event count at the merge phase.
    let events_done = AtomicU64::new(0);

    type WorkerOut = (
        Vec<(usize, NodePart)>,
        Option<Vec<IntervalSample>>,
        Option<Box<WorkerProf>>,
    );
    let sim_started = profiling.then(Instant::now);
    let mut results: Vec<WorkerOut> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..k)
            .map(|wi| {
                let (barrier, mail, next_times, bound, done, sample_slots, events_done) =
                    (&barrier, &mail, &next_times, &bound, &done, &sample_slots, &events_done);
                let cfg = &cfg;
                s.spawn(move || -> WorkerOut {
                    let lo = nodes * wi / k;
                    let hi = nodes * (wi + 1) / k;
                    let mut prof = profiling.then(|| Box::new(WorkerProf::new()));
                    let mut machines = build_node_machines(workload, spec, cfg, ntasks, lo, hi);
                    for m in machines.iter_mut() {
                        let sink = want_records.then(|| Rc::new(RefCell::new(Vec::new())));
                        m.pdes_start(sink, capture_access);
                    }
                    if let Some(p) = prof.as_mut() {
                        let now = Instant::now();
                        p.build_ns = now.duration_since(p.last).as_nanos() as u64;
                        p.last = now;
                    }
                    // The leader drives the opt-in heartbeat from the
                    // advance phase, off the shared progress counter.
                    let mut heartbeat = (profiling && wi == 0)
                        .then(|| {
                            Heartbeat::new(
                                workload.name(),
                                spec.host.heartbeat_secs,
                                spec.host.expected_events,
                            )
                        })
                        .flatten();
                    let mut send_seqs = vec![0u64; machines.len()];
                    let mut outbox: Vec<WireMsg> = Vec::new();
                    let mut arrivals: Vec<WireMsg> = Vec::new();
                    let mut my_samples: Vec<IntervalSample> = Vec::new();
                    let mut next_sample = if interval > 0 { interval } else { u64::MAX };
                    let mut b = w;
                    loop {
                        // Run phase: advance every owned node to the bound,
                        // posting diverted sends to the receivers' mailboxes.
                        for (mi, m) in machines.iter_mut().enumerate() {
                            m.pdes_run_until(Cycle(b), &mut outbox, &mut send_seqs[mi]);
                            if let Some(p) = prof.as_mut() {
                                p.stats.outbox_len.record(outbox.len() as u64);
                            }
                            for wmsg in outbox.drain(..) {
                                mail[wmsg.msg.dst.idx()].lock().unwrap().push(wmsg);
                            }
                        }
                        if let Some(p) = prof.as_mut() {
                            let ev: u64 =
                                machines.iter().map(|m| m.host_events_so_far()).sum();
                            let delta = ev - p.prev_events;
                            p.prev_events = ev;
                            p.stats.events_per_epoch.record(delta);
                            p.stats.epochs += 1;
                            events_done.fetch_add(delta, Ordering::Relaxed);
                            p.mark_busy();
                        }
                        barrier.wait();
                        if let Some(p) = prof.as_mut() {
                            p.mark_wait();
                        }
                        // Merge phase: fold arrivals into each owned node's
                        // inbox and report the earliest remaining work time.
                        let mut local_min = u64::MAX;
                        for (mi, m) in machines.iter_mut().enumerate() {
                            let node = lo + mi;
                            std::mem::swap(&mut *mail[node].lock().unwrap(), &mut arrivals);
                            m.pdes_deliver(&mut arrivals);
                            if let Some(t) = m.pdes_next_time() {
                                local_min = local_min.min(t.raw());
                            }
                            if let Some(p) = prof.as_mut() {
                                let (ring, heap) = m.queue_depths();
                                p.ring.record(ring as u64);
                                p.heap.record(heap as u64);
                            }
                            if interval > 0 {
                                *sample_slots[node].lock().unwrap() = Some(m.pdes_sample_part());
                            }
                        }
                        next_times[wi].store(local_min, Ordering::SeqCst);
                        if let Some(p) = prof.as_mut() {
                            p.mark_busy();
                        }
                        barrier.wait();
                        // Advance phase: the leader opens the next epoch (or
                        // declares termination) and emits any interval
                        // samples whose boundary the run just passed.
                        if wi == 0 {
                            let min = next_times
                                .iter()
                                .map(|t| t.load(Ordering::SeqCst))
                                .min()
                                .expect("at least one worker");
                            while next_sample < b {
                                my_samples.push(merge_sample(next_sample, sample_slots));
                                next_sample += interval;
                            }
                            if let Some(hb) = heartbeat.as_mut() {
                                hb.maybe_beat(events_done.load(Ordering::Relaxed));
                            }
                            if min == u64::MAX {
                                done.store(true, Ordering::SeqCst);
                            } else {
                                bound.store(min.saturating_add(w), Ordering::SeqCst);
                            }
                        }
                        barrier.wait();
                        if let Some(p) = prof.as_mut() {
                            p.mark_wait();
                        }
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                        b = bound.load(Ordering::SeqCst);
                    }
                    if let Some(p) = prof.as_mut() {
                        p.stats.events = p.prev_events;
                    }
                    let parts = machines
                        .into_iter()
                        .enumerate()
                        .map(|(mi, m)| (lo + mi, m.pdes_finish()))
                        .collect();
                    (parts, (wi == 0).then_some(my_samples), prof)
                })
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect();
    });
    let simulate_s = sim_started.map_or(0.0, |t| t.elapsed().as_secs_f64());

    let mut slots: Vec<Option<NodePart>> = (0..nodes).map(|_| None).collect();
    let mut samples: Vec<IntervalSample> = Vec::new();
    let mut profs: Vec<Box<WorkerProf>> = Vec::new();
    for (list, s, p) in results {
        for (node, part) in list {
            slots[node] = Some(part);
        }
        if let Some(s) = s {
            samples = s;
        }
        if let Some(p) = p {
            profs.push(p);
        }
    }
    let mut parts: Vec<NodePart> =
        slots.into_iter().map(|p| p.expect("every node finished")).collect();

    // Merge per-node results in node order — which is exactly the serial
    // runner's stream construction order.
    let mut stats = MemStats::default();
    let mut streams: Vec<StreamReport> = Vec::new();
    let mut recoveries = 0u64;
    let mut host_events = 0u64;
    let mut queue_pushed = 0u64;
    let mut queue_high_water = 0usize;
    let mut queue_heap_pushes = 0u64;
    for p in parts.iter_mut() {
        stats.accumulate(&p.stats);
        streams.append(&mut p.streams);
        recoveries += p.recoveries;
        host_events += p.host_events;
        queue_pushed += p.queue_pushed;
        queue_high_water = queue_high_water.max(p.queue_high_water);
        queue_heap_pushes += p.queue_heap_pushes;
    }
    let exec_cycles = streams
        .iter()
        .filter(|s| s.role != StreamRole::A)
        .map(|s| s.finish)
        .max()
        .unwrap_or(0);

    let mut trace = None;
    if want_records {
        // The deterministic merge: all captured records, ordered by
        // (time, node, per-node capture index). Per-node sequences are
        // K-invariant, so the merged stream is too.
        let mut order: Vec<(u64, u16, u32)> = Vec::new();
        for (node, p) in parts.iter().enumerate() {
            for (idx, rec) in p.records.iter().enumerate() {
                order.push((rec.at().raw(), node as u16, idx as u32));
            }
        }
        order.sort_unstable();
        let (ts, mut rec) = match spec.trace.enabled().then(|| TraceState::new(spec.trace)) {
            Some((ts, rec)) => (Some(ts), Some(rec)),
            None => (None, None),
        };
        let mut extra = extra_tracer;
        for &(_, node, idx) in &order {
            match &parts[node as usize].records[idx as usize] {
                NodeRec::Mem(call) => {
                    if let Some(r) = rec.as_mut() {
                        call.apply(r);
                    }
                    if let Some(e) = extra.as_mut() {
                        call.apply(e.as_mut());
                    }
                }
                NodeRec::Machine(t, kind) => {
                    if let Some(ts) = ts.as_ref() {
                        ts.buf.borrow_mut().push(*t, kind.clone());
                    }
                }
            }
        }
        drop(rec);
        if let Some(ts) = ts {
            if ts.cfg.interval > 0 {
                // Closing sample at the end of the run, as in the serial
                // teardown: the final cumulative state.
                let mut run_ahead = Vec::new();
                let mut tokens = Vec::new();
                for p in &parts {
                    for &(ra, tk) in &p.pairs {
                        run_ahead.push(ra);
                        tokens.push(tk);
                    }
                }
                samples.push(IntervalSample {
                    cycle: exec_cycles,
                    stats: stats.clone(),
                    run_ahead,
                    tokens,
                    queue_len: 0,
                    host_events,
                    recoveries,
                });
            }
            let buf = Rc::try_unwrap(ts.buf)
                .expect("trace buffer uniquely owned once the recorder is dropped")
                .into_inner();
            trace = Some(TraceData::assemble(
                ts.cfg,
                buf,
                samples,
                queue_pushed,
                queue_high_water,
                exec_cycles,
            ));
        }
    }

    // Engine-level host profile: per-worker busy/wait plus merged queue
    // traffic. Phase attribution: machine construction happens inside the
    // worker threads, so `build_s` (the slowest worker's build) overlaps
    // `simulate_s` (the wall clock of the whole parallel section). The
    // runner fills in resources afterwards.
    let profile = if profiling {
        let mut queue = QueueStats {
            total_pushed: queue_pushed,
            heap_pushes: queue_heap_pushes,
            high_water: queue_high_water as u64,
            ring_occupancy: Histogram::new(),
            heap_occupancy: Histogram::new(),
        };
        let mut workers = Vec::with_capacity(profs.len());
        let mut build_ns = 0u64;
        for p in profs {
            queue.ring_occupancy.merge(&p.ring);
            queue.heap_occupancy.merge(&p.heap);
            build_ns = build_ns.max(p.build_ns);
            workers.push(p.stats);
        }
        Some(HostProfileData {
            engine: "pdes",
            threads: spec.threads,
            nodes: cfg.nodes,
            events: host_events,
            sim_cycles: exec_cycles,
            phases: crate::telemetry::PhaseTimes {
                build_s: build_ns as f64 / 1e9,
                simulate_s,
                ..Default::default()
            },
            workers,
            queue,
            resources: Vec::new(),
        })
    } else {
        None
    };

    let result = RunResult {
        name: workload.name().to_string(),
        mode: spec.mode,
        nodes: cfg.nodes,
        tasks: ntasks,
        exec_cycles,
        streams,
        mem: stats,
        recoveries,
        host_events,
    };
    (result, trace, profile)
}
