//! Host-side self-profiling: counters, gauges, and fixed-bucket
//! histograms describing the *simulator's* behaviour (wall-clock time,
//! worker balance, queue-lane traffic), as opposed to `trace`, which
//! observes the *simulated machine*.
//!
//! Everything here is strictly observational: profiling reads host clocks
//! and counters the engines already maintain, and never feeds anything
//! back into simulated time — so a profiled run is bit-identical to an
//! unprofiled one (pinned by `crates/bench/tests/host_profile.rs`).
//! Collection is off by default ([`HostProfile::default`]) and costs
//! nothing when off: the engines hold an `Option` of collector state and
//! skip every hook on `None`.
//!
//! No external dependencies: histograms are fixed power-of-two buckets,
//! export is the same hand-rolled JSON used by the trace subsystem.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::report::RunResult;

/// Schema identifier written into every `host_profile.json`.
pub const HOST_PROFILE_SCHEMA: &str = "slipstream-host-profile/1";

/// How often the engines sample queue occupancy, in events. Power of two
/// so the hot-loop check is a mask.
pub const QUEUE_SAMPLE_PERIOD: u64 = 1024;

// ---------------------------------------------------------------------------
// Quiet-able stderr notes
// ---------------------------------------------------------------------------

static QUIET: AtomicBool = AtomicBool::new(false);

/// Globally silences [`host_note!`] (progress chatter on stderr: the
/// bench executor's per-run lines, the CPU-cap warning, the heartbeat).
/// Errors and reports still print; this only gates narration, so
/// machine-readable pipelines stay clean.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether [`set_quiet`] has silenced progress notes.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// `eprintln!` for progress narration, silenced by
/// [`telemetry::set_quiet`](set_quiet). Formatting is skipped entirely
/// when quiet.
#[macro_export]
macro_rules! host_note {
    ($($t:tt)*) => {
        if !$crate::telemetry::is_quiet() {
            eprintln!($($t)*);
        }
    };
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of buckets in every [`Histogram`]: `[0]`, `[1]`, `[2,4)`,
/// `[4,8)`, …, `[2^13,2^14)`, `[2^14,∞)`.
pub const HIST_BUCKETS: usize = 16;

/// A fixed-size power-of-two histogram of `u64` samples.
///
/// Bucket `0` holds zeros, bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`, and the last bucket absorbs the tail. Recording is
/// a `leading_zeros` and an add — cheap enough for per-epoch hooks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index for `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, o: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&o.buckets) {
            *a += b;
        }
        self.count += o.count;
        self.sum += o.sum;
        self.max = self.max.max(o.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    fn json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(|b| b.to_string()).collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            buckets.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Host-profiling configuration on [`crate::RunSpec`]. Default: off —
/// the run pays no collection cost and produces no profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostProfile {
    /// Master switch.
    pub enabled: bool,
    /// Heartbeat period in seconds on stderr (events/s, % complete, ETA).
    /// `0.0` disables the heartbeat (profile data is still collected).
    pub heartbeat_secs: f64,
    /// Expected total host events for `% complete` / ETA in the
    /// heartbeat; `0` = unknown (heartbeat reports events/s only).
    pub expected_events: u64,
}

impl HostProfile {
    /// Profiling on, heartbeat off.
    pub fn enabled() -> HostProfile {
        HostProfile { enabled: true, ..HostProfile::default() }
    }

    /// Whether any collection happens.
    pub fn is_on(&self) -> bool {
        self.enabled
    }
}

// ---------------------------------------------------------------------------
// Collected data
// ---------------------------------------------------------------------------

/// One engine worker's share of the run. The serial engine reports a
/// single worker whose wait time is zero; the PDES engine reports one
/// entry per worker thread.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Wall-clock nanoseconds spent executing events.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent blocked on epoch barriers.
    pub wait_ns: u64,
    /// Epochs this worker ran (0 for the serial engine).
    pub epochs: u64,
    /// Host events this worker executed.
    pub events: u64,
    /// Events executed per epoch (PDES only).
    pub events_per_epoch: Histogram,
    /// Outbox size posted to mailboxes at each epoch barrier (PDES only).
    pub outbox_len: Histogram,
}

/// Two-lane event-queue traffic, summed over every queue the run used
/// (one global queue serially; one per node under PDES).
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Total events pushed.
    pub total_pushed: u64,
    /// Pushes that fell back to the far-tail heap lane.
    pub heap_pushes: u64,
    /// Peak pending events in any single queue.
    pub high_water: u64,
    /// Near-future ring occupancy, sampled every
    /// [`QUEUE_SAMPLE_PERIOD`] events (serial) or at each epoch barrier
    /// (PDES).
    pub ring_occupancy: Histogram,
    /// Heap-lane occupancy at the same sample points.
    pub heap_occupancy: Histogram,
}

impl QueueStats {
    /// Folds another queue's counters into this one.
    pub fn merge(&mut self, o: &QueueStats) {
        self.total_pushed += o.total_pushed;
        self.heap_pushes += o.heap_pushes;
        self.high_water = self.high_water.max(o.high_water);
        self.ring_occupancy.merge(&o.ring_occupancy);
        self.heap_occupancy.merge(&o.heap_occupancy);
    }
}

/// Wall-clock phase breakdown of one run, in seconds. Phases a caller
/// doesn't perform stay 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Layout instantiation + machine assembly.
    pub build_s: f64,
    /// The simulation loop itself.
    pub simulate_s: f64,
    /// Protocol-checker verdict evaluation (checked runs only).
    pub check_s: f64,
    /// Trace serialization to disk (trace exports only).
    pub trace_export_s: f64,
}

/// One contention server's totals, with utilization against the run's
/// aggregate node-cycles.
#[derive(Debug, Clone)]
pub struct ResourceSummary {
    /// Resource name (`dir_ctl`, `net_in`, `net_out`, `mem_bank`).
    pub name: &'static str,
    /// Simulated cycles busy, summed over nodes.
    pub busy_cycles: u64,
    /// Jobs served.
    pub jobs: u64,
    /// Simulated cycles jobs queued.
    pub wait_cycles: u64,
    /// `busy_cycles / (exec_cycles * nodes)`.
    pub utilization: f64,
}

/// Everything the host profiler collected for one run.
#[derive(Debug, Clone, Default)]
pub struct HostProfileData {
    /// `"serial"` or `"pdes"`.
    pub engine: &'static str,
    /// Worker threads (`RunSpec::threads`; 0 = serial loop).
    pub threads: u16,
    /// Simulated CMP nodes.
    pub nodes: u16,
    /// Total host events executed.
    pub events: u64,
    /// Simulated cycles the run covered.
    pub sim_cycles: u64,
    /// Wall-clock phase breakdown.
    pub phases: PhaseTimes,
    /// Per-worker busy/wait/epoch accounting.
    pub workers: Vec<WorkerStats>,
    /// Queue-lane traffic.
    pub queue: QueueStats,
    /// Contention-server utilization.
    pub resources: Vec<ResourceSummary>,
}

impl HostProfileData {
    /// Load-imbalance ratio: max over workers of busy wall-time divided
    /// by the mean (1.0 = perfectly balanced; 0 when unmeasured). The
    /// serial engine always reports 1.0.
    pub fn imbalance_ratio(&self) -> f64 {
        let times: Vec<u64> = self.workers.iter().map(|w| w.busy_ns).collect();
        if times.is_empty() {
            return 0.0;
        }
        let max = *times.iter().max().expect("non-empty") as f64;
        let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Host events per wall-clock second of the simulate phase (0 when
    /// the phase is unmeasured).
    pub fn events_per_sec(&self) -> f64 {
        if self.phases.simulate_s <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.phases.simulate_s
        }
    }

    /// Fills [`HostProfileData::resources`] from a run's memory
    /// statistics. Utilization is against `exec_cycles * nodes`, since
    /// every resource has one instance per node.
    pub fn fill_resources(&mut self, r: &RunResult) {
        self.sim_cycles = r.exec_cycles;
        let total = r.exec_cycles.saturating_mul(self.nodes as u64);
        self.resources = r
            .mem
            .contention
            .named()
            .iter()
            .map(|(name, u)| ResourceSummary {
                name,
                busy_cycles: u.busy_cycles,
                jobs: u.jobs,
                wait_cycles: u.wait_cycles,
                utilization: u.utilization(total),
            })
            .collect();
    }

    /// The profile as one JSON object (schema
    /// [`HOST_PROFILE_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push('{');
        s.push_str(&format!("\"schema\": \"{HOST_PROFILE_SCHEMA}\","));
        s.push_str(&format!("\"engine\": \"{}\",", self.engine));
        s.push_str(&format!("\"threads\": {},", self.threads));
        s.push_str(&format!("\"nodes\": {},", self.nodes));
        s.push_str(&format!("\"events\": {},", self.events));
        s.push_str(&format!("\"sim_cycles\": {},", self.sim_cycles));
        s.push_str(&format!("\"events_per_sec\": {:.1},", self.events_per_sec()));
        s.push_str(&format!("\"imbalance_ratio\": {:.4},", self.imbalance_ratio()));
        s.push_str(&format!(
            "\"phases\": {{\"build_s\": {:.6}, \"simulate_s\": {:.6}, \"check_s\": {:.6}, \
             \"trace_export_s\": {:.6}}},",
            self.phases.build_s,
            self.phases.simulate_s,
            self.phases.check_s,
            self.phases.trace_export_s
        ));
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"busy_s\": {:.6}, \"wait_s\": {:.6}, \"epochs\": {}, \"events\": {}, \
                     \"events_per_epoch\": {}, \"outbox_len\": {}}}",
                    w.busy_ns as f64 / 1e9,
                    w.wait_ns as f64 / 1e9,
                    w.epochs,
                    w.events,
                    w.events_per_epoch.json(),
                    w.outbox_len.json()
                )
            })
            .collect();
        s.push_str(&format!("\"workers\": [{}],", workers.join(",")));
        s.push_str(&format!(
            "\"queue\": {{\"total_pushed\": {}, \"heap_pushes\": {}, \"high_water\": {}, \
             \"ring_occupancy\": {}, \"heap_occupancy\": {}}},",
            self.queue.total_pushed,
            self.queue.heap_pushes,
            self.queue.high_water,
            self.queue.ring_occupancy.json(),
            self.queue.heap_occupancy.json()
        ));
        let resources: Vec<String> = self
            .resources
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\": \"{}\", \"busy_cycles\": {}, \"jobs\": {}, \"wait_cycles\": {}, \
                     \"utilization\": {:.4}}}",
                    r.name, r.busy_cycles, r.jobs, r.wait_cycles, r.utilization
                )
            })
            .collect();
        s.push_str(&format!("\"resources\": [{}]", resources.join(",")));
        s.push('}');
        s
    }

    /// A human-readable multi-line table of the profile.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "host profile: engine={} threads={} nodes={} events={} ({:.0} ev/s)\n",
            self.engine,
            self.threads,
            self.nodes,
            self.events,
            self.events_per_sec()
        ));
        s.push_str(&format!(
            "  phases: build {:.3}s  simulate {:.3}s  check {:.3}s  trace-export {:.3}s\n",
            self.phases.build_s,
            self.phases.simulate_s,
            self.phases.check_s,
            self.phases.trace_export_s
        ));
        s.push_str(&format!(
            "  workers ({}): imbalance ratio {:.2} (max/mean busy)\n",
            self.workers.len(),
            self.imbalance_ratio()
        ));
        for (i, w) in self.workers.iter().enumerate() {
            let total = (w.busy_ns + w.wait_ns) as f64;
            let busy_pct = if total == 0.0 { 0.0 } else { 100.0 * w.busy_ns as f64 / total };
            s.push_str(&format!(
                "    w{i}: busy {:.3}s  wait {:.3}s  ({:.0}% busy)  epochs {}  events {}  \
                 ev/epoch mean {:.1} max {}  outbox mean {:.1} max {}\n",
                w.busy_ns as f64 / 1e9,
                w.wait_ns as f64 / 1e9,
                busy_pct,
                w.epochs,
                w.events,
                w.events_per_epoch.mean(),
                w.events_per_epoch.max(),
                w.outbox_len.mean(),
                w.outbox_len.max()
            ));
        }
        let heap_pct = if self.queue.total_pushed == 0 {
            0.0
        } else {
            100.0 * self.queue.heap_pushes as f64 / self.queue.total_pushed as f64
        };
        s.push_str(&format!(
            "  queue: pushed {}  heap fallbacks {} ({:.2}%)  high water {}  ring occ mean {:.1}  \
             heap occ mean {:.1}\n",
            self.queue.total_pushed,
            self.queue.heap_pushes,
            heap_pct,
            self.queue.high_water,
            self.queue.ring_occupancy.mean(),
            self.queue.heap_occupancy.mean()
        ));
        s.push_str("  contention (busy = simulated cycles, util = busy / exec*nodes):\n");
        for r in &self.resources {
            s.push_str(&format!(
                "    {:<8} busy {:<12} jobs {:<10} wait {:<12} util {:.1}%\n",
                r.name,
                r.busy_cycles,
                r.jobs,
                r.wait_cycles,
                r.utilization * 100.0
            ));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

/// Opt-in periodic progress line on stderr for long runs. Driven by the
/// engines from their event loops (serial) or the leader worker (PDES);
/// silenced by [`set_quiet`].
#[derive(Debug)]
pub struct Heartbeat {
    label: String,
    every: Duration,
    started: Instant,
    next: Instant,
    expected_events: u64,
}

impl Heartbeat {
    /// A heartbeat firing every `secs` seconds (`None` when `secs <= 0`).
    pub fn new(label: &str, secs: f64, expected_events: u64) -> Option<Heartbeat> {
        if secs <= 0.0 {
            return None;
        }
        let every = Duration::from_secs_f64(secs);
        let now = Instant::now();
        Some(Heartbeat {
            label: label.to_string(),
            every,
            started: now,
            next: now + every,
            expected_events,
        })
    }

    /// Emits a progress line if the period elapsed. Call sparsely (the
    /// engines call it at queue-sample points / epoch barriers).
    pub fn maybe_beat(&mut self, events_done: u64) {
        let now = Instant::now();
        if now < self.next {
            return;
        }
        self.next = now + self.every;
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let rate = if elapsed > 0.0 { events_done as f64 / elapsed } else { 0.0 };
        if self.expected_events > 0 && rate > 0.0 {
            let pct = 100.0 * events_done as f64 / self.expected_events as f64;
            let remaining = self.expected_events.saturating_sub(events_done) as f64 / rate;
            host_note!(
                "  [{}: {} events ({:.0}%), {:.0} ev/s, eta {:.0}s]",
                self.label,
                events_done,
                pct.min(100.0),
                rate,
                remaining
            );
        } else {
            host_note!(
                "  [{}: {} events, {:.0} ev/s, {:.0}s elapsed]",
                self.label,
                events_done,
                rate,
                elapsed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_kernel::SplitMix64;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Lower bounds match the bucketing function.
        for i in 1..HIST_BUCKETS {
            let lo = Histogram::bucket_lo(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lower bound of bucket {i}");
            if i > 1 {
                assert_eq!(Histogram::bucket_of(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn histogram_totals_match_random_inputs() {
        let mut rng = SplitMix64::new(0x5eed_7e1e);
        let mut h = Histogram::new();
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for _ in 0..10_000 {
            // Spread samples over the full bucket range by masking to a
            // random width.
            let width = rng.next_u64() % 20;
            let v = rng.next_u64() & ((1u64 << width) - 1);
            h.record(v);
            count += 1;
            sum += v;
            max = max.max(v);
        }
        assert_eq!(h.count(), count);
        assert_eq!(h.sum(), sum);
        assert_eq!(h.max(), max);
        assert_eq!(h.buckets().iter().sum::<u64>(), count);
        assert!((h.mean() - sum as f64 / count as f64).abs() < 1e-9);
        // Every sample landed in the bucket its value maps to.
        let mut rng2 = SplitMix64::new(0x5eed_7e1e);
        let mut expect = [0u64; HIST_BUCKETS];
        for _ in 0..10_000 {
            let width = rng2.next_u64() % 20;
            let v = rng2.next_u64() & ((1u64 << width) - 1);
            expect[Histogram::bucket_of(v)] += 1;
        }
        assert_eq!(h.buckets(), &expect);
    }

    #[test]
    fn histogram_merge_is_sum() {
        let mut rng = SplitMix64::new(42);
        let (mut a, mut b, mut whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..1_000 {
            let v = rng.next_u64() % 100_000;
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn imbalance_ratio_max_over_mean() {
        let mut d = HostProfileData::default();
        assert_eq!(d.imbalance_ratio(), 0.0);
        for busy in [100u64, 200, 300] {
            d.workers.push(WorkerStats { busy_ns: busy, ..WorkerStats::default() });
        }
        assert!((d.imbalance_ratio() - 1.5).abs() < 1e-9);
        // Single worker (serial engine) is perfectly balanced.
        d.workers.truncate(1);
        assert!((d.imbalance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_has_schema_and_sections() {
        let mut d = HostProfileData {
            engine: "pdes",
            threads: 2,
            nodes: 4,
            events: 1000,
            ..HostProfileData::default()
        };
        d.workers.push(WorkerStats::default());
        let j = d.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in ["\"schema\"", "\"workers\"", "\"queue\"", "\"resources\"", "\"phases\""] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains(HOST_PROFILE_SCHEMA));
    }
}
