use slipstream_kernel::config::{DirScheme, ExecMode, MachineConfig, SlipstreamConfig};
use slipstream_kernel::{CpuId, NodeId, TaskId};
use slipstream_mem::{HomeMap, MemSystem, StreamRole};
use slipstream_prog::{InstanceId, Layout};

use crate::machine::Machine;
use crate::report::RunResult;
use crate::stream::{PairState, StreamExec};
use crate::telemetry::{HostProfile, HostProfileData};
use crate::trace::{TraceConfig, TraceData};
use crate::workload::Workload;

/// Everything needed to run one experiment: machine size, execution mode,
/// and slipstream knobs.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Number of CMP nodes.
    pub nodes: u16,
    /// Execution mode (Figure 2).
    pub mode: ExecMode,
    /// Slipstream configuration (ignored outside slipstream mode).
    pub slip: SlipstreamConfig,
    /// Override the machine description (defaults to Table 1, honoring
    /// the workload's `small_l2` request).
    pub machine: Option<MachineConfig>,
    /// Override the directory sharer-tracking scheme on whatever machine
    /// description the run resolves to. `None` keeps the machine's own
    /// scheme (the full-map default). The default scheme is bit-identical
    /// to the historical protocol; `DirScheme::LimitedPointer` is an
    /// ablation that intentionally changes traffic.
    pub dir_scheme: Option<DirScheme>,
    /// Maximum cycles a processor may batch private work ahead of global
    /// time.
    pub quantum_cycles: u64,
    /// Cost of an `Input` operation (system call / I/O) in the R-stream.
    pub input_cycles: u64,
    /// Observability configuration. Default: everything off, in which case
    /// the run is untraced and pays no collection cost.
    pub trace: TraceConfig,
    /// Batched fast-path execution (default on). When a stream's resume
    /// would be the very next event popped, the round-trip through the
    /// event queue is elided and the stream keeps executing inline. The
    /// result is bit-identical either way; turning this off exists for the
    /// differential tests and debugging.
    pub fastpath: bool,
    /// Worker threads for intra-run parallel simulation (`crate::pdes`).
    /// `0` (the default) runs the classic serial event loop; any `K >= 1`
    /// runs the conservative parallel engine, whose results are
    /// bit-identical for every `K` (but may differ from the serial loop
    /// in host-side accounting such as `host_events` — the simulated
    /// machine's timings and statistics are engine-invariant only within
    /// each engine).
    pub threads: u16,
    /// Override the parallel engine's epoch window in cycles, clamped to
    /// `[1, Latencies::net]` (the conservative lookahead). `None` uses the
    /// full lookahead. Smaller windows add barriers but cannot change
    /// results; the knob exists for the epoch-boundary stress tests.
    pub epoch_window: Option<u64>,
    /// Host-side self-profiling (see [`crate::telemetry`]). Default: off,
    /// zero collection cost; profiled runs are bit-identical to
    /// unprofiled ones.
    pub host: HostProfile,
}

impl RunSpec {
    /// A spec with default slipstream settings (one-token global,
    /// prefetch-only).
    pub fn new(nodes: u16, mode: ExecMode) -> RunSpec {
        RunSpec {
            nodes,
            mode,
            slip: SlipstreamConfig::default(),
            machine: None,
            dir_scheme: None,
            quantum_cycles: 200,
            input_cycles: 500,
            trace: TraceConfig::default(),
            fastpath: true,
            threads: 0,
            epoch_window: None,
            host: HostProfile::default(),
        }
    }

    /// Sets the worker-thread count for intra-run parallel simulation
    /// (`0` = serial event loop).
    pub fn with_threads(mut self, threads: u16) -> RunSpec {
        self.threads = threads;
        self
    }

    /// Overrides the parallel engine's epoch window (see
    /// [`RunSpec::epoch_window`]).
    pub fn with_epoch_window(mut self, window: u64) -> RunSpec {
        self.epoch_window = Some(window);
        self
    }

    /// Sets the slipstream configuration.
    pub fn with_slip(mut self, slip: SlipstreamConfig) -> RunSpec {
        self.slip = slip;
        self
    }

    /// Overrides the machine description.
    pub fn with_machine(mut self, machine: MachineConfig) -> RunSpec {
        self.machine = Some(machine);
        self
    }

    /// Overrides the directory sharer-tracking scheme (see
    /// [`RunSpec::dir_scheme`]).
    pub fn with_dir_scheme(mut self, scheme: DirScheme) -> RunSpec {
        self.dir_scheme = Some(scheme);
        self
    }

    /// Enables observability collection for the run (see [`TraceConfig`]).
    pub fn with_trace(mut self, trace: TraceConfig) -> RunSpec {
        self.trace = trace;
        self
    }

    /// Enables or disables the batched fast path (on by default).
    pub fn with_fastpath(mut self, fastpath: bool) -> RunSpec {
        self.fastpath = fastpath;
        self
    }

    /// Enables host-side self-profiling (see [`crate::telemetry`]).
    pub fn with_host_profile(mut self, host: HostProfile) -> RunSpec {
        self.host = host;
        self
    }
}

/// Runs `workload` under `spec` and returns the measurements.
///
/// Task placement follows Figure 2 of the paper:
/// * **single** — one task per CMP, on core 0; core 1 idles;
/// * **double** — two tasks per CMP (2n tasks total);
/// * **slipstream** — per CMP, the R-stream on core 0 and its reduced
///   A-stream copy (with separate private data) on core 1.
///
/// # Panics
///
/// Panics on deadlock or a protocol invariant violation (these are bugs,
/// not measurements).
pub fn run(workload: &dyn Workload, spec: &RunSpec) -> RunResult {
    run_traced(workload, spec).0
}

/// Like [`run`], but also returns the collected [`TraceData`] when
/// `spec.trace` enables any collection (`None` otherwise). The
/// [`RunResult`] is bit-identical either way: tracing only observes.
pub fn run_traced(workload: &dyn Workload, spec: &RunSpec) -> (RunResult, Option<TraceData>) {
    let out = run_inner(workload, spec, None);
    (out.result, out.trace)
}

/// Like [`run`], but installs `tracer` as an additional [`MemTracer`] for
/// the duration of the run (fanned out with the trace recorder when
/// `spec.trace` is also enabled). Tracers observe only, so the
/// [`RunResult`] is bit-identical to an untraced run; the caller keeps
/// whatever shared handle its tracer exposes (e.g. an `Rc` into collected
/// state) and inspects it after the run returns.
pub fn run_with_tracer(
    workload: &dyn Workload,
    spec: &RunSpec,
    tracer: Box<dyn slipstream_mem::MemTracer>,
) -> RunResult {
    run_inner(workload, spec, Some(tracer)).result
}

/// Everything one run can produce: the measurements, the optional trace,
/// and the optional host profile ([`crate::telemetry`]). `trace` is
/// `Some` iff `spec.trace` enables collection; `profile` is `Some` iff
/// `spec.host` is on. The [`RunResult`] is bit-identical no matter which
/// of the two observers are attached.
#[derive(Debug)]
pub struct RunOutput {
    /// The run's measurements.
    pub result: RunResult,
    /// Collected trace data, when `spec.trace` enabled any.
    pub trace: Option<TraceData>,
    /// The host profile, when `spec.host` is on.
    pub profile: Option<HostProfileData>,
}

/// Runs `workload` under `spec` and returns measurements, trace, and
/// host profile together (see [`RunOutput`]).
pub fn run_full(workload: &dyn Workload, spec: &RunSpec) -> RunOutput {
    run_inner(workload, spec, None)
}

/// [`run_full`] with an additional caller-supplied [`MemTracer`] attached
/// for the duration of the run (the combination the protocol checker
/// needs to observe a profiled run).
pub fn run_full_with_tracer(
    workload: &dyn Workload,
    spec: &RunSpec,
    tracer: Box<dyn slipstream_mem::MemTracer>,
) -> RunOutput {
    run_inner(workload, spec, Some(tracer))
}

fn run_inner(
    workload: &dyn Workload,
    spec: &RunSpec,
    extra_tracer: Option<Box<dyn slipstream_mem::MemTracer>>,
) -> RunOutput {
    let mut cfg = spec.machine.clone().unwrap_or_else(|| {
        if workload.small_l2() {
            MachineConfig::water(spec.nodes)
        } else {
            MachineConfig::with_nodes(spec.nodes)
        }
    });
    cfg.nodes = spec.nodes;
    if let Some(scheme) = spec.dir_scheme {
        cfg.dir_scheme = scheme;
    }
    let ntasks = match spec.mode {
        ExecMode::Single | ExecMode::Slipstream => spec.nodes as usize,
        ExecMode::Double => spec.nodes as usize * 2,
    };
    if spec.threads >= 1 {
        let (result, trace, mut profile) =
            crate::pdes::run_pdes(workload, spec, cfg, ntasks, extra_tracer);
        if let Some(p) = profile.as_mut() {
            p.fill_resources(&result);
        }
        return RunOutput { result, trace, profile };
    }
    // Build-phase wall clock, measured only on profiled runs.
    let build_started = spec.host.is_on().then(std::time::Instant::now);
    let mut layout = Layout::with_page_size(cfg.page_bytes);
    let builder = workload.instantiate(ntasks, &mut layout);

    // (instance -> node) placement, recorded while creating streams.
    let mut placement: Vec<NodeId> = Vec::new();
    let mut streams: Vec<StreamExec> = Vec::new();
    let mut pairs: Vec<PairState> = Vec::new();
    let mut next_inst = 0u32;
    let mut mk = |layout: &mut Layout,
                  placement: &mut Vec<NodeId>,
                  task: usize,
                  cpu: CpuId,
                  role: StreamRole,
                  pair: Option<usize>| {
        let inst = InstanceId(next_inst);
        next_inst += 1;
        placement.push(cpu.node());
        let prog = builder(layout, inst, task);
        StreamExec::new(cpu, role, TaskId(task as u16), pair, prog.iter())
    };
    match spec.mode {
        ExecMode::Single => {
            for t in 0..ntasks {
                let cpu = CpuId::new(NodeId(t as u16), 0);
                streams.push(mk(&mut layout, &mut placement, t, cpu, StreamRole::Solo, None));
            }
        }
        ExecMode::Double => {
            for t in 0..ntasks {
                let cpu = CpuId::new(NodeId((t / 2) as u16), (t % 2) as u8);
                streams.push(mk(&mut layout, &mut placement, t, cpu, StreamRole::Solo, None));
            }
        }
        ExecMode::Slipstream => {
            for t in 0..ntasks {
                let node = NodeId(t as u16);
                
                streams.push(mk(
                    &mut layout,
                    &mut placement,
                    t,
                    CpuId::new(node, 0),
                    StreamRole::R,
                    Some(t),
                ));
                let a_idx = streams.len();
                streams.push(mk(
                    &mut layout,
                    &mut placement,
                    t,
                    CpuId::new(node, 1),
                    StreamRole::A,
                    Some(t),
                ));
                let start = if spec.slip.ar_adaptive {
                    slipstream_kernel::config::ArSyncMode::ALL[0]
                } else {
                    spec.slip.ar_sync
                };
                pairs.push(PairState::new(a_idx, start, spec.slip.ar_adaptive));
            }
        }
    }

    // Task -> node placement for first-touch (shared_owned) pages.
    let task_node = |task: u32| -> NodeId {
        match spec.mode {
            ExecMode::Single | ExecMode::Slipstream => NodeId(task as u16),
            ExecMode::Double => NodeId((task / 2) as u16),
        }
    };
    let home = HomeMap::new(&layout, cfg.nodes, |inst| placement[inst.0 as usize], task_node);
    let mut mem = MemSystem::new(&cfg, home, ntasks as u32);
    mem.set_si_interval(spec.slip.si_interval.max(1));

    let mut machine = Machine::assemble(
        workload.name().to_string(),
        cfg,
        spec.slip,
        spec.mode,
        mem,
        streams,
        pairs,
        spec.quantum_cycles,
        spec.input_cycles,
        ntasks,
        spec.trace,
        spec.fastpath,
        extra_tracer,
    );
    if spec.host.is_on() {
        machine.enable_host_profile(crate::telemetry::Heartbeat::new(
            workload.name(),
            spec.host.heartbeat_secs,
            spec.host.expected_events,
        ));
    }
    let build_s = build_started.map_or(0.0, |t| t.elapsed().as_secs_f64());
    let sim_started = spec.host.is_on().then(std::time::Instant::now);
    let (result, trace, host_queue) = machine.run_full();
    let profile = host_queue.map(|queue| {
        let simulate_s = sim_started.map_or(0.0, |t| t.elapsed().as_secs_f64());
        let simulate_ns = (simulate_s * 1e9) as u64;
        let mut p = HostProfileData {
            engine: "serial",
            threads: 0,
            nodes: spec.nodes,
            events: result.host_events,
            sim_cycles: result.exec_cycles,
            phases: crate::telemetry::PhaseTimes {
                build_s,
                simulate_s,
                ..Default::default()
            },
            workers: vec![crate::telemetry::WorkerStats {
                busy_ns: simulate_ns,
                events: result.host_events,
                ..Default::default()
            }],
            queue,
            resources: Vec::new(),
        };
        p.fill_resources(&result);
        p
    });
    RunOutput { result, trace, profile }
}

/// Runs the sequential baseline: the whole problem as one task on a
/// one-node machine (all memory local, as with first-touch allocation).
/// This is the denominator of the paper's Figure 4.
pub fn run_sequential(workload: &dyn Workload) -> RunResult {
    run(workload, &RunSpec::new(1, ExecMode::Single))
}
