use std::cell::RefCell;
use std::rc::Rc;

use slipstream_kernel::config::{ArSyncMode, ExecMode, MachineConfig, SlipstreamConfig};
use slipstream_kernel::{Cycle, EventQueue, TaskId};
use slipstream_mem::{
    Access, AccessKind, Completion, FanoutTracer, MemEvent, MemSched, MemSystem, MemTracer,
    StreamRole, SyncOp,
};
use slipstream_prog::{Op, ProgramIter, Space};

use crate::pdes::{NodePart, NodeRec, RecordingTracer, SamplePart, WireMsg};
use crate::report::{RunResult, StreamReport};
use crate::stream::{BlockKind, PairState, StreamExec, StreamState};
use crate::telemetry::{Heartbeat, Histogram, QueueStats, QUEUE_SAMPLE_PERIOD};
use crate::trace::{IntervalSample, TraceConfig, TraceData, TraceKind, TraceState};

/// Serial-loop host-profiling state ([`crate::telemetry`]): queue-lane
/// occupancy histograms plus the optional progress heartbeat. Boxed so
/// the unprofiled machine carries one pointer.
#[derive(Debug)]
struct HostState {
    ring: Histogram,
    heap: Histogram,
    heartbeat: Option<Heartbeat>,
}

/// Global simulation events: memory-system internals plus processor
/// resumptions. `epoch` guards against stale resumes after an A-stream is
/// killed and reforked.
#[derive(Debug)]
enum Ev {
    Mem(MemEvent),
    Resume { stream: usize, epoch: u64 },
}

/// Adapter giving the memory system access to the global event queue.
struct QW<'a>(&'a mut EventQueue<Ev>);

impl MemSched for QW<'_> {
    fn sched(&mut self, at: Cycle, ev: MemEvent) {
        self.0.push(at, Ev::Mem(ev));
    }
}

/// Outcome of executing one operation.
enum Step {
    /// Op retired; advance local time by this many cycles of busy work.
    Continue(u64),
    /// Stream blocked (state already updated); yield the processor.
    Blocked,
}

/// The assembled machine: processors executing task programs over the
/// memory system, under one of the three execution modes of Figure 2.
///
/// Constructed by [`crate::run`]; use that unless you are building custom
/// placements.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    slip: SlipstreamConfig,
    mode: ExecMode,
    mem: MemSystem,
    q: EventQueue<Ev>,
    streams: Vec<StreamExec>,
    epochs: Vec<u64>,
    pairs: Vec<PairState>,
    /// cpu.flat(2) -> stream index.
    cpu_map: Vec<Option<usize>>,
    recoveries: u64,
    /// Maximum cycles a CPU may run ahead of global time inside a quantum.
    quantum_cycles: u64,
    /// Cost of an `Input` (system call / I/O) operation for the R-stream.
    input_cycles: u64,
    name: String,
    nodes: u16,
    tasks: usize,
    /// Live trace collection, when the run is traced ([`TraceConfig`]
    /// enabled). `None` on the default path: no buffer exists and the
    /// main loop pays one `Option` check per event.
    trace: Option<TraceState>,
    /// Batched fast-path execution: when a stream yields and its `Resume`
    /// would be the very next event popped anyway, continue executing it
    /// inline instead of round-tripping through the event queue. Results
    /// are bit-identical either way (asserted by the differential tests in
    /// `crates/bench/tests/determinism.rs`); the knob exists for those
    /// tests and for debugging.
    fastpath: bool,
    /// Host-side events processed (popped events + inline resumes). An
    /// inline resume counts exactly like the queue round-trip it replaces,
    /// so `RunResult::host_events` is identical with the fast path on or
    /// off.
    host_events: u64,
    /// Exclusive time bound of the current PDES epoch (`crate::pdes`):
    /// streams may not execute globally visible work at or past it.
    /// `u64::MAX` on the serial path, where it never gates anything.
    run_bound: Cycle,
    /// Arrival time of the earliest unconsumed cross-partition message,
    /// `u64::MAX` when the inbox is drained (and always on the serial
    /// path). Cached from `inbox[inbox_cursor]` for the inline-resume gate.
    inbox_next: Cycle,
    /// Cross-partition arrivals for this node, ordered by the deterministic
    /// `(at, src, seq)` merge key; `inbox_cursor` marks the consumed
    /// prefix. Always empty on the serial path.
    inbox: Vec<WireMsg>,
    inbox_cursor: usize,
    /// PDES record sink: machine-level trace events captured per node for
    /// the post-run deterministic merge. `None` on the serial path.
    pdes_sink: Option<Rc<RefCell<Vec<NodeRec>>>>,
    /// Host-profiling state for the serial loop; `None` (the default)
    /// costs the main loop one pointer-null check per event. PDES node
    /// machines keep this `None` — the driver samples them at epoch
    /// barriers instead.
    host: Option<Box<HostState>>,
}

impl Machine {
    /// Assembles a machine from pre-built streams. `pairs` links R/A
    /// stream indices in slipstream mode (empty otherwise).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        name: String,
        cfg: MachineConfig,
        slip: SlipstreamConfig,
        mode: ExecMode,
        mut mem: MemSystem,
        streams: Vec<StreamExec>,
        pairs: Vec<PairState>,
        quantum_cycles: u64,
        input_cycles: u64,
        tasks: usize,
        trace_cfg: TraceConfig,
        fastpath: bool,
        extra_tracer: Option<Box<dyn MemTracer>>,
    ) -> Machine {
        let mut recorder: Option<Box<dyn MemTracer>> = None;
        let trace = if trace_cfg.enabled() {
            let (state, rec) = TraceState::new(trace_cfg);
            recorder = Some(Box::new(rec));
            Some(state)
        } else {
            None
        };
        match (recorder, extra_tracer) {
            (Some(r), Some(e)) => mem.set_tracer(Box::new(FanoutTracer::new(vec![r, e]))),
            (Some(r), None) => mem.set_tracer(r),
            (None, Some(e)) => mem.set_tracer(e),
            (None, None) => {}
        }
        let mut cpu_map = vec![None; cfg.nodes as usize * 2];
        for (i, s) in streams.iter().enumerate() {
            let slot = s.cpu.flat(2);
            assert!(cpu_map[slot].is_none(), "two streams on {}", s.cpu);
            cpu_map[slot] = Some(i);
        }
        let nodes = cfg.nodes;
        let epochs = vec![0; streams.len()];
        // Every stream keeps a handful of events in flight (a resume plus a
        // few memory-system events); reserve up front so the steady-state
        // loop never grows the heap.
        let q = EventQueue::with_capacity(streams.len() * 8 + 64);
        Machine {
            cfg,
            slip,
            mode,
            mem,
            q,
            streams,
            epochs,
            pairs,
            cpu_map,
            recoveries: 0,
            quantum_cycles,
            input_cycles,
            name,
            nodes,
            tasks,
            trace,
            fastpath,
            host_events: 0,
            run_bound: Cycle(u64::MAX),
            inbox_next: Cycle(u64::MAX),
            inbox: Vec::new(),
            inbox_cursor: 0,
            pdes_sink: None,
            host: None,
        }
    }

    /// Enables host-side profiling for the serial loop: queue-occupancy
    /// sampling every [`QUEUE_SAMPLE_PERIOD`] events and, when given, a
    /// progress heartbeat. Strictly observational — results are
    /// bit-identical with profiling on or off.
    pub(crate) fn enable_host_profile(&mut self, heartbeat: Option<Heartbeat>) {
        self.host = Some(Box::new(HostState {
            ring: Histogram::new(),
            heap: Histogram::new(),
            heartbeat,
        }));
    }

    /// Records one queue-occupancy sample and drives the heartbeat.
    /// Out-of-line: the hot loop only pays the `is_some` check.
    #[cold]
    fn host_sample(&mut self) {
        let ring = self.q.lane_len() as u64;
        let heap = self.q.heap_len() as u64;
        let h = self.host.as_mut().expect("host profiling enabled");
        h.ring.record(ring);
        h.heap.record(heap);
        if let Some(hb) = h.heartbeat.as_mut() {
            hb.maybe_beat(self.host_events);
        }
    }

    /// Runs the machine to completion and reports the results.
    ///
    /// # Panics
    ///
    /// Panics if the run deadlocks (streams blocked with an empty event
    /// queue) or the memory system fails its quiescence check — both
    /// indicate bugs, not valid results.
    pub fn run(self) -> RunResult {
        self.run_traced().0
    }

    /// Runs the machine to completion, additionally returning the
    /// collected [`TraceData`] when the machine was assembled with an
    /// enabled [`TraceConfig`]. The [`RunResult`] is bit-identical to an
    /// untraced run: tracing is observation only.
    pub fn run_traced(self) -> (RunResult, Option<TraceData>) {
        let (result, trace, _) = self.run_full();
        (result, trace)
    }

    /// [`Machine::run_traced`] plus the host-profiler's queue statistics
    /// when [`Machine::enable_host_profile`] was called (`None`
    /// otherwise).
    pub(crate) fn run_full(mut self) -> (RunResult, Option<TraceData>, Option<QueueStats>) {
        // A-streams start first: at equal timestamps the reduced stream
        // must get to run ahead, or an R-stream with an empty first session
        // would misread it as deviated before it ever executed.
        for (i, s) in self.streams.iter().enumerate() {
            if s.role == StreamRole::A {
                self.q.push(Cycle::ZERO, Ev::Resume { stream: i, epoch: 0 });
            }
        }
        for (i, s) in self.streams.iter().enumerate() {
            if s.role != StreamRole::A {
                self.q.push(Cycle::ZERO, Ev::Resume { stream: i, epoch: 0 });
            }
        }
        let mut out: Vec<Completion> = Vec::new();
        while let Some((t, ev)) = self.q.pop() {
            self.host_events += 1;
            if self.host.is_some() && self.host_events.is_multiple_of(QUEUE_SAMPLE_PERIOD) {
                self.host_sample();
            }
            if self.trace.as_ref().is_some_and(|ts| t >= ts.next_sample) {
                self.take_samples(t, self.host_events);
            }
            match ev {
                Ev::Resume { stream, epoch } => {
                    if self.epochs[stream] == epoch
                        && self.streams[stream].state == StreamState::Ready
                    {
                        self.run_stream(stream, t, true);
                    }
                }
                Ev::Mem(me) => {
                    out.clear();
                    self.mem.handle_event(t, me, &mut QW(&mut self.q), &mut out);
                    // `out` is local; completions are Copy, so the buffer
                    // is reused across events without reallocating.
                    let batch = std::mem::take(&mut out);
                    for (k, &c) in batch.iter().enumerate() {
                        // Inline continuation is only safe for the last
                        // completion of the batch: an earlier stream must
                        // not run ahead of state changes the remaining
                        // completions are about to apply.
                        self.on_completion(t, c, k + 1 == batch.len());
                    }
                    out = batch;
                }
            }
        }
        // Everyone must have finished; anything else is a deadlock.
        if self.streams.iter().any(|s| s.state != StreamState::Done) {
            for (i, s) in self.streams.iter().enumerate() {
                eprintln!(
                    "stream {i}: {} {:?} {} state={:?} pending={:?} finish={:?}",
                    s.cpu, s.role, s.task, s.state, s.pending_op, s.finish
                );
            }
            if let Err(e) = self.mem.check_quiescent() {
                eprintln!("memory system: {e}");
            }
            panic!("deadlock: streams blocked with an empty event queue");
        }
        self.mem
            .check_quiescent()
            .unwrap_or_else(|e| panic!("memory system not quiescent at end of run: {e}"));
        self.mem.finalize();
        let exec_cycles = self
            .streams
            .iter()
            .filter(|s| s.role != StreamRole::A)
            .map(|s| s.finish.expect("finished").raw())
            .max()
            .unwrap_or(0);
        // Package collected trace state. Must happen before `take_stats`
        // below: the closing interval sample snapshots the live counters.
        let host_events = self.host_events;
        let trace = self.trace.take().map(|mut ts| {
            if ts.cfg.interval > 0 {
                let sample = self.sample_at(exec_cycles, host_events);
                ts.samples.push(sample);
            }
            // Drop the memory system's recorder so ours is the only
            // handle left on the shared buffer.
            drop(self.mem.clear_tracer());
            let buf = Rc::try_unwrap(ts.buf)
                .expect("trace buffer uniquely owned once the recorder is detached")
                .into_inner();
            TraceData::assemble(
                ts.cfg,
                buf,
                ts.samples,
                self.q.total_pushed(),
                self.q.high_water(),
                exec_cycles,
            )
        });
        let host_queue = self.host.take().map(|h| QueueStats {
            total_pushed: self.q.total_pushed(),
            heap_pushes: self.q.heap_pushes(),
            high_water: self.q.high_water() as u64,
            ring_occupancy: h.ring,
            heap_occupancy: h.heap,
        });
        let streams = self.stream_reports();
        let result = RunResult {
            name: self.name,
            mode: self.mode,
            nodes: self.nodes,
            tasks: self.tasks,
            exec_cycles,
            streams,
            mem: self.mem.take_stats(),
            recoveries: self.recoveries,
            host_events,
        };
        (result, trace, host_queue)
    }

    fn stream_reports(&self) -> Vec<StreamReport> {
        self.streams
            .iter()
            .map(|s| StreamReport {
                cpu: s.cpu,
                role: s.role,
                task: s.task,
                finish: s.finish.expect("finished").raw(),
                breakdown: s.breakdown,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Conservative parallel execution (see `crate::pdes`)
    //
    // Under the parallel engine each `Machine` simulates exactly one node:
    // its streams, its L1s/L2, and the directory homes it owns (a
    // single-node `MemSystem` partition). The driver advances every node
    // machine epoch by epoch; these methods are the per-node half of that
    // protocol. The serial path never calls them.
    // ------------------------------------------------------------------

    /// Seeds the initial resume events (A-streams first, exactly as
    /// [`Machine::run_traced`] does) and, when the run is traced or
    /// checked, installs the per-node record sink whose contents the
    /// driver merges deterministically after the run.
    pub(crate) fn pdes_start(
        &mut self,
        sink: Option<Rc<RefCell<Vec<NodeRec>>>>,
        capture_access: bool,
    ) {
        debug_assert!(self.trace.is_none(), "node machines are assembled untraced");
        if let Some(sink) = sink {
            self.pdes_sink = Some(Rc::clone(&sink));
            self.mem.set_tracer(Box::new(RecordingTracer::new(sink, capture_access)));
        }
        for (i, s) in self.streams.iter().enumerate() {
            if s.role == StreamRole::A {
                self.q.push(Cycle::ZERO, Ev::Resume { stream: i, epoch: 0 });
            }
        }
        for (i, s) in self.streams.iter().enumerate() {
            if s.role != StreamRole::A {
                self.q.push(Cycle::ZERO, Ev::Resume { stream: i, epoch: 0 });
            }
        }
    }

    /// Current two-lane queue depths `(ring, heap)`. The PDES driver
    /// samples these at epoch barriers when host profiling is on.
    pub(crate) fn queue_depths(&self) -> (usize, usize) {
        (self.q.lane_len(), self.q.heap_len())
    }

    /// Host events executed so far. The PDES driver reads this between
    /// epochs for heartbeat progress and per-epoch event counts.
    pub(crate) fn host_events_so_far(&self) -> u64 {
        self.host_events
    }

    /// The earliest pending work time on this node — the queue's next
    /// event or the next unconsumed cross-partition arrival — or `None`
    /// when the node is idle. The global minimum over all nodes decides
    /// the next epoch bound (and termination, when every node is idle).
    pub(crate) fn pdes_next_time(&mut self) -> Option<Cycle> {
        let q = self.q.peek_time();
        let i = (self.inbox_next.raw() != u64::MAX).then_some(self.inbox_next);
        match (q, i) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn refresh_inbox_next(&mut self) {
        self.inbox_next = match self.inbox.get(self.inbox_cursor) {
            Some(w) => w.at,
            None => Cycle(u64::MAX),
        };
    }

    /// Merges newly arrived cross-partition messages into this node's
    /// inbox. The lookahead guarantee means every arrival — and every
    /// not-yet-consumed older entry — fires at or after the epoch bound
    /// just completed, so only the unconsumed tail needs sorting. The sort
    /// key `(at, src, seq)` is the fixed global merge order that makes
    /// results independent of the worker count.
    pub(crate) fn pdes_deliver(&mut self, arrivals: &mut Vec<WireMsg>) {
        if self.inbox_cursor == self.inbox.len() {
            self.inbox.clear();
            self.inbox_cursor = 0;
        }
        if !arrivals.is_empty() {
            self.inbox.append(arrivals);
            self.inbox[self.inbox_cursor..].sort_unstable_by_key(|w| (w.at, w.src, w.seq));
        }
        self.refresh_inbox_next();
    }

    /// Advances this node up to (but excluding) `bound`, the current epoch
    /// horizon. Queue events and inbox arrivals are consumed in time
    /// order, local-first on ties (an equal-time arrival cannot affect the
    /// local event: network-port service takes at least one cycle).
    /// Cross-partition `NetOut` sends are intercepted at their pop — the
    /// source node pays its port/accounting costs via
    /// [`MemSystem::net_out`] — and diverted into `outbox` instead of the
    /// local queue; `send_seq` numbers them in send order, the per-source
    /// component of the deterministic merge key.
    pub(crate) fn pdes_run_until(
        &mut self,
        bound: Cycle,
        outbox: &mut Vec<WireMsg>,
        send_seq: &mut u64,
    ) {
        self.run_bound = bound;
        let own = self.streams[0].cpu.node();
        let mut out: Vec<Completion> = Vec::new();
        loop {
            let qt = self.q.peek_time();
            let take_inbox = match qt {
                Some(q) => self.inbox_next < q,
                None => self.inbox_next.raw() != u64::MAX,
            };
            let (t, inbox_msg) = if take_inbox {
                let w = &self.inbox[self.inbox_cursor];
                (w.at, Some(w.msg.clone()))
            } else {
                match qt {
                    Some(t) => (t, None),
                    None => break,
                }
            };
            if t >= bound {
                break;
            }
            self.host_events += 1;
            let ev = match inbox_msg {
                Some(msg) => {
                    self.inbox_cursor += 1;
                    self.refresh_inbox_next();
                    Ev::Mem(MemEvent::NetIn(msg))
                }
                None => self.q.pop().expect("peeked event").1,
            };
            match ev {
                Ev::Resume { stream, epoch } => {
                    if self.epochs[stream] == epoch
                        && self.streams[stream].state == StreamState::Ready
                    {
                        self.run_stream(stream, t, true);
                    }
                }
                Ev::Mem(MemEvent::NetOut(msg)) if msg.dst != own => {
                    let at = self.mem.net_out(t, &msg);
                    *send_seq += 1;
                    outbox.push(WireMsg { at, src: own.0, seq: *send_seq, msg });
                }
                Ev::Mem(me) => {
                    out.clear();
                    self.mem.handle_event(t, me, &mut QW(&mut self.q), &mut out);
                    let batch = std::mem::take(&mut out);
                    for (k, &c) in batch.iter().enumerate() {
                        self.on_completion(t, c, k + 1 == batch.len());
                    }
                    out = batch;
                }
            }
        }
    }

    /// Snapshot of this node's contribution to an interval sample, taken
    /// at an epoch barrier; the driver concatenates parts in node order.
    pub(crate) fn pdes_sample_part(&self) -> SamplePart {
        SamplePart {
            stats: self.mem.stats().clone(),
            pairs: self
                .pairs
                .iter()
                .map(|p| (p.a_session as i64 - p.r_session as i64, p.tokens))
                .collect(),
            queue_len: self.q.len() + (self.inbox.len() - self.inbox_cursor),
            host_events: self.host_events,
            recoveries: self.recoveries,
        }
    }

    /// Tears down a node machine after global termination: the same
    /// deadlock and quiescence checks as the serial loop, then this node's
    /// share of the run results for the driver to merge.
    pub(crate) fn pdes_finish(mut self) -> NodePart {
        if self.streams.iter().any(|s| s.state != StreamState::Done) {
            for (i, s) in self.streams.iter().enumerate() {
                eprintln!(
                    "stream {i}: {} {:?} {} state={:?} pending={:?} finish={:?}",
                    s.cpu, s.role, s.task, s.state, s.pending_op, s.finish
                );
            }
            if let Err(e) = self.mem.check_quiescent() {
                eprintln!("memory system: {e}");
            }
            panic!("deadlock: streams blocked with every queue and inbox drained");
        }
        self.mem
            .check_quiescent()
            .unwrap_or_else(|e| panic!("memory system not quiescent at end of run: {e}"));
        self.mem.finalize();
        drop(self.mem.clear_tracer());
        let records = self.pdes_sink.take().map_or_else(Vec::new, |s| {
            Rc::try_unwrap(s)
                .expect("record sink uniquely owned once the recorder is detached")
                .into_inner()
        });
        NodePart {
            streams: self.stream_reports(),
            pairs: self
                .pairs
                .iter()
                .map(|p| (p.a_session as i64 - p.r_session as i64, p.tokens))
                .collect(),
            stats: self.mem.take_stats(),
            recoveries: self.recoveries,
            host_events: self.host_events,
            queue_pushed: self.q.total_pushed(),
            queue_high_water: self.q.high_water(),
            queue_heap_pushes: self.q.heap_pushes(),
            records,
        }
    }

    // ------------------------------------------------------------------
    // Trace collection
    // ------------------------------------------------------------------

    /// Records a machine-level trace event (recoveries, session ends).
    fn trace_event(&mut self, t: Cycle, kind: TraceKind) {
        if let Some(ts) = self.trace.as_ref() {
            ts.buf.borrow_mut().push(t, kind);
        } else if let Some(sink) = self.pdes_sink.as_ref() {
            sink.borrow_mut().push(NodeRec::Machine(t, kind));
        }
    }

    /// Emits interval samples for every boundary at or before `t`.
    fn take_samples(&mut self, t: Cycle, host_events: u64) {
        let Some(mut ts) = self.trace.take() else { return };
        if ts.cfg.interval > 0 {
            while t >= ts.next_sample {
                let sample = self.sample_at(ts.next_sample.raw(), host_events);
                ts.samples.push(sample);
                ts.next_sample += ts.cfg.interval;
            }
        }
        self.trace = Some(ts);
    }

    /// Snapshots run state as of `cycle` (counters are cumulative).
    fn sample_at(&self, cycle: u64, host_events: u64) -> IntervalSample {
        IntervalSample {
            cycle,
            stats: self.mem.stats().clone(),
            run_ahead: self
                .pairs
                .iter()
                .map(|p| p.a_session as i64 - p.r_session as i64)
                .collect(),
            tokens: self.pairs.iter().map(|p| p.tokens).collect(),
            queue_len: self.q.len(),
            host_events,
            recoveries: self.recoveries,
        }
    }

    // ------------------------------------------------------------------
    // Stream execution
    // ------------------------------------------------------------------

    /// Fast-path gate at a yield point: a `Resume` pushed at `local` would
    /// be the very next event popped iff no queued event fires at or before
    /// `local` (an equal-time event holds a smaller sequence number and
    /// would win the tie). In that case nothing can observe the machine
    /// between the push and the pop, so the round-trip is elided and the
    /// stream keeps executing inline. Mirrors the main loop's bookkeeping
    /// exactly: the resume counts as a host event and interval samples are
    /// taken at the same boundaries.
    /// Under the parallel engine two more conditions apply: the stream may
    /// not run past the epoch bound, and a pending cross-partition arrival
    /// at or before `local` must be merged in first (it would be a queued
    /// event in a serial run). Both sentinels are `u64::MAX` serially, so
    /// the extra compares never fire there.
    #[inline]
    fn inline_resume(&mut self, local: Cycle) -> bool {
        if !self.fastpath
            || local >= self.run_bound
            || self.inbox_next <= local
            || self.q.peek_time().is_some_and(|t| t <= local)
        {
            return false;
        }
        self.host_events += 1;
        if self.trace.as_ref().is_some_and(|ts| local >= ts.next_sample) {
            self.take_samples(local, self.host_events);
        }
        true
    }

    /// `allow_inline` is false when the caller still has work to do at the
    /// current timestamp (mid-batch completions): the stream must then
    /// yield through the queue so that work is applied first.
    fn run_stream(&mut self, i: usize, now: Cycle, allow_inline: bool) {
        let mut now = now;
        let mut local = now;
        let mut ops = 0u32;
        loop {
            let op = match self.streams[i].pending_op.take() {
                Some(op) => Some(op),
                None => self.streams[i].iter.next(),
            };
            let op = match op {
                Some(op) => op,
                None => {
                    self.finish_stream(i, local);
                    return;
                }
            };
            // Globally visible ops execute at their exact time; private
            // work may run up to a quantum ahead (see DESIGN.md §7).
            let exact = match op {
                Op::Load { space: Space::Shared, .. } | Op::Store { space: Space::Shared, .. } => {
                    true
                }
                Op::Input => true,
                ref o => o.is_sync(),
            };
            if exact && local > now {
                if allow_inline && self.inline_resume(local) {
                    // Continue as the freshly resumed quantum would: global
                    // time advances to `local`, the op executes exactly.
                    now = local;
                    ops = 0;
                } else {
                    self.streams[i].pending_op = Some(op);
                    self.streams[i].frontier = local;
                    let epoch = self.epochs[i];
                    self.q.push(local, Ev::Resume { stream: i, epoch });
                    return;
                }
            }
            ops += 1;
            match self.exec_op(i, op, local) {
                Step::Continue(cost) => {
                    self.streams[i].breakdown.busy += cost;
                    local += cost;
                }
                Step::Blocked => return,
            }
            if ops >= self.cfg.quantum_ops || (local - now).raw() >= self.quantum_cycles {
                if allow_inline && self.inline_resume(local) {
                    now = local;
                    ops = 0;
                } else {
                    self.streams[i].frontier = local;
                    let epoch = self.epochs[i];
                    self.q.push(local, Ev::Resume { stream: i, epoch });
                    return;
                }
            }
        }
    }

    fn exec_op(&mut self, i: usize, op: Op, at: Cycle) -> Step {
        let role = self.streams[i].role;
        match op {
            Op::Compute(n) => Step::Continue(n as u64),
            Op::DivergeInA(n) => {
                // Wrong-path work executed only by the speculative stream.
                if role.is_a() {
                    Step::Continue(n as u64)
                } else {
                    Step::Continue(0)
                }
            }
            Op::Load { addr, space } => {
                let shared = space == Space::Shared;
                let kind = if role.is_a() && shared && self.slip.transparent_loads {
                    let p = self.streams[i].pair.expect("A-stream has a pair");
                    let ahead = self.pairs[p].a_session > self.pairs[p].r_session;
                    if ahead || self.streams[i].lock_depth > 0 {
                        AccessKind::TransparentRead
                    } else {
                        AccessKind::Read
                    }
                } else {
                    AccessKind::Read
                };
                self.do_access(i, kind, addr, shared, at)
            }
            Op::Store { addr, space } => {
                let shared = space == Space::Shared;
                if role.is_a() && shared {
                    // §3.1: the store executes in the pipeline but is never
                    // committed. §3.3: convert to an exclusive prefetch when
                    // in the same session as the R-stream and outside
                    // critical sections.
                    let p = self.streams[i].pair.expect("A-stream has a pair");
                    let same_session = self.pairs[p].a_session == self.pairs[p].r_session;
                    if self.slip.exclusive_prefetch
                        && same_session
                        && self.streams[i].lock_depth == 0
                    {
                        let cpu = self.streams[i].cpu;
                        let _ = self.mem.access(
                            at,
                            cpu,
                            StreamRole::A,
                            AccessKind::ExclPrefetch,
                            addr,
                            true,
                            false,
                            &mut QW(&mut self.q),
                        );
                    }
                    Step::Continue(1)
                } else {
                    self.do_access(i, AccessKind::Write, addr, shared, at)
                }
            }
            Op::Barrier(id) => self.exec_session_end(i, SyncOp::BarrierArrive(id), op, at),
            Op::EventWait(id) => {
                let task = TaskId(self.streams[i].task.0);
                self.exec_session_end(i, SyncOp::EventWait(id, task), op, at)
            }
            Op::EventPost(id) => {
                if role.is_a() {
                    Step::Continue(1)
                } else {
                    let cpu = self.streams[i].cpu;
                    let _ = self.mem.sync(at, cpu, SyncOp::EventPost(id), &mut QW(&mut self.q));
                    Step::Continue(1)
                }
            }
            Op::Lock(id) => {
                if role.is_a() {
                    // Skipped, but tracked: the A-stream knows it is inside
                    // a critical section (transparent-load policy, §4.1).
                    self.streams[i].lock_depth += 1;
                    Step::Continue(1)
                } else {
                    let cpu = self.streams[i].cpu;
                    let tok = self.mem.sync(at, cpu, SyncOp::LockAcquire(id), &mut QW(&mut self.q));
                    self.streams[i].block(tok, BlockKind::Lock, at);
                    Step::Blocked
                }
            }
            Op::Unlock(id) => {
                let s = &mut self.streams[i];
                assert!(s.lock_depth > 0, "unlock without a held lock in {}", s.cpu);
                s.lock_depth -= 1;
                if role.is_a() {
                    Step::Continue(1)
                } else {
                    let cpu = self.streams[i].cpu;
                    let _ = self.mem.sync(at, cpu, SyncOp::LockRelease(id), &mut QW(&mut self.q));
                    if self.slip.self_invalidation && role == StreamRole::R {
                        // SI processing overlaps unlock synchronization.
                        let node = cpu.node();
                        self.mem.kick_si(at, node, &mut QW(&mut self.q));
                    }
                    Step::Continue(1)
                }
            }
            Op::Input => {
                if role.is_a() {
                    let p = self.streams[i].pair.expect("A-stream has a pair");
                    if self.pairs[p].r_done
                        || self.pairs[p].r_inputs_done > self.streams[i].inputs_taken
                    {
                        self.streams[i].inputs_taken += 1;
                        Step::Continue(1)
                    } else {
                        // Wait for the R-stream's result (§3.2).
                        self.streams[i].pending_op = Some(op);
                        self.streams[i].state = StreamState::WaitInput;
                        self.streams[i].blocked_at = at;
                        self.streams[i].frontier = at;
                        Step::Blocked
                    }
                } else {
                    if let Some(p) = self.streams[i].pair {
                        self.pairs[p].r_inputs_done += 1;
                        self.wake_a_if(p, StreamState::WaitInput, at);
                    }
                    Step::Continue(self.input_cycles)
                }
            }
        }
    }

    fn do_access(
        &mut self,
        i: usize,
        kind: AccessKind,
        addr: slipstream_kernel::Addr,
        shared: bool,
        at: Cycle,
    ) -> Step {
        let cpu = self.streams[i].cpu;
        let role = self.streams[i].role;
        let in_cs = self.streams[i].lock_depth > 0;
        match self.mem.access(at, cpu, role, kind, addr, shared, in_cs, &mut QW(&mut self.q)) {
            Access::HitL1 => Step::Continue(self.cfg.lat.l1_hit),
            Access::Accepted => Step::Continue(1),
            Access::Pending(tok) => {
                self.streams[i].block(tok, BlockKind::Mem, at);
                Step::Blocked
            }
        }
    }

    /// Executes a session-ending synchronization (barrier or event-wait).
    fn exec_session_end(&mut self, i: usize, sync: SyncOp, op: Op, at: Cycle) -> Step {
        let role = self.streams[i].role;
        if role.is_a() {
            // §3.2: the A-stream skips the synchronization but consumes a
            // token; with none available it waits for its R-stream.
            let p = self.streams[i].pair.expect("A-stream has a pair");
            if self.pairs[p].r_done {
                self.pairs[p].a_session += 1;
                return Step::Continue(1);
            }
            if self.pairs[p].tokens > 0 {
                self.pairs[p].tokens -= 1;
                self.pairs[p].a_session += 1;
                return Step::Continue(1);
            }
            self.streams[i].pending_op = Some(op);
            self.streams[i].state = StreamState::WaitToken;
            self.streams[i].blocked_at = at;
            self.streams[i].frontier = at;
            return Step::Blocked;
        }
        if role == StreamRole::R {
            let p = self.streams[i].pair.expect("R-stream has a pair");
            // Deviation check (§3.2): if the R-stream reaches the end of a
            // session before its A-stream, the A-stream has deviated. We
            // apply the check at session granularity — the A-stream is
            // deviated when it has not even *entered* the session the
            // R-stream is finishing. (A stricter positional check would
            // also kill healthy A-streams that the R-stream catches only
            // because it is riding their prefetches; see DESIGN.md.)
            let a_idx = self.pairs[p].a_idx;
            let deviated = self.streams[a_idx].state != StreamState::Done
                && self.pairs[p].a_session < self.pairs[p].r_session
                && !self.streams[a_idx].at_session_end();
            if deviated {
                self.recover_a(p, i, at);
            }
            // The R-stream has reached the end of its session: from here
            // on it counts as being in the next session, so A-stream loads
            // issued while R waits at the barrier are normal prefetches
            // rather than transparent loads (matches the paper's ~27%
            // average transparent fraction, Figure 9).
            self.pairs[p].r_session += 1;
            if self.trace.is_some() || self.pdes_sink.is_some() {
                let node = self.streams[i].cpu.node();
                let session = self.pairs[p].r_session;
                self.trace_event(at, TraceKind::SessionEnd { node, session });
            }
            self.adapt_step(p, at);
            if self.pairs[p].method.insert_on_entry() {
                self.insert_token(p, at);
            }
            if self.slip.self_invalidation {
                // §4.2: flagged lines are processed at the R-stream's sync
                // points, overlapped with the synchronization itself.
                let node = self.streams[i].cpu.node();
                self.mem.kick_si(at, node, &mut QW(&mut self.q));
            }
        }
        let cpu = self.streams[i].cpu;
        let tok = self.mem.sync(at, cpu, sync, &mut QW(&mut self.q));
        self.streams[i].block(tok, BlockKind::Barrier, at);
        Step::Blocked
    }

    /// §3.2 recovery: kill the deviated A-stream and fork a fresh copy of
    /// the R-stream's current state.
    fn recover_a(&mut self, p: usize, r_idx: usize, now: Cycle) {
        if std::env::var_os("SLIP_DEBUG").is_some() {
            let a_idx = self.pairs[p].a_idx;
            eprintln!(
                "RECOVER t={} pair={} r_session={} a_session={} a_state={:?} a_pending={:?}",
                now.raw(),
                p,
                self.pairs[p].r_session,
                self.pairs[p].a_session,
                self.streams[a_idx].state,
                self.streams[a_idx].pending_op,
            );
        }
        self.recoveries += 1;
        let a_idx = self.pairs[p].a_idx;
        self.trace_event(
            now,
            TraceKind::Recovery {
                node: self.streams[a_idx].cpu.node(),
                r_session: self.pairs[p].r_session,
                a_session: self.pairs[p].a_session,
            },
        );
        // Close out the killed A-stream's time accounting before resetting
        // it: any open wait ends here (classified as A-R synchronization —
        // the stream was stalled by the pairing protocol, not by its own
        // work), and the gap until the reforked copy restarts is recovery
        // overhead, also A-R synchronization. If the stream had busy time
        // pre-accounted beyond the restart point (it was mid-quantum), that
        // work is discarded with the kill, so the excess is returned.
        {
            let a = &mut self.streams[a_idx];
            match a.state {
                StreamState::Blocked(_, kind) => a.attribute_wait(kind, now),
                StreamState::WaitToken | StreamState::WaitInput => {
                    a.attribute_wait(BlockKind::ArSync, now)
                }
                StreamState::Ready => {}
                StreamState::Done => unreachable!("deviation check excludes finished A-streams"),
            }
            let restart = now + self.slip.refork_penalty;
            if restart >= a.frontier {
                a.breakdown.ar_sync += restart.since(a.frontier).raw();
            } else {
                a.breakdown.busy -= a.frontier.since(restart).raw();
            }
            a.frontier = restart;
        }
        // Fork semantics: the new A-stream is a copy of the R-stream at
        // its current position (it has just consumed the session-ending
        // sync op, which the A-stream would skip anyway).
        let fork: ProgramIter = self.streams[r_idx].iter.clone();
        let r_lock_depth = self.streams[r_idx].lock_depth;
        let a = &mut self.streams[a_idx];
        a.iter = fork;
        a.pending_op = None;
        a.lock_depth = r_lock_depth;
        a.state = StreamState::Ready;
        a.inputs_taken = self.pairs[p].r_inputs_done;
        self.pairs[p].a_session = self.pairs[p].r_session + 1;
        self.pairs[p].tokens = self.pairs[p].method.initial_tokens();
        // Invalidate any in-flight resume/completion for the old A-stream.
        self.epochs[a_idx] += 1;
        let epoch = self.epochs[a_idx];
        self.q.push(now + self.slip.refork_penalty, Ev::Resume { stream: a_idx, epoch });
    }

    /// Advances the adaptive A-R sampler (§6): once the current window has
    /// run `adapt_window` sessions, score it by elapsed cycles and move to
    /// the next method — or, after all four, lock in the fastest.
    fn adapt_step(&mut self, p: usize, now: Cycle) {
        let window = self.slip.adapt_window.max(1);
        let pair = &mut self.pairs[p];
        let Some(adapt) = pair.adapt.as_mut() else { return };
        adapt.sessions += 1;
        if adapt.sessions < window {
            return;
        }
        let elapsed = now.since(adapt.window_start).raw();
        adapt.scores.push((ArSyncMode::ALL[adapt.next], elapsed));
        adapt.next += 1;
        adapt.sessions = 0;
        adapt.window_start = now;
        if adapt.next < ArSyncMode::ALL.len() {
            pair.method = ArSyncMode::ALL[adapt.next];
        } else {
            let (best, _) = adapt
                .scores
                .iter()
                .copied()
                .min_by_key(|&(_, cycles)| cycles)
                .expect("four windows scored");
            pair.method = best;
            pair.adapt = None;
        }
        // A loosened token budget takes effect immediately; a tightened
        // one converges as the A-stream consumes its banked tokens.
        if pair.method.initial_tokens() > 0 && pair.tokens == 0 {
            self.insert_token(p, now);
        }
    }

    /// R-stream inserts a token; wakes a token-waiting A-stream.
    fn insert_token(&mut self, p: usize, now: Cycle) {
        let pair = &mut self.pairs[p];
        if pair.tokens < self.slip.max_tokens {
            pair.tokens += 1;
        }
        self.wake_a_if(p, StreamState::WaitToken, now);
    }

    /// Wakes the pair's A-stream if it is parked in `state`.
    fn wake_a_if(&mut self, p: usize, state: StreamState, now: Cycle) {
        let a_idx = self.pairs[p].a_idx;
        if self.streams[a_idx].state == state {
            self.streams[a_idx].attribute_wait(BlockKind::ArSync, now);
            self.streams[a_idx].state = StreamState::Ready;
            let epoch = self.epochs[a_idx];
            self.q.push(now, Ev::Resume { stream: a_idx, epoch });
        }
    }

    fn finish_stream(&mut self, i: usize, at: Cycle) {
        self.streams[i].state = StreamState::Done;
        self.streams[i].finish = Some(at);
        self.streams[i].frontier = at;
        if self.streams[i].role == StreamRole::R {
            if let Some(p) = self.streams[i].pair {
                self.pairs[p].r_done = true;
                // Release an A-stream stuck on tokens or inputs.
                self.wake_a_if(p, StreamState::WaitToken, at);
                self.wake_a_if(p, StreamState::WaitInput, at);
            }
        }
    }

    fn on_completion(&mut self, t: Cycle, c: Completion, last_in_batch: bool) {
        let idx = match self.cpu_map[c.cpu.flat(2)] {
            Some(i) => i,
            None => return,
        };
        match self.streams[idx].state {
            StreamState::Blocked(tok, kind) if tok == c.token => {
                self.streams[idx].attribute_wait(kind, t);
                match kind {
                    BlockKind::Lock => self.streams[idx].lock_depth += 1,
                    BlockKind::Barrier if self.streams[idx].role == StreamRole::R => {
                        // Barrier/event exit: global A-R sync methods
                        // insert the token only now (the session counter
                        // already rolled over at entry).
                        let p = self.streams[idx].pair.expect("R-stream has a pair");
                        if !self.pairs[p].method.insert_on_entry() {
                            self.insert_token(p, t);
                        }
                    }
                    _ => {}
                }
                self.streams[idx].state = StreamState::Ready;
                self.run_stream(idx, t, last_in_batch);
            }
            // Stale completion (e.g. for a killed A-stream); drop it.
            _ => {}
        }
    }
}
