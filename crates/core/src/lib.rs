//! Slipstream execution mode for CMP-based multiprocessors.
//!
//! This crate is the paper's primary contribution: a *mode of execution*
//! that uses the second processor of each dual-processor CMP node to run a
//! reduced copy (the **A-stream**) of the task running on the first
//! processor (the **R-stream**), instead of a second independent parallel
//! task. The A-stream skips synchronization and squashes shared-memory
//! stores, so it runs ahead and
//!
//! * prefetches shared data into the node's shared L2 (§3), and
//! * (optionally) issues *transparent loads* whose future-sharer hints
//!   drive directory-based *self-invalidation* (§4).
//!
//! The crate provides:
//!
//! * [`Workload`] — how applications describe their parallel kernels;
//! * [`Machine`] — the full-machine simulator driving processors, the
//!   memory system, and the slipstream runtime;
//! * [`run`] / [`RunSpec`] — one-call experiment execution;
//! * [`RunResult`] / [`TimeBreakdown`] — the measurements used to
//!   regenerate every figure of the paper.
//!
//! # Quick start
//!
//! ```
//! use slipstream_core::{run, RunSpec, Workload, TaskBuilderFn};
//! use slipstream_kernel::config::ExecMode;
//! use slipstream_prog::{Layout, ProgBuilder, Op, BarrierId};
//!
//! /// A toy kernel: every task streams over a shared block, then barriers.
//! struct Stream1K;
//! impl Workload for Stream1K {
//!     fn name(&self) -> &str { "stream1k" }
//!     fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
//!         let data = layout.shared("data", 64 * 1024);
//!         Box::new(move |_layout, _inst, task| {
//!             let chunk = 64 * 1024 / ntasks as u64;
//!             let base = data.at_byte(task as u64 * chunk);
//!             let mut b = ProgBuilder::new();
//!             b.for_n(chunk / 64, move |b| {
//!                 b.gen(move |ctx| Op::load_shared(
//!                     slipstream_kernel::Addr(base.0 + ctx.i(0) * 64)));
//!                 b.compute(8);
//!             });
//!             b.barrier(BarrierId(0));
//!             b.build("stream1k")
//!         })
//!     }
//! }
//!
//! let result = run(&Stream1K, &RunSpec::new(4, ExecMode::Slipstream));
//! assert!(result.exec_cycles > 0);
//! ```

mod machine;
mod pdes;
mod report;
mod runner;
mod stream;
pub mod telemetry;
mod trace;
mod workload;

pub use machine::Machine;
pub use report::{RunResult, StreamReport, TimeBreakdown};
pub use runner::{
    run, run_full, run_full_with_tracer, run_sequential, run_traced, run_with_tracer, RunOutput,
    RunSpec,
};
pub use telemetry::{HostProfile, HostProfileData, HOST_PROFILE_SCHEMA};
pub use stream::{BlockKind, StreamState};
pub use trace::{
    run_result_json, AccessCounts, IntervalSample, LineCounters, TraceConfig, TraceData,
    TraceKind, TraceRecord,
};
pub use workload::{TaskBuilderFn, Workload};

// Re-exports so downstream crates can configure runs without importing the
// whole stack.
pub use slipstream_kernel::config::{
    ArSyncMode, DirScheme, ExecMode, MachineConfig, OverflowPolicy, SlipstreamConfig,
};
pub use slipstream_mem::{ClassCounts, MemStats, RequestClass, StreamRole};
