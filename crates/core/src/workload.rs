use slipstream_prog::{InstanceId, Layout, Program};

/// Builds the program for one task: `(layout, instance, task_index)`.
///
/// The builder is called once per *stream instance*: in slipstream mode the
/// A-stream copy of task `t` gets its own call with a distinct
/// [`InstanceId`], so its private allocations are disjoint from the
/// R-stream's (the paper: "each task has its own private data, but shared
/// data are not replicated"). Shared addresses must depend only on
/// `task_index`, never on the instance.
pub type TaskBuilderFn = Box<dyn Fn(&mut Layout, InstanceId, usize) -> Program>;

/// A parallel application, described as a set of per-task access-pattern
/// programs over a shared address space.
///
/// Implementations allocate their shared arrays once in
/// [`Workload::instantiate`] and capture the handles in the returned
/// builder. See the crate-level example.
///
/// `Send + Sync` lets the bench harness share one workload description
/// across executor threads; a workload is a pure description (allocation
/// happens per run inside `instantiate`), so this costs implementations
/// nothing.
pub trait Workload: Send + Sync {
    /// Benchmark name (used in reports).
    fn name(&self) -> &str;

    /// Whether to use the 128 KB L2 of the paper's Water configuration
    /// (Table 1 footnote) instead of the default 1 MB.
    fn small_l2(&self) -> bool {
        false
    }

    /// Allocates shared state for a run with `ntasks` parallel tasks and
    /// returns the per-task program factory.
    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn;
}
