//! Deviation detection and kill/refork recovery (§3.2): repeated
//! deviations, recovery under every A-R method, interaction with input
//! forwarding, and the epoch fencing of stale wakeups.

use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, TaskBuilderFn, Workload};
use slipstream_kernel::Addr;
use slipstream_prog::{BarrierId, Layout, Op, ProgBuilder};

/// A kernel whose A-stream takes a long wrong path in chosen iterations.
struct Deviator {
    iters: u64,
    /// Extra wrong-path cycles the A-stream burns per marked iteration.
    wrong_path: u32,
    /// Mark every `period`-th iteration (0 = never).
    period: u64,
    use_input: bool,
}

impl Workload for Deviator {
    fn name(&self) -> &str {
        "deviator"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let data = layout.shared("data", 256 * 64 * ntasks as u64);
        let iters = self.iters;
        let wrong = self.wrong_path;
        let period = self.period;
        let use_input = self.use_input;
        Box::new(move |_layout, _inst, task| {
            let base = data.base().0 + task as u64 * 256 * 64;
            let mut b = ProgBuilder::new();
            if use_input {
                b.op(Op::Input);
            }
            b.for_n(iters, move |b| {
                // Wrong-path burst in the marked iterations only.
                if period > 0 {
                    b.gen(move |ctx| {
                        if ctx.i(0) % period == period - 1 {
                            Op::DivergeInA(wrong)
                        } else {
                            Op::Compute(1)
                        }
                    });
                }
                b.block(move |_, out| {
                    for l in 0..64u64 {
                        out.push(Op::load_shared(Addr(base + l * 64)));
                        out.push(Op::Compute(20));
                        out.push(Op::store_shared(Addr(base + l * 64)));
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("deviator")
        })
    }
}

#[test]
fn periodic_deviations_recover_repeatedly() {
    let w = Deviator { iters: 8, wrong_path: 3_000_000, period: 3, use_input: false };
    let r = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    assert!(r.recoveries >= 2, "expected repeated recoveries, got {}", r.recoveries);
    assert!(r.exec_cycles > 0);
}

#[test]
fn recovery_works_under_every_ar_method() {
    let w = Deviator { iters: 5, wrong_path: 3_000_000, period: 2, use_input: false };
    for ar in ArSyncMode::ALL {
        let spec =
            RunSpec::new(2, ExecMode::Slipstream).with_slip(SlipstreamConfig::prefetch_only(ar));
        let r = run(&w, &spec);
        assert!(r.recoveries > 0, "{ar}: no recovery despite divergence");
    }
}

#[test]
fn recovery_composes_with_input_forwarding() {
    let w = Deviator { iters: 6, wrong_path: 3_000_000, period: 2, use_input: true };
    let r = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    assert!(r.recoveries > 0);
    assert!(r.exec_cycles > 0);
}

#[test]
fn healthy_kernels_never_recover() {
    let w = Deviator { iters: 8, wrong_path: 0, period: 0, use_input: false };
    for ar in ArSyncMode::ALL {
        let spec = RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ar));
        let r = run(&w, &spec);
        assert_eq!(r.recoveries, 0, "{ar}: spurious recovery");
    }
}

#[test]
fn recovery_penalty_is_visible() {
    // With divergence, slipstream should still complete but pay for
    // recoveries: more cycles than the clean version of the same kernel.
    let clean = Deviator { iters: 6, wrong_path: 0, period: 0, use_input: false };
    let dirty = Deviator { iters: 6, wrong_path: 3_000_000, period: 2, use_input: false };
    let rc = run(&clean, &RunSpec::new(2, ExecMode::Slipstream));
    let rd = run(&dirty, &RunSpec::new(2, ExecMode::Slipstream));
    assert!(rd.exec_cycles >= rc.exec_cycles);
    // And the deviating A-stream must not slow the R-stream down to worse
    // than ~single-mode behaviour (the A-stream is expendable).
    let single = run(&dirty, &RunSpec::new(2, ExecMode::Single));
    assert!(
        (rd.exec_cycles as f64) < single.exec_cycles as f64 * 1.25,
        "recovery storms: slipstream {} vs single {}",
        rd.exec_cycles,
        single.exec_cycles
    );
}

#[test]
fn deviation_is_deterministic() {
    let w = Deviator { iters: 8, wrong_path: 3_000_000, period: 3, use_input: false };
    let a = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    let b = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.exec_cycles, b.exec_cycles);
}
