//! End-to-end tests of the execution modes: single, double, and slipstream
//! (with every A-R synchronization method, recovery, input forwarding,
//! critical sections, transparent loads, and self-invalidation).

use slipstream_core::{
    run, run_sequential, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, TaskBuilderFn, Workload,
};
use slipstream_kernel::Addr;
use slipstream_mem::StreamRole;
use slipstream_prog::{BarrierId, Layout, LockId, Op, ProgBuilder, Space};

/// A block-partitioned producer-consumer kernel: each iteration every task
/// reads its own chunk plus the neighbouring task's boundary lines, writes
/// its own chunk, and barriers. Knobs select extra behaviours under test.
struct Synth {
    iters: u64,
    lines_per_task: u64,
    compute_per_line: u32,
    use_lock: bool,
    use_input: bool,
    diverge: u32,
}

impl Default for Synth {
    fn default() -> Synth {
        Synth {
            iters: 4,
            lines_per_task: 64,
            compute_per_line: 4,
            use_lock: false,
            use_input: false,
            diverge: 0,
        }
    }
}

impl Workload for Synth {
    fn name(&self) -> &str {
        "synth"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let total_lines = self.lines_per_task * ntasks as u64;
        // Double-buffered shift kernel: in iteration i every task reads its
        // right neighbour's chunk from buffer i%2 and writes its own chunk
        // in buffer (i+1)%2, then barriers. All neighbour reads are
        // coherence misses (the producer wrote them last iteration), which
        // is the regime slipstream targets.
        let buf0 = layout.shared("buf0", total_lines * 64);
        let buf1 = layout.shared("buf1", total_lines * 64);
        let iters = self.iters;
        let lpt = self.lines_per_task;
        let comp = self.compute_per_line;
        let use_lock = self.use_lock;
        let use_input = self.use_input;
        let diverge = self.diverge;
        Box::new(move |layout, inst, task| {
            let scratch = layout.private(inst, "scratch", 16 * 64);
            let my_first = task as u64 * lpt;
            let next_first = ((task + 1) % ntasks) as u64 * lpt;
            let bases = [buf0.base().0, buf1.base().0];
            let mut b = ProgBuilder::new();
            if use_input {
                b.op(Op::Input);
            }
            b.for_n(iters, move |b| {
                if diverge > 0 {
                    b.op(Op::DivergeInA(diverge));
                }
                // Write own chunk into the next buffer. The A-stream skips
                // these long-latency stores, which is what puts it ahead
                // for the read phase below (§3.1 of the paper).
                b.block(move |ctx, out| {
                    let dst = bases[((ctx.i(0) + 1) % 2) as usize];
                    for l in 0..lpt {
                        out.push(Op::store_shared(Addr(dst + (my_first + l) * 64)));
                        out.push(Op::Compute(comp));
                    }
                });
                // Some private scratch traffic.
                b.touch_lines(scratch.base(), 16 * 64, 64, true, Space::Private, 1);
                if use_lock {
                    b.lock(LockId(0));
                    b.load_shared(Addr(bases[0]));
                    b.store_shared(Addr(bases[0]));
                    b.unlock(LockId(0));
                }
                // Read the neighbour's chunk, produced last iteration.
                b.block(move |ctx, out| {
                    let src = bases[(ctx.i(0) % 2) as usize];
                    for l in 0..lpt {
                        out.push(Op::load_shared(Addr(src + (next_first + l) * 64)));
                        out.push(Op::Compute(comp));
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("synth-task")
        })
    }
}

#[test]
fn all_modes_complete_and_are_deterministic() {
    let w = Synth::default();
    for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
        let r1 = run(&w, &RunSpec::new(4, mode));
        let r2 = run(&w, &RunSpec::new(4, mode));
        assert!(r1.exec_cycles > 0);
        assert_eq!(r1.exec_cycles, r2.exec_cycles, "{mode} must be deterministic");
        assert_eq!(r1.recoveries, 0);
        let expected_streams = match mode {
            ExecMode::Single => 4,
            ExecMode::Double => 8,
            ExecMode::Slipstream => 8,
        };
        assert_eq!(r1.streams.len(), expected_streams);
        // Every stream's breakdown must account for its finish time.
        for s in &r1.streams {
            assert!(s.breakdown.total() <= s.finish + 1, "over-accounted {:?}", s);
            assert!(s.breakdown.busy > 0);
        }
    }
}

#[test]
fn slipstream_prefetch_beats_single_on_memory_bound_kernel() {
    // Little compute, lots of coherence misses: the paper's target regime.
    let w = Synth { compute_per_line: 2, lines_per_task: 128, iters: 5, ..Synth::default() };
    let single = run(&w, &RunSpec::new(4, ExecMode::Single));
    let slip = run(
        &w,
        &RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::ZeroTokenLocal)),
    );
    assert!(
        slip.exec_cycles < single.exec_cycles,
        "slipstream ({}) should beat single ({})",
        slip.exec_cycles,
        single.exec_cycles
    );
    // Prefetches actually happened and were useful.
    assert!(slip.mem.class.reads.a_timely > 0, "{:?}", slip.mem.class);
}

#[test]
fn every_ar_sync_mode_completes() {
    let w = Synth::default();
    let mut cycles = Vec::new();
    for ar in ArSyncMode::ALL {
        let spec = RunSpec::new(4, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::prefetch_only(ar));
        let r = run(&w, &spec);
        assert!(r.exec_cycles > 0, "{ar} failed");
        assert_eq!(r.recoveries, 0, "{ar} should not recover");
        cycles.push((ar, r.exec_cycles));
    }
    // The A-stream waits more under the tightest sync (G0) than the
    // loosest (L1): check ar accounting exists at all.
    let w2 = Synth { compute_per_line: 40, ..Synth::default() };
    let g0 = run(
        &w2,
        &RunSpec::new(2, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::prefetch_only(ArSyncMode::ZeroTokenGlobal)),
    );
    let a_wait = g0.avg_breakdown(StreamRole::A).ar_sync;
    assert!(a_wait > 0, "A-stream should spend time in A-R sync under G0");
}

#[test]
fn deviating_a_stream_is_recovered() {
    // The A-stream executes a huge wrong-path burst each iteration, so the
    // R-stream reaches the session end first -> kill + refork.
    let w = Synth { diverge: 2_000_000, compute_per_line: 1, ..Synth::default() };
    let r = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    assert!(r.recoveries > 0, "deviation must trigger recovery");
    assert!(r.exec_cycles > 0);
}

#[test]
fn input_results_are_forwarded_to_a_stream() {
    let w = Synth { use_input: true, ..Synth::default() };
    let r = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    assert_eq!(r.recoveries, 0);
    // Also fine in non-slipstream modes.
    let s = run(&w, &RunSpec::new(2, ExecMode::Single));
    assert!(s.exec_cycles > 0);
}

#[test]
fn critical_sections_work_in_all_modes() {
    let w = Synth { use_lock: true, ..Synth::default() };
    for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
        let r = run(&w, &RunSpec::new(4, mode));
        assert!(r.exec_cycles > 0, "{mode}");
        // Someone must have waited for the contended lock.
        let lock_wait: u64 =
            r.streams.iter().filter(|s| s.role != StreamRole::A).map(|s| s.breakdown.lock).sum();
        assert!(lock_wait > 0, "{mode}: no lock contention measured");
    }
}

#[test]
fn transparent_loads_and_si_run_clean() {
    let w = Synth { compute_per_line: 2, lines_per_task: 128, iters: 6, ..Synth::default() };
    let spec = RunSpec::new(4, ExecMode::Slipstream)
        .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal));
    let r = run(&w, &spec);
    assert!(r.exec_cycles > 0);
    assert!(r.mem.transparent_issued > 0, "A-stream should issue transparent loads");
    assert!(
        r.mem.transparent_replies + r.mem.upgraded_replies == r.mem.transparent_issued,
        "every transparent load gets exactly one reply kind: {:?}",
        r.mem
    );
    // Producer-consumer kernel: SI must downgrade some lines.
    assert!(r.mem.si_hints > 0);
    assert!(r.mem.si_downgrades + r.mem.si_invalidations > 0);
}

#[test]
fn sequential_baseline_runs_whole_problem_on_one_node() {
    let w = Synth::default();
    let seq = run_sequential(&w);
    assert_eq!(seq.nodes, 1);
    assert_eq!(seq.tasks, 1);
    assert_eq!(seq.mem.remote_txns, 0, "sequential run has no remote traffic");
}

#[test]
fn double_mode_places_two_tasks_per_node() {
    let w = Synth::default();
    let r = run(&w, &RunSpec::new(2, ExecMode::Double));
    assert_eq!(r.tasks, 4);
    let mut per_node = [0; 2];
    for s in &r.streams {
        per_node[s.cpu.node().idx()] += 1;
    }
    assert_eq!(per_node, [2, 2]);
}

#[test]
fn exclusive_prefetch_can_be_disabled() {
    let w = Synth::default();
    let mut slip = SlipstreamConfig::prefetch_only(ArSyncMode::ZeroTokenGlobal);
    slip.exclusive_prefetch = false;
    let r = run(&w, &RunSpec::new(2, ExecMode::Slipstream).with_slip(slip));
    assert_eq!(r.mem.excl_prefetches, 0);
    let mut slip_on = SlipstreamConfig::prefetch_only(ArSyncMode::ZeroTokenGlobal);
    slip_on.exclusive_prefetch = true;
    let r_on = run(&w, &RunSpec::new(2, ExecMode::Slipstream).with_slip(slip_on));
    assert!(r_on.mem.excl_prefetches > 0);
}

#[test]
fn adaptive_ar_selection_locks_in_a_competitive_method() {
    // §6 future work: dynamic A-R selection. With enough sessions to
    // sample all four methods, the adaptive run must complete, stay
    // deterministic, and land within the envelope of the fixed methods
    // (sampling overhead bounded).
    let w = Synth { iters: 40, lines_per_task: 32, compute_per_line: 4, ..Synth::default() };
    let fixed: Vec<u64> = ArSyncMode::ALL
        .iter()
        .map(|&ar| {
            run(
                &w,
                &RunSpec::new(2, ExecMode::Slipstream)
                    .with_slip(SlipstreamConfig::prefetch_only(ar)),
            )
            .exec_cycles
        })
        .collect();
    let spec = RunSpec::new(2, ExecMode::Slipstream).with_slip(SlipstreamConfig::adaptive());
    let a1 = run(&w, &spec);
    let a2 = run(&w, &spec);
    assert_eq!(a1.exec_cycles, a2.exec_cycles, "adaptive mode must stay deterministic");
    let worst = *fixed.iter().max().expect("four methods");
    assert!(
        a1.exec_cycles <= worst + worst / 10,
        "adaptive ({}) should not be far worse than the worst fixed method ({worst})",
        a1.exec_cycles
    );
    assert_eq!(a1.recoveries, 0);
}

/// A pipelined producer-consumer chain built on events: stage t waits for
/// stage t-1's post each round. Exercises event-wait session boundaries,
/// A-stream event skipping, and token flow through EventWait.
struct EventPipeline {
    rounds: u64,
    lines: u64,
}

impl Workload for EventPipeline {
    fn name(&self) -> &str {
        "event-pipeline"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let lines = self.lines;
        let blocks: Vec<slipstream_prog::ArrayRef> = (0..ntasks)
            .map(|t| layout.shared_owned(&format!("stage{t}"), lines * 64, t))
            .collect();
        let rounds = self.rounds;
        Box::new(move |_layout, _inst, task| {
            let prev = blocks[(task + ntasks - 1) % ntasks];
            let mine = blocks[task];
            let my_event = slipstream_prog::EventId(task as u32);
            let next_event = slipstream_prog::EventId(((task + 1) % ntasks) as u32);
            let mut b = ProgBuilder::new();
            b.for_n(rounds, move |b| {
                if task != 0 {
                    b.wait(my_event);
                }
                b.block(move |_, out| {
                    for l in 0..lines {
                        out.push(Op::load_shared(Addr(prev.base().0 + l * 64)));
                        out.push(Op::Compute(10));
                        out.push(Op::store_shared(Addr(mine.base().0 + l * 64)));
                    }
                });
                b.post(next_event);
                b.barrier(BarrierId(0));
            });
            b.build("stage")
        })
    }
}

#[test]
fn event_pipeline_runs_in_all_modes_and_slipstream_helps() {
    let w = EventPipeline { rounds: 5, lines: 128 };
    let single = run(&w, &RunSpec::new(4, ExecMode::Single));
    let double = run(&w, &RunSpec::new(4, ExecMode::Double));
    let slip = run(&w, &RunSpec::new(4, ExecMode::Slipstream));
    assert!(single.exec_cycles > 0 && double.exec_cycles > 0);
    assert_eq!(slip.recoveries, 0, "event waits are session ends, not deviations");
    assert!(
        slip.exec_cycles < single.exec_cycles,
        "run-ahead A-streams should hide the pipeline's coherence misses: {} vs {}",
        slip.exec_cycles,
        single.exec_cycles
    );
}

#[test]
fn max_tokens_caps_a_stream_lookahead() {
    // With the loosest method and a deep token cap, the A-stream may bank
    // many sessions; capping to 1 keeps it at most one ahead. Both must
    // complete; the capped run cannot wait *less* on tokens.
    let w = Synth { iters: 12, ..Synth::default() };
    let mut loose = SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenLocal);
    loose.max_tokens = u32::MAX;
    let mut capped = SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenLocal);
    capped.max_tokens = 1;
    let rl = run(&w, &RunSpec::new(2, ExecMode::Slipstream).with_slip(loose));
    let rc = run(&w, &RunSpec::new(2, ExecMode::Slipstream).with_slip(capped));
    let wait_l = rl.avg_breakdown(StreamRole::A).ar_sync;
    let wait_c = rc.avg_breakdown(StreamRole::A).ar_sync;
    assert!(wait_c >= wait_l, "capped A-stream waits at least as much: {wait_c} vs {wait_l}");
}
