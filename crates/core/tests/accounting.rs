//! Accounting invariants and trace-determinism checks.
//!
//! 1. Every stream's time breakdown accounts for its finish time
//!    *exactly*: `breakdown.total() == finish` — including A-streams that
//!    were killed and reforked (the machine's `frontier` bookkeeping).
//! 2. `exec_cycles` is the max finish over non-A streams.
//! 3. A traced run returns a bit-identical [`RunResult`] to an untraced
//!    run — tracing is observation only.
//! 4. The tracer's independently-collected access counters agree with the
//!    memory system's own statistics.

use slipstream_core::{
    run, run_traced, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, StreamRole, TaskBuilderFn,
    TraceConfig, Workload,
};
use slipstream_kernel::Addr;
use slipstream_prog::{BarrierId, Layout, LockId, Op, ProgBuilder};

/// A producer-consumer shift kernel with optional divergence (to force
/// recoveries) and lock traffic — enough behaviours to exercise every
/// accounting path.
struct Kernel {
    iters: u64,
    lines_per_task: u64,
    diverge: u32,
    use_lock: bool,
    use_input: bool,
}

impl Default for Kernel {
    fn default() -> Kernel {
        Kernel { iters: 5, lines_per_task: 64, diverge: 0, use_lock: false, use_input: false }
    }
}

impl Workload for Kernel {
    fn name(&self) -> &str {
        "accounting-kernel"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let total = self.lines_per_task * ntasks as u64;
        let buf0 = layout.shared("buf0", total * 64);
        let buf1 = layout.shared("buf1", total * 64);
        let iters = self.iters;
        let lpt = self.lines_per_task;
        let diverge = self.diverge;
        let use_lock = self.use_lock;
        let use_input = self.use_input;
        Box::new(move |_layout, _inst, task| {
            let my_first = task as u64 * lpt;
            let next_first = ((task + 1) % ntasks) as u64 * lpt;
            let bases = [buf0.base().0, buf1.base().0];
            let mut b = ProgBuilder::new();
            if use_input {
                b.op(Op::Input);
            }
            b.for_n(iters, move |b| {
                if diverge > 0 {
                    b.op(Op::DivergeInA(diverge));
                }
                b.block(move |ctx, out| {
                    let dst = bases[((ctx.i(0) + 1) % 2) as usize];
                    for l in 0..lpt {
                        out.push(Op::store_shared(Addr(dst + (my_first + l) * 64)));
                        out.push(Op::Compute(3));
                    }
                });
                if use_lock {
                    b.lock(LockId(0));
                    b.load_shared(Addr(bases[0]));
                    b.store_shared(Addr(bases[0]));
                    b.unlock(LockId(0));
                }
                b.block(move |ctx, out| {
                    let src = bases[(ctx.i(0) % 2) as usize];
                    for l in 0..lpt {
                        out.push(Op::load_shared(Addr(src + (next_first + l) * 64)));
                        out.push(Op::Compute(3));
                    }
                });
                b.barrier(BarrierId(0));
            });
            b.build("accounting-task")
        })
    }
}

/// Asserts the strict invariant on every stream of a result.
fn assert_exact_accounting(r: &slipstream_core::RunResult, ctx: &str) {
    for s in &r.streams {
        assert_eq!(
            s.breakdown.total(),
            s.finish,
            "{ctx}: breakdown must equal finish for {:?} on {} (breakdown: {})",
            s.role,
            s.cpu,
            s.breakdown
        );
    }
    let max_finish = r
        .streams
        .iter()
        .filter(|s| s.role != StreamRole::A)
        .map(|s| s.finish)
        .max()
        .unwrap_or(0);
    assert_eq!(r.exec_cycles, max_finish, "{ctx}: exec_cycles is the last non-A finish");
}

#[test]
fn breakdown_equals_finish_in_every_mode() {
    let w = Kernel::default();
    for mode in [ExecMode::Single, ExecMode::Double, ExecMode::Slipstream] {
        let r = run(&w, &RunSpec::new(2, mode));
        assert_eq!(r.recoveries, 0);
        assert_exact_accounting(&r, &format!("{mode}"));
    }
}

#[test]
fn breakdown_equals_finish_with_locks_and_inputs() {
    let w = Kernel { use_lock: true, use_input: true, ..Kernel::default() };
    for ar in ArSyncMode::ALL {
        let spec =
            RunSpec::new(2, ExecMode::Slipstream).with_slip(SlipstreamConfig::prefetch_only(ar));
        let r = run(&w, &spec);
        assert_exact_accounting(&r, &format!("locks+inputs {ar}"));
    }
}

#[test]
fn breakdown_equals_finish_through_recoveries() {
    // The deviating A-stream is killed and reforked repeatedly; the kill
    // discards pre-accounted busy work and inserts a refork gap, both of
    // which the accounting must absorb exactly.
    let w = Kernel { diverge: 2_000_000, ..Kernel::default() };
    let r = run(&w, &RunSpec::new(2, ExecMode::Slipstream));
    assert!(r.recoveries > 0, "kernel must deviate for this test to bite");
    assert_exact_accounting(&r, "recovery");
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let w = Kernel::default();
    let specs = [
        RunSpec::new(2, ExecMode::Slipstream),
        RunSpec::new(2, ExecMode::Slipstream)
            .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal)),
        RunSpec::new(2, ExecMode::Double),
    ];
    for spec in specs {
        let untraced = run(&w, &spec);
        let (traced, data) = run_traced(&w, &spec.clone().with_trace(TraceConfig::full(5_000)));
        assert_eq!(untraced, traced, "tracing must not perturb the simulation ({})", spec.mode);
        let data = data.expect("trace enabled");
        assert!(!data.records.is_empty(), "a traced run produces events");
        assert_eq!(data.end_cycle, traced.exec_cycles);
    }
    // Recovery path too: machine-level records must not perturb either.
    let dev = Kernel { diverge: 2_000_000, ..Kernel::default() };
    let spec = RunSpec::new(2, ExecMode::Slipstream);
    let untraced = run(&dev, &spec);
    let (traced, _) = run_traced(&dev, &spec.clone().with_trace(TraceConfig::full(5_000)));
    assert!(traced.recoveries > 0);
    assert_eq!(untraced, traced, "tracing must not perturb recoveries");
}

#[test]
fn tracer_counts_agree_with_mem_stats() {
    let w = Kernel::default();
    let spec = RunSpec::new(4, ExecMode::Slipstream)
        .with_slip(SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal))
        .with_trace(TraceConfig::full(10_000));
    let (r, data) = run_traced(&w, &spec);
    let c = data.expect("trace enabled").counts;
    // The tracer counts at the access hook; the memory system counts in
    // its own bookkeeping. They must tell the same story.
    assert_eq!(c.l1_hits, r.mem.l1_hits);
    assert_eq!(c.l2_hits, r.mem.l2_hits);
    assert_eq!(c.miss_new + c.miss_merged, r.mem.l2_misses);
    assert_eq!(c.miss_merged, r.mem.merged_misses);
    assert_eq!(c.prefetch_issued, r.mem.excl_prefetches);
    // And the headline identity: every access is exactly one of hit/miss.
    assert_eq!(c.data_accesses(), r.mem.data_accesses());
}

#[test]
fn interval_samples_cover_the_run() {
    let w = Kernel::default();
    let interval = 5_000u64;
    let spec = RunSpec::new(2, ExecMode::Slipstream)
        .with_trace(TraceConfig { interval, ..TraceConfig::default() });
    let (r, data) = run_traced(&w, &spec);
    let data = data.expect("trace enabled");
    assert!(!data.samples.is_empty());
    // Samples are strictly increasing in time and cumulative counters are
    // monotone; the final sample is the end-of-run snapshot.
    for pair in data.samples.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle);
        assert!(pair[0].stats.l2_misses <= pair[1].stats.l2_misses);
        assert!(pair[0].host_events <= pair[1].host_events);
    }
    let last = data.samples.last().expect("nonempty");
    assert_eq!(last.cycle, r.exec_cycles);
    assert_eq!(last.stats, r.mem);
}
