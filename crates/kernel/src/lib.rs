//! Discrete-event simulation kernel for the slipstream CMP multiprocessor
//! simulator.
//!
//! This crate provides the timing substrate shared by every other crate in
//! the workspace:
//!
//! * [`Cycle`] — a newtype for simulated processor cycles;
//! * [`EventQueue`] — a deterministic time-ordered event queue (ties are
//!   broken in insertion order, so every simulation run is reproducible);
//! * [`Server`] — a FIFO resource used to model occupancy/contention at
//!   directory controllers and network ports;
//! * id newtypes ([`NodeId`], [`CpuId`], [`TaskId`], [`Addr`], [`LineAddr`])
//!   that keep the many small integers in a multiprocessor simulator from
//!   being confused with one another;
//! * [`FxHashMap`] — a `HashMap` with a fast deterministic hasher for the
//!   simulator's per-access maps (directories, MSHRs, sync objects);
//! * [`SplitMix64`] — a tiny deterministic RNG used by workload generators;
//! * [`SharerSet`] — a compact, growable node bit-set used by the
//!   directory protocol and its observers;
//! * [`config`] — the machine description (Table 1 of the paper) and the
//!   slipstream execution-mode knobs.
//!
//! # Example
//!
//! ```
//! use slipstream_kernel::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Cycle(10), "b");
//! q.push(Cycle(5), "a");
//! q.push(Cycle(10), "c"); // same time as "b": FIFO order preserved
//! assert_eq!(q.pop(), Some((Cycle(5), "a")));
//! assert_eq!(q.pop(), Some((Cycle(10), "b")));
//! assert_eq!(q.pop(), Some((Cycle(10), "c")));
//! assert_eq!(q.pop(), None);
//! ```

pub mod config;
mod hash;
mod ids;
mod queue;
mod rng;
mod server;
mod sharers;
mod smallvec;
mod time;

pub use hash::{fx_map_with_capacity, FxBuildHasher, FxHasher, FxHashMap};
pub use ids::{Addr, CpuId, LineAddr, NodeId, TaskId};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use server::Server;
pub use sharers::{SharerIter, SharerSet};
pub use smallvec::InlineVec;
pub use time::Cycle;
