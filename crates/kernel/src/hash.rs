//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! `std::HashMap` defaults to SipHash-1-3, whose per-lookup cost dominates
//! the directory and MSHR maps once a run issues millions of line-address
//! lookups. [`FxHasher`] is the multiply-and-rotate hash used by the Rust
//! compiler's `FxHashMap`: one rotate, one xor, and one multiply per word.
//! It is not DoS-resistant — irrelevant here, since every key is a line
//! address or small id produced by the simulator itself — and it is fully
//! deterministic across runs and platforms, which the reproduction's
//! bit-for-bit determinism guarantee requires (no per-process random seed,
//! unlike `RandomState`).
//!
//! # Example
//!
//! ```
//! use slipstream_kernel::{FxHashMap, LineAddr};
//!
//! let mut mshrs: FxHashMap<LineAddr, u32> = FxHashMap::default();
//! mshrs.insert(LineAddr(7), 1);
//! assert_eq!(mshrs.get(&LineAddr(7)), Some(&1));
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Knuth's multiplicative constant (2^64 / golden ratio), as used by
/// rustc's Fx hash.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// One-word-at-a-time multiplicative hasher (the rustc "Fx" function).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s. Stateless: every map hashes
/// identically, so map behaviour is reproducible across runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed with the Fx hash — the simulator's default for
/// per-access maps (directory lines, MSHRs, sync objects).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Creates an [`FxHashMap`] with room for `cap` entries.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    HashMap::with_capacity_and_hasher(cap, FxBuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;
    use std::hash::Hash;

    fn fx_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(fx_of(&0xdead_beefu64), fx_of(&0xdead_beefu64));
        assert_ne!(fx_of(&1u64), fx_of(&2u64));
    }

    #[test]
    fn byte_writes_match_padded_words() {
        // write() must consume trailing bytes (zero-padded), not drop them.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_behaves_like_std_map() {
        // Property check: an FxHashMap agrees with a std HashMap under a
        // random insert/remove/lookup workload.
        let mut rng = SplitMix64::new(0xfeed);
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut std_map = std::collections::HashMap::new();
        for _ in 0..10_000 {
            let k = rng.next_below(512);
            match rng.next_below(3) {
                0 => {
                    let v = rng.next_u64();
                    assert_eq!(fx.insert(k, v), std_map.insert(k, v));
                }
                1 => assert_eq!(fx.remove(&k), std_map.remove(&k)),
                _ => assert_eq!(fx.get(&k), std_map.get(&k)),
            }
            assert_eq!(fx.len(), std_map.len());
        }
    }

    #[test]
    fn capacity_constructor_reserves() {
        let m: FxHashMap<u64, ()> = fx_map_with_capacity(100);
        assert!(m.capacity() >= 100);
    }
}
