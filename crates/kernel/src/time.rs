use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulated time, measured in processor cycles.
///
/// The simulated machine runs at 1 GHz (as in the paper), so one cycle is
/// one nanosecond, but nothing in the simulator depends on wall-clock units.
///
/// `Cycle` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators below are closed over the type, which keeps the
/// simulator honest about units without a second newtype.
///
/// # Example
///
/// ```
/// use slipstream_kernel::Cycle;
///
/// let start = Cycle(100);
/// let lat = Cycle(290); // minimum remote miss latency
/// assert_eq!(start + lat, Cycle(390));
/// assert_eq!((start + lat) - start, lat);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero; the start of every simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Duration from `earlier` to `self`, saturating at zero rather than
    /// panicking when `earlier` is actually later.
    #[inline]
    pub fn since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self` (underflow);
    /// use [`Cycle::since`] for a saturating difference.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let a = Cycle(7);
        let b = Cycle(5);
        assert_eq!(a + b, Cycle(12));
        assert_eq!(a - b, Cycle(2));
        assert_eq!(a + 3, Cycle(10));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycle(12));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycle(5).since(Cycle(9)), Cycle::ZERO);
        assert_eq!(Cycle(9).since(Cycle(5)), Cycle(4));
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle(1).max(Cycle(2)), Cycle(2));
        assert_eq!(Cycle(1).min(Cycle(2)), Cycle(1));
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(42).to_string(), "42cyc");
    }
}
