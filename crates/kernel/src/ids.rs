use std::fmt;

/// Identifies one CMP node (processor chip + local memory + directory slice).
///
/// Nodes are numbered densely from zero; a 16-CMP machine has nodes `0..16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node index as a `usize`, for indexing per-node tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies one processor: a node plus which of the CMP's two cores.
///
/// # Example
///
/// ```
/// use slipstream_kernel::{CpuId, NodeId};
///
/// let cpu = CpuId::new(NodeId(3), 1);
/// assert_eq!(cpu.node(), NodeId(3));
/// assert_eq!(cpu.core(), 1);
/// assert_eq!(cpu.flat(2), 7); // flat index in a 2-cores-per-node machine
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId {
    node: NodeId,
    core: u8,
}

impl CpuId {
    /// Creates the id of core `core` on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 2`: the paper's CMP building block is strictly a
    /// dual-processor chip.
    #[inline]
    pub fn new(node: NodeId, core: u8) -> CpuId {
        assert!(core < 2, "CMP nodes have exactly two cores");
        CpuId { node, core }
    }

    /// The node this processor lives on.
    #[inline]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// Which core within the CMP (0 or 1).
    #[inline]
    pub fn core(self) -> u8 {
        self.core
    }

    /// Dense index of this CPU across the whole machine, given the number of
    /// cores per node.
    #[inline]
    pub fn flat(self, cores_per_node: usize) -> usize {
        self.node.idx() * cores_per_node + self.core as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}.{}", self.node.0, self.core)
    }
}

/// Identifies a parallel task of the application (not a processor: placement
/// of tasks onto processors depends on the execution mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u16);

impl TaskId {
    /// The task index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// A byte address in the simulated global shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }

    /// Byte offset within its cache line.
    #[inline]
    pub fn line_offset(self, line_bytes: u64) -> u64 {
        self.0 & (line_bytes - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line address: a byte address divided by the line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    #[inline]
    pub fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_flat_index() {
        assert_eq!(CpuId::new(NodeId(0), 0).flat(2), 0);
        assert_eq!(CpuId::new(NodeId(0), 1).flat(2), 1);
        assert_eq!(CpuId::new(NodeId(5), 0).flat(2), 10);
    }

    #[test]
    #[should_panic(expected = "two cores")]
    fn cpu_core_out_of_range_panics() {
        let _ = CpuId::new(NodeId(0), 2);
    }

    #[test]
    fn addr_to_line_roundtrip() {
        let a = Addr(0x1234);
        let line = a.line(64);
        assert_eq!(line, LineAddr(0x1234 / 64));
        assert!(line.base(64).0 <= a.0);
        assert!(a.0 < line.base(64).0 + 64);
        assert_eq!(a.line_offset(64), 0x1234 % 64);
    }

    #[test]
    fn displays_are_nonempty() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(CpuId::new(NodeId(3), 1).to_string(), "cpu3.1");
        assert_eq!(TaskId(7).to_string(), "task7");
        assert_eq!(Addr(16).to_string(), "0x10");
        assert_eq!(LineAddr(16).to_string(), "L0x10");
    }
}
