//! An inline-capacity vector for the simulator's short hot-path lists.
//!
//! MSHR waiter lists almost always hold one or two entries (one R-stream
//! plus at most its A-stream partner piling onto the same miss), yet the
//! `Vec`-based representation heap-allocates for every miss. [`InlineVec`]
//! stores up to `N` elements inline and only spills to a heap `Vec` beyond
//! that, so the common case allocates nothing. No `unsafe` is used: inline
//! slots are `Option<T>`, which for the simulator's small `Copy` waiter
//! records costs a byte of discriminant, not an allocation.

use std::fmt;

/// A vector with inline capacity for `N` elements and a heap spill beyond.
///
/// Elements keep insertion order: the first `N` live inline, the rest in
/// the spill `Vec`. The API is the subset the memory system needs — push,
/// len/is_empty, iteration, and a draining `IntoIterator` (via
/// `std::mem::take`, which is why `Default` is implemented).
#[derive(Clone, PartialEq, Eq)]
pub struct InlineVec<T, const N: usize> {
    inline: [Option<T>; N],
    /// Number of occupied inline slots (`<= N`).
    inline_len: usize,
    spill: Vec<T>,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector; allocates nothing.
    pub fn new() -> Self {
        InlineVec { inline: [const { None }; N], inline_len: 0, spill: Vec::new() }
    }

    /// Appends an element, spilling to the heap past `N` entries.
    pub fn push(&mut self, value: T) {
        if self.inline_len < N {
            self.inline[self.inline_len] = Some(value);
            self.inline_len += 1;
        } else {
            self.spill.push(value);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..self.inline_len].iter().filter_map(Option::as_ref).chain(self.spill.iter())
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Draining iterator in insertion order: inline slots first, then spill.
pub struct InlineVecIntoIter<T, const N: usize> {
    inline: std::iter::Flatten<std::array::IntoIter<Option<T>, N>>,
    spill: std::vec::IntoIter<T>,
}

impl<T, const N: usize> Iterator for InlineVecIntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        // Occupied inline slots form a prefix, so `Flatten` over the whole
        // array yields exactly the live elements in order.
        self.inline.next().or_else(|| self.spill.next())
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIntoIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        InlineVecIntoIter {
            inline: self.inline.into_iter().flatten(),
            spill: self.spill.into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_order_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn spill_preserves_insertion_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..7 {
            v.push(i);
        }
        assert_eq!(v.len(), 7);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), (0..7).collect::<Vec<_>>());
        assert_eq!(v.into_iter().collect::<Vec<_>>(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn take_drains_and_resets() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
        let drained: Vec<u32> = std::mem::take(&mut v).into_iter().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        v.push(9);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn equality_compares_contents() {
        let mut a: InlineVec<u32, 2> = InlineVec::new();
        let mut b: InlineVec<u32, 2> = InlineVec::new();
        a.push(1);
        b.push(1);
        assert_eq!(a, b);
        b.push(2);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_formats_as_list() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(format!("{v:?}"), "[1, 2, 3]");
    }
}
