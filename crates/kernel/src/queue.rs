use std::cmp::Ordering;
use std::collections::binary_heap::PeekMut;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Number of single-cycle buckets in the near-future lane (power of two).
///
/// The memory-system latencies cluster event deltas tightly (a contention-
/// free local miss is 170 cycles end to end, a remote miss 290), so almost
/// every push lands within a few hundred cycles of the queue's cursor. 512
/// covers the whole cluster with slack; the rare far event (refork
/// penalties, drained SI queues) falls back to the heap.
const LANE: usize = 512;
const LANE_MASK: u64 = LANE as u64 - 1;

/// A deterministic discrete-event queue.
///
/// Events are ordered by timestamp; events with equal timestamps pop in the
/// order they were pushed (FIFO). Together with a single-threaded simulation
/// loop this makes every run bit-for-bit reproducible, which the test suite
/// and the paper-reproduction harness rely on.
///
/// Internally the queue is two lanes with one ordering contract:
///
/// * a **near-future lane** — a ring of [`LANE`] single-cycle buckets
///   covering `[cursor, cursor + LANE)`, where `cursor` is a monotone lower
///   bound on pending bucketed times. Pushes within the window are O(1)
///   appends; pops advance `cursor` to the first non-empty bucket, so scan
///   work amortizes to the simulated-time advance;
/// * a `u128`-keyed [`BinaryHeap`] for the far tail (and for times below
///   `cursor`, which can only arise from out-of-order test usage).
///
/// Every entry carries its global sequence number, and every candidate
/// comparison uses the packed `(time, seq)` key, so the two lanes together
/// preserve the exact total order a single heap would produce — including
/// ties at the same timestamp split across lanes.
///
/// # Example
///
/// ```
/// use slipstream_kernel::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'x');
/// q.push(Cycle(1), 'y');
/// assert_eq!(q.peek_time(), Some(Cycle(1)));
/// assert_eq!(q.pop(), Some((Cycle(1), 'y')));
/// assert_eq!(q.pop(), Some((Cycle(3), 'x')));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future lane; bucket `t & LANE_MASK` holds events at time `t`
    /// for `t` in `[cursor, cursor + LANE)`. Within a bucket, entries are
    /// appended (and consumed) in sequence order.
    lane: Vec<Bucket<E>>,
    /// Events currently in the lane (all buckets).
    lane_len: usize,
    /// Lower bound on every bucketed event's time; advanced by pops.
    cursor: u64,
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    high_water: usize,
    /// Pushes that fell back to the heap lane (outside the near-future
    /// window). A high fraction means the window is mis-sized for the
    /// workload's event deltas; the host-telemetry layer reports it.
    heap_pushes: u64,
}

/// One bucket of the near-future lane: `(seq, event)` entries in push
/// order. A `VecDeque` gives O(1) FIFO drain without shifting, and its
/// backing allocation persists across drain/refill cycles, so the
/// steady-state loop never allocates.
type Bucket<E> = VecDeque<(u64, E)>;

/// `key` packs `(time << 64) | seq`: one `u128` comparison orders by time,
/// then insertion order.
#[derive(Debug)]
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(time: Cycle, seq: u64) -> u128 {
    ((time.raw() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> Cycle {
    Cycle((key >> 64) as u64)
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other.key.cmp(&self.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            lane: (0..LANE).map(|_| Bucket::new()).collect(),
            lane_len: 0,
            cursor: 0,
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
            heap_pushes: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending far-tail events.
    pub fn with_capacity(cap: usize) -> EventQueue<E> {
        let mut q = EventQueue::new();
        q.heap.reserve(cap);
        q
    }

    /// Reserves room for at least `additional` more far-tail events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = at.raw();
        if t >= self.cursor && t - self.cursor < LANE as u64 {
            self.lane[(t & LANE_MASK) as usize].push_back((seq, event));
            self.lane_len += 1;
        } else {
            self.heap_pushes += 1;
            self.heap.push(Entry { key: pack(at, seq), event });
        }
        // Peak-depth tracking for the observability layer. The branch is
        // almost never taken in steady state, so it stays off the critical
        // path's dependency chain.
        let len = self.len();
        if len > self.high_water {
            self.high_water = len;
        }
    }

    /// Advances `cursor` to the first non-empty bucket. Only called with a
    /// non-empty lane, so the walk terminates within `LANE` steps; because
    /// `cursor` is monotone, the total walk over a run is bounded by the
    /// simulated-time span, not by the pop count.
    #[inline]
    fn advance_cursor(&mut self) {
        debug_assert!(self.lane_len > 0);
        while self.lane[(self.cursor & LANE_MASK) as usize].is_empty() {
            self.cursor += 1;
        }
    }

    /// The packed key of the earliest bucketed event, advancing the cursor
    /// to its bucket. `None` when the lane is empty.
    #[inline]
    fn lane_front_key(&mut self) -> Option<u128> {
        if self.lane_len == 0 {
            return None;
        }
        self.advance_cursor();
        let b = &self.lane[(self.cursor & LANE_MASK) as usize];
        Some(pack(Cycle(self.cursor), b.front().expect("advanced to non-empty bucket").0))
    }

    /// Removes and returns the front event of the cursor bucket. Caller
    /// guarantees the lane is non-empty and the cursor is advanced.
    #[inline]
    fn lane_pop_front(&mut self) -> (Cycle, E) {
        let t = Cycle(self.cursor);
        let b = &mut self.lane[(self.cursor & LANE_MASK) as usize];
        let (_seq, event) = b.pop_front().expect("advanced to non-empty bucket");
        self.lane_len -= 1;
        (t, event)
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let lane_key = self.lane_front_key();
        let heap_key = self.heap.peek().map(|e| e.key);
        match (lane_key, heap_key) {
            (Some(lk), Some(hk)) if hk < lk => self.pop_heap(),
            (None, Some(_)) => self.pop_heap(),
            (Some(_), _) => Some(self.lane_pop_front()),
            (None, None) => None,
        }
    }

    fn pop_heap(&mut self) -> Option<(Cycle, E)> {
        let e = self.heap.pop()?;
        let t = unpack_time(e.key);
        if self.lane_len == 0 {
            // With the lane empty the cursor is unconstrained; keeping it
            // synced to popped (monotone) times keeps the near-future
            // window over "now" so subsequent pushes take the O(1) lane.
            self.cursor = self.cursor.max(t.raw());
        }
        Some((t, e.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `limit` — the combined peek/pop the simulation loop uses to drain
    /// everything due at the current time with one call per event.
    pub fn pop_if_at(&mut self, limit: Cycle) -> Option<(Cycle, E)> {
        let lane_key = self.lane_front_key();
        // Heap arm: one `PeekMut` access both decides and pops (the old
        // implementation peeked, then `pop()` peeked the heap a second
        // time). `PeekMut` only re-sifts if the entry was mutated, so a
        // fall-through costs nothing.
        if let Some(pm) = self.heap.peek_mut() {
            let hk = pm.key;
            if lane_key.is_none_or(|lk| hk < lk) {
                // The heap holds the earliest event overall.
                let t = unpack_time(hk);
                if t > limit {
                    return None;
                }
                let e = PeekMut::pop(pm);
                if self.lane_len == 0 {
                    self.cursor = self.cursor.max(t.raw());
                }
                return Some((t, e.event));
            }
        }
        // The lane holds the earliest event, or the queue is empty.
        if lane_key.is_some() && Cycle(self.cursor) <= limit {
            return Some(self.lane_pop_front());
        }
        None
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        let lane = self.lane_front_key();
        let heap = self.heap.peek().map(|e| e.key);
        match (lane, heap) {
            (Some(a), Some(b)) => Some(unpack_time(a.min(b))),
            (Some(a), None) => Some(unpack_time(a)),
            (None, Some(b)) => Some(unpack_time(b)),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.lane_len + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Maximum number of events ever pending at once (peak queue depth).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Events currently pending in the near-future bucket ring.
    pub fn lane_len(&self) -> usize {
        self.lane_len
    }

    /// Events currently pending in the far-tail heap.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Lifetime count of pushes that fell back to the heap lane.
    pub fn heap_pushes(&self) -> u64 {
        self.heap_pushes
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'a');
        q.push(Cycle(2), 'b');
        assert_eq!(q.pop(), Some((Cycle(2), 'b')));
        q.push(Cycle(1), 'c'); // earlier than remaining event
        assert_eq!(q.pop(), Some((Cycle(1), 'c')));
        assert_eq!(q.pop(), Some((Cycle(5), 'a')));
    }

    #[test]
    fn pop_if_at_respects_the_limit() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(20), 'b');
        assert_eq!(q.pop_if_at(Cycle(5)), None);
        assert_eq!(q.pop_if_at(Cycle(10)), Some((Cycle(10), 'a')));
        assert_eq!(q.pop_if_at(Cycle(10)), None); // 'b' is later
        assert_eq!(q.pop_if_at(Cycle(100)), Some((Cycle(20), 'b')));
        assert_eq!(q.pop_if_at(Cycle(100)), None); // empty
    }

    #[test]
    fn lifetime_counters_track_pushes_and_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.total_pushed(), 0);
        assert_eq!(q.high_water(), 0);
        q.push(Cycle(1), 'a');
        q.push(Cycle(2), 'b');
        q.push(Cycle(3), 'c');
        q.pop();
        q.pop();
        q.push(Cycle(4), 'd');
        assert_eq!(q.total_pushed(), 4);
        assert_eq!(q.high_water(), 3); // peak was three pending at once
    }

    #[test]
    fn with_capacity_preserves_semantics() {
        let mut q = EventQueue::with_capacity(64);
        q.reserve(100);
        q.push(Cycle(2), 'x');
        q.push(Cycle(1), 'y');
        assert_eq!(q.pop(), Some((Cycle(1), 'y')));
        assert_eq!(q.pop(), Some((Cycle(2), 'x')));
    }

    /// Same-time events split across the two lanes must still pop in push
    /// order: the first push lands in a bucket; once the window slides past
    /// that time, later same-time pushes fall back to the heap, and seq
    /// tie-breaking has to interleave them correctly.
    #[test]
    fn cross_lane_same_time_ties_are_fifo() {
        let mut q = EventQueue::new();
        q.push(Cycle(100), 0); // near-future lane (window starts at 0)
        q.push(Cycle(10_000), 99); // beyond the window → heap
        q.push(Cycle(10_000), 100); // heap, same time, later seq
        assert_eq!(q.pop(), Some((Cycle(100), 0)));
        assert_eq!(q.pop(), Some((Cycle(10_000), 99)));
        // The window re-centered on 10_000, so these same-time pushes land
        // in a bucket while an earlier-seq twin still sits in the heap.
        q.push(Cycle(10_000), 101);
        q.push(Cycle(10_000), 102);
        assert_eq!(q.pop(), Some((Cycle(10_000), 100)));
        assert_eq!(q.pop(), Some((Cycle(10_000), 101)));
        assert_eq!(q.pop(), Some((Cycle(10_000), 102)));
        assert_eq!(q.pop(), None);
    }

    /// Events beyond the near-future window (heap lane) and inside it
    /// (bucket lane) interleave in strict time order.
    #[test]
    fn far_future_and_near_future_interleave() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'n'); // bucket lane
        q.push(Cycle(5_000), 'f'); // heap lane (beyond window)
        q.push(Cycle(170), 'm'); // bucket lane
        assert_eq!(q.pop(), Some((Cycle(5), 'n')));
        assert_eq!(q.pop(), Some((Cycle(170), 'm')));
        // After draining the lane, the heap event pops and re-centers the
        // window; a subsequent near-future push must take the bucket lane
        // and still order correctly against a new far event.
        assert_eq!(q.pop(), Some((Cycle(5_000), 'f')));
        q.push(Cycle(5_290), 'p'); // within the re-centered window
        q.push(Cycle(99_999), 'q');
        assert_eq!(q.pop(), Some((Cycle(5_290), 'p')));
        assert_eq!(q.pop(), Some((Cycle(99_999), 'q')));
    }

    /// Pushes at times the window has already slid past (only possible from
    /// out-of-order callers, but part of the contract) still pop in order.
    #[test]
    fn pushes_below_the_cursor_still_order_correctly() {
        let mut q = EventQueue::new();
        q.push(Cycle(1_000_000), 'a');
        assert_eq!(q.pop(), Some((Cycle(1_000_000), 'a'))); // cursor syncs far forward
        q.push(Cycle(3), 'b'); // far below the cursor → heap
        q.push(Cycle(1_000_001), 'c'); // in-window → lane
        assert_eq!(q.peek_time(), Some(Cycle(3)));
        assert_eq!(q.pop(), Some((Cycle(3), 'b')));
        assert_eq!(q.pop(), Some((Cycle(1_000_001), 'c')));
    }

    /// The bucket ring wraps: times more than `LANE` apart reuse the same
    /// bucket index across window generations without mixing.
    #[test]
    fn window_wraparound_reuses_buckets_cleanly() {
        let mut q = EventQueue::new();
        // Step by less than LANE so every push stays in the sliding window
        // (bucket lane); over enough generations the raw times cross many
        // multiples of LANE, so bucket indices wrap and get reused.
        let step = LANE as u64 - 12;
        let mut t = 0u64;
        for gen in 0u64..20 {
            q.push(Cycle(t), gen);
            assert_eq!(q.pop(), Some((Cycle(t), gen)));
            t += step;
        }
        assert!(q.is_empty());
    }

    /// `pop_if_at` with a limit between the two lanes' fronts takes only the
    /// due lane-event, and vice versa when the heap is earlier.
    #[test]
    fn pop_if_at_across_lanes() {
        let mut q = EventQueue::new();
        q.push(Cycle(50), 'n'); // lane
        q.push(Cycle(9_000), 'f'); // heap
        assert_eq!(q.pop_if_at(Cycle(49)), None);
        assert_eq!(q.pop_if_at(Cycle(50)), Some((Cycle(50), 'n')));
        assert_eq!(q.pop_if_at(Cycle(8_999)), None);
        assert_eq!(q.pop_if_at(Cycle(9_000)), Some((Cycle(9_000), 'f')));
        // Heap earlier than lane: push below cursor (heap) + in-window.
        q.push(Cycle(9_100), 'x'); // lane (window re-centered at 9_000)
        q.push(Cycle(100), 'y'); // below cursor → heap
        assert_eq!(q.pop_if_at(Cycle(99)), None);
        assert_eq!(q.pop_if_at(Cycle(100)), Some((Cycle(100), 'y')));
        assert_eq!(q.pop_if_at(Cycle(u64::MAX)), Some((Cycle(9_100), 'x')));
        assert!(q.is_empty());
    }

    /// Property test (seeded, exhaustive over many random schedules):
    /// popping always yields non-decreasing timestamps, and within a
    /// timestamp, increasing push order — the (time, seq) FIFO contract the
    /// whole simulator's determinism rests on.
    #[test]
    fn prop_pop_order() {
        let mut rng = SplitMix64::new(0x0e0e);
        for case in 0..200 {
            let n = 1 + rng.next_below(200) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(Cycle(rng.next_below(50)), i);
            }
            let mut last: Option<(Cycle, usize)> = None;
            let mut popped = 0;
            while let Some((t, i)) = q.pop() {
                popped += 1;
                if let Some((lt, li)) = last {
                    assert!(t >= lt, "case {case}: time went backwards");
                    if t == lt {
                        assert!(i > li, "case {case}: FIFO order violated at t={t:?}");
                    }
                }
                last = Some((t, i));
            }
            assert_eq!(popped, n);
        }
    }

    /// Random schedules that straddle the bucket window: deltas span from 0
    /// to several windows ahead, so every push/pop path (bucket append,
    /// heap fallback, cursor re-sync, wraparound) gets exercised while the
    /// (time, seq) contract is checked against pending-event ground truth.
    #[test]
    fn prop_pop_order_across_lanes() {
        let mut rng = SplitMix64::new(0x51ee);
        for case in 0..100 {
            let n = 1 + rng.next_below(300) as usize;
            let mut q = EventQueue::new();
            let mut base = 0u64;
            for i in 0..n {
                // Mostly near-future, occasionally multiple windows out.
                let delta = if rng.next_below(8) == 0 {
                    rng.next_below(4 * LANE as u64)
                } else {
                    rng.next_below(300)
                };
                q.push(Cycle(base + delta), i);
                if rng.next_below(4) == 0 {
                    if let Some((t, _)) = q.pop() {
                        base = base.max(t.raw());
                    }
                }
            }
            let mut last: Option<(Cycle, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    assert!(t >= lt, "case {case}: time went backwards");
                    if t == lt {
                        assert!(i > li, "case {case}: FIFO order violated at t={t:?}");
                    }
                }
                last = Some((t, i));
            }
            assert!(q.is_empty());
        }
    }

    /// Interleaving pushes and pops (including `pop_if_at`) preserves the
    /// same contract relative to the events still pending.
    #[test]
    fn prop_interleaved_pop_if_at() {
        let mut rng = SplitMix64::new(0xabcd);
        for _ in 0..100 {
            let mut q = EventQueue::new();
            let mut seq = 0usize;
            let mut last: Option<(Cycle, usize)> = None;
            for _ in 0..300 {
                if rng.next_below(2) == 0 {
                    // Push strictly increasing-or-equal times so pops stay
                    // monotone even with interleaving.
                    let base = last.map(|(t, _)| t.raw()).unwrap_or(0);
                    q.push(Cycle(base + rng.next_below(20)), seq);
                    seq += 1;
                } else if let Some((t, i)) = q.pop_if_at(Cycle(u64::MAX)) {
                    if let Some((lt, li)) = last {
                        assert!(t > lt || (t == lt && i > li));
                    }
                    last = Some((t, i));
                }
            }
        }
    }
}
