use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A deterministic discrete-event queue.
///
/// Events are ordered by timestamp; events with equal timestamps pop in the
/// order they were pushed (FIFO). Together with a single-threaded simulation
/// loop this makes every run bit-for-bit reproducible, which the test suite
/// and the paper-reproduction harness rely on.
///
/// # Example
///
/// ```
/// use slipstream_kernel::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'x');
/// q.push(Cycle(1), 'y');
/// assert_eq!(q.peek_time(), Some(Cycle(1)));
/// assert_eq!(q.pop(), Some((Cycle(1), 'y')));
/// assert_eq!(q.pop(), Some((Cycle(3), 'x')));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'a');
        q.push(Cycle(2), 'b');
        assert_eq!(q.pop(), Some((Cycle(2), 'b')));
        q.push(Cycle(1), 'c'); // earlier than remaining event
        assert_eq!(q.pop(), Some((Cycle(1), 'c')));
        assert_eq!(q.pop(), Some((Cycle(5), 'a')));
    }

    proptest! {
        /// Popping always yields non-decreasing timestamps, and within a
        /// timestamp, increasing push order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(Cycle(*t), i);
            }
            let mut last: Option<(Cycle, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li);
                    }
                }
                last = Some((t, i));
            }
        }
    }
}
