use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A deterministic discrete-event queue.
///
/// Events are ordered by timestamp; events with equal timestamps pop in the
/// order they were pushed (FIFO). Together with a single-threaded simulation
/// loop this makes every run bit-for-bit reproducible, which the test suite
/// and the paper-reproduction harness rely on.
///
/// Internally the `(time, seq)` pair is packed into one `u128` key so heap
/// sift comparisons are a single integer compare, and the backing heap can
/// be pre-reserved ([`EventQueue::with_capacity`], [`EventQueue::reserve`])
/// to keep the main loop free of reallocation.
///
/// # Example
///
/// ```
/// use slipstream_kernel::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'x');
/// q.push(Cycle(1), 'y');
/// assert_eq!(q.peek_time(), Some(Cycle(1)));
/// assert_eq!(q.pop(), Some((Cycle(1), 'y')));
/// assert_eq!(q.pop(), Some((Cycle(3), 'x')));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    high_water: usize,
}

/// `key` packs `(time << 64) | seq`: one `u128` comparison orders by time,
/// then insertion order.
#[derive(Debug)]
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(time: Cycle, seq: u64) -> u128 {
    ((time.raw() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> Cycle {
    Cycle((key >> 64) as u64)
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other.key.cmp(&self.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, high_water: 0 }
    }

    /// Creates an empty queue with room for `cap` pending events.
    pub fn with_capacity(cap: usize) -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0, high_water: 0 }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { key: pack(at, seq), event });
        // Peak-depth tracking for the observability layer. The branch is
        // almost never taken in steady state, so it stays off the critical
        // path's dependency chain.
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (unpack_time(e.key), e.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `limit` — the combined peek/pop the simulation loop uses to drain
    /// everything due at the current time with one call per event.
    pub fn pop_if_at(&mut self, limit: Cycle) -> Option<(Cycle, E)> {
        match self.heap.peek() {
            Some(e) if unpack_time(e.key) <= limit => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| unpack_time(e.key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// Maximum number of events ever pending at once (peak queue depth).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(7), i)));
        }
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), 'a');
        q.push(Cycle(2), 'b');
        assert_eq!(q.pop(), Some((Cycle(2), 'b')));
        q.push(Cycle(1), 'c'); // earlier than remaining event
        assert_eq!(q.pop(), Some((Cycle(1), 'c')));
        assert_eq!(q.pop(), Some((Cycle(5), 'a')));
    }

    #[test]
    fn pop_if_at_respects_the_limit() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 'a');
        q.push(Cycle(20), 'b');
        assert_eq!(q.pop_if_at(Cycle(5)), None);
        assert_eq!(q.pop_if_at(Cycle(10)), Some((Cycle(10), 'a')));
        assert_eq!(q.pop_if_at(Cycle(10)), None); // 'b' is later
        assert_eq!(q.pop_if_at(Cycle(100)), Some((Cycle(20), 'b')));
        assert_eq!(q.pop_if_at(Cycle(100)), None); // empty
    }

    #[test]
    fn lifetime_counters_track_pushes_and_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.total_pushed(), 0);
        assert_eq!(q.high_water(), 0);
        q.push(Cycle(1), 'a');
        q.push(Cycle(2), 'b');
        q.push(Cycle(3), 'c');
        q.pop();
        q.pop();
        q.push(Cycle(4), 'd');
        assert_eq!(q.total_pushed(), 4);
        assert_eq!(q.high_water(), 3); // peak was three pending at once
    }

    #[test]
    fn with_capacity_preserves_semantics() {
        let mut q = EventQueue::with_capacity(64);
        q.reserve(100);
        q.push(Cycle(2), 'x');
        q.push(Cycle(1), 'y');
        assert_eq!(q.pop(), Some((Cycle(1), 'y')));
        assert_eq!(q.pop(), Some((Cycle(2), 'x')));
    }

    /// Property test (seeded, exhaustive over many random schedules):
    /// popping always yields non-decreasing timestamps, and within a
    /// timestamp, increasing push order — the (time, seq) FIFO contract the
    /// whole simulator's determinism rests on.
    #[test]
    fn prop_pop_order() {
        let mut rng = SplitMix64::new(0x0e0e);
        for case in 0..200 {
            let n = 1 + rng.next_below(200) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(Cycle(rng.next_below(50)), i);
            }
            let mut last: Option<(Cycle, usize)> = None;
            let mut popped = 0;
            while let Some((t, i)) = q.pop() {
                popped += 1;
                if let Some((lt, li)) = last {
                    assert!(t >= lt, "case {case}: time went backwards");
                    if t == lt {
                        assert!(i > li, "case {case}: FIFO order violated at t={t:?}");
                    }
                }
                last = Some((t, i));
            }
            assert_eq!(popped, n);
        }
    }

    /// Interleaving pushes and pops (including `pop_if_at`) preserves the
    /// same contract relative to the events still pending.
    #[test]
    fn prop_interleaved_pop_if_at() {
        let mut rng = SplitMix64::new(0xabcd);
        for _ in 0..100 {
            let mut q = EventQueue::new();
            let mut seq = 0usize;
            let mut last: Option<(Cycle, usize)> = None;
            for _ in 0..300 {
                if rng.next_below(2) == 0 {
                    // Push strictly increasing-or-equal times so pops stay
                    // monotone even with interleaving.
                    let base = last.map(|(t, _)| t.raw()).unwrap_or(0);
                    q.push(Cycle(base + rng.next_below(20)), seq);
                    seq += 1;
                } else if let Some((t, i)) = q.pop_if_at(Cycle(u64::MAX)) {
                    if let Some((lt, li)) = last {
                        assert!(t > lt || (t == lt && i > li));
                    }
                    last = Some((t, i));
                }
            }
        }
    }
}
