use crate::Cycle;

/// A single FIFO resource with a fixed service (occupancy) time per job.
///
/// This models the contention points the paper calls out: "Contention is
/// modeled at the network inputs and outputs, and at the memory controller."
/// A job arriving at time `t` starts service at `max(t, busy_until)`, holds
/// the resource for its occupancy, and completes at start + occupancy.
///
/// Because the simulation is single-threaded and events with equal
/// timestamps are processed in FIFO order, calling [`Server::serve`] in
/// event order yields an exact FIFO queue without storing one.
///
/// # Example
///
/// ```
/// use slipstream_kernel::{Cycle, Server};
///
/// let mut dc = Server::new();
/// // Two local misses hit the directory controller back to back
/// // (occupancy 60 cycles each, per Table 1 of the paper).
/// assert_eq!(dc.serve(Cycle(100), Cycle(60)), Cycle(160));
/// assert_eq!(dc.serve(Cycle(100), Cycle(60)), Cycle(220)); // queued behind
/// assert_eq!(dc.serve(Cycle(500), Cycle(60)), Cycle(560)); // idle again
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    busy_until: Cycle,
    /// Total cycles this server has spent busy (for utilization stats).
    busy_cycles: u64,
    /// Total jobs served.
    jobs: u64,
    /// Total cycles jobs spent waiting to start service.
    wait_cycles: u64,
}

impl Server {
    /// Creates an idle server.
    pub fn new() -> Server {
        Server::default()
    }

    /// Serves one job arriving at `now` with the given occupancy, returning
    /// the completion time.
    pub fn serve(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        let done = start + occupancy;
        self.wait_cycles += (start - now).raw();
        self.busy_cycles += occupancy.raw();
        self.jobs += 1;
        self.busy_until = done;
        done
    }

    /// Serves one job whose service overlaps the job's onward journey
    /// (cut-through): returns the *start* time rather than the completion
    /// time. An uncontended job passes through with zero added latency;
    /// contention still queues jobs FIFO. Used for network ports, where the
    /// paper models contention but the minimum miss latencies (170/290
    /// cycles) contain no port term.
    pub fn serve_start(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        self.wait_cycles += (start - now).raw();
        self.busy_cycles += occupancy.raw();
        self.jobs += 1;
        self.busy_until = start + occupancy;
        start
    }

    /// Time at which the server becomes idle.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Total busy cycles accumulated so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total jobs served so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total cycles jobs spent queued before service.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = Server::new();
        assert_eq!(s.serve(Cycle(10), Cycle(5)), Cycle(15));
        assert_eq!(s.wait_cycles(), 0);
    }

    #[test]
    fn busy_server_queues() {
        let mut s = Server::new();
        s.serve(Cycle(0), Cycle(10));
        assert_eq!(s.serve(Cycle(3), Cycle(10)), Cycle(20));
        assert_eq!(s.wait_cycles(), 7);
        assert_eq!(s.jobs(), 2);
        assert_eq!(s.busy_cycles(), 20);
    }

    #[test]
    fn zero_occupancy_is_passthrough() {
        let mut s = Server::new();
        assert_eq!(s.serve(Cycle(9), Cycle::ZERO), Cycle(9));
    }

    #[test]
    fn serve_start_adds_no_latency_when_idle() {
        let mut s = Server::new();
        assert_eq!(s.serve_start(Cycle(100), Cycle(8)), Cycle(100));
        // A second message right behind queues for the port.
        assert_eq!(s.serve_start(Cycle(101), Cycle(8)), Cycle(108));
        assert_eq!(s.wait_cycles(), 7);
    }

    /// Completion times are non-decreasing when arrivals are
    /// non-decreasing, and each job completes no earlier than
    /// arrival + occupancy.
    #[test]
    fn prop_fifo_no_time_travel() {
        let mut rng = SplitMix64::new(0x5e11);
        for case in 0..200 {
            let n = 1 + rng.next_below(100) as usize;
            let mut arrivals: Vec<(u64, u64)> =
                (0..n).map(|_| (rng.next_below(100), 1 + rng.next_below(19))).collect();
            arrivals.sort_by_key(|j| j.0);
            let mut s = Server::new();
            let mut last_done = Cycle::ZERO;
            for (at, occ) in arrivals {
                let done = s.serve(Cycle(at), Cycle(occ));
                assert!(done >= Cycle(at) + Cycle(occ), "case {case}");
                assert!(done >= last_done, "case {case}");
                last_done = done;
            }
        }
    }
}
