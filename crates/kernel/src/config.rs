//! Machine and execution-mode configuration.
//!
//! [`MachineConfig`] mirrors Table 1 of the paper (SimOS parameters chosen
//! to approximate the SGI Origin 3000 memory system). The defaults reproduce
//! the paper's numbers exactly: with zero contention, a local L2 miss takes
//! 170 cycles and a remote miss 290 cycles (asserted by tests in the `mem`
//! crate).

use std::fmt;

/// Geometry of one cache (L1 or L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/line or capacity not
    /// divisible into sets).
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0 && self.line_bytes > 0);
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let sets = self.bytes / (self.ways as u64 * self.line_bytes);
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a positive power of two");
        sets
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.bytes / self.line_bytes
    }
}

/// Memory-system latency/occupancy parameters (Table 1 of the paper).
///
/// All values are in cycles of the 1 GHz processor clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Latencies {
    /// L1 hit time.
    pub l1_hit: u64,
    /// L2 hit time (tag + data).
    pub l2_hit: u64,
    /// `BusTime`: transit, L2 to directory controller.
    pub bus: u64,
    /// `PILocalDCTime`: occupancy of the DC on a local miss.
    pub pi_local_dc: u64,
    /// `PIRemoteDCTime`: occupancy of the local DC on an outgoing miss.
    pub pi_remote_dc: u64,
    /// `NIRemoteDCTime`: occupancy of the local DC on an incoming reply.
    pub ni_remote_dc: u64,
    /// `NILocalDCTime`: occupancy of the remote (home) DC on a remote miss.
    pub ni_local_dc: u64,
    /// `NetTime`: transit through the interconnection network.
    pub net: u64,
    /// `MemTime`: DC to local memory and back.
    pub mem: u64,
    /// Occupancy of a node's network input/output port per message.
    ///
    /// The paper models contention "at the network inputs and outputs" but
    /// does not publish the per-message port time; 8 cycles (a cache line at
    /// 8 bytes/cycle) is our calibrated choice, documented in DESIGN.md.
    pub net_port: u64,
    /// Occupancy of the per-node memory bank per line transfer (reads and
    /// writebacks). `MemTime` is the pipelined *latency* to first data;
    /// the bank stays busy for `mem_bank_occ` cycles per line, bounding a
    /// node's sustained memory bandwidth ("contention is modeled ... at
    /// the memory controller"). Calibrated, not from Table 1: large enough
    /// that a second streaming task on a CMP saturates its node's memory,
    /// which is what caps double mode for the memory-bound kernels
    /// (Figure 1).
    pub mem_bank_occ: u64,
    /// Occupancy of the home sync controller per synchronization message
    /// (barrier arrival/release, lock request/grant). Models the
    /// serialized hand-off of the coherent counter line that an LL/SC
    /// barrier or lock implementation performs per participant.
    pub sync_ctrl: u64,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            l1_hit: 1,
            l2_hit: 10,
            bus: 30,
            pi_local_dc: 60,
            pi_remote_dc: 10,
            ni_remote_dc: 10,
            ni_local_dc: 60,
            net: 50,
            mem: 50,
            net_port: 8,
            mem_bank_occ: 200,
            sync_ctrl: 140,
        }
    }
}

impl Latencies {
    /// Minimum (contention-free) latency of a local L2 miss:
    /// `bus + pi_local_dc + mem + bus` = 170 cycles with defaults.
    pub fn min_local_miss(&self) -> u64 {
        self.bus + self.pi_local_dc + self.mem + self.bus
    }

    /// Minimum (contention-free) latency of a remote L2 miss satisfied from
    /// memory:
    /// `bus + pi_remote_dc + net + ni_local_dc + mem + net + ni_remote_dc + bus`
    /// = 290 cycles with defaults.
    pub fn min_remote_miss(&self) -> u64 {
        self.bus
            + self.pi_remote_dc
            + self.net
            + self.ni_local_dc
            + self.mem
            + self.net
            + self.ni_remote_dc
            + self.bus
    }
}

/// The A-R synchronization methods evaluated in the paper (§3.2, Figure 3).
///
/// `initial_tokens` seeds the token bucket; the R-stream inserts a new token
/// either when it *enters* a barrier/event (local) or when it *exits* it
/// (global, i.e. after all R-streams arrive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArSyncMode {
    /// One-token local (`L1`): A may enter the next session when its
    /// R-stream enters the previous synchronization event. Loosest.
    OneTokenLocal,
    /// Zero-token local (`L0`): A may enter the next session when its
    /// R-stream enters the same synchronization event.
    ZeroTokenLocal,
    /// One-token global (`G1`): A may enter the next session when its
    /// R-stream exits the previous synchronization event.
    OneTokenGlobal,
    /// Zero-token global (`G0`): A may enter the next session when its
    /// R-stream exits the same synchronization event. Tightest.
    ZeroTokenGlobal,
}

impl ArSyncMode {
    /// All four methods, in the order the paper's figures list them.
    pub const ALL: [ArSyncMode; 4] = [
        ArSyncMode::OneTokenLocal,
        ArSyncMode::ZeroTokenLocal,
        ArSyncMode::OneTokenGlobal,
        ArSyncMode::ZeroTokenGlobal,
    ];

    /// Number of tokens in the bucket at task creation.
    pub fn initial_tokens(self) -> u32 {
        match self {
            ArSyncMode::OneTokenLocal | ArSyncMode::OneTokenGlobal => 1,
            ArSyncMode::ZeroTokenLocal | ArSyncMode::ZeroTokenGlobal => 0,
        }
    }

    /// Whether the R-stream inserts a token on barrier *entry* (local) as
    /// opposed to barrier *exit* (global).
    pub fn insert_on_entry(self) -> bool {
        matches!(self, ArSyncMode::OneTokenLocal | ArSyncMode::ZeroTokenLocal)
    }

    /// The paper's short label: `L1`, `L0`, `G1`, `G0`.
    pub fn label(self) -> &'static str {
        match self {
            ArSyncMode::OneTokenLocal => "L1",
            ArSyncMode::ZeroTokenLocal => "L0",
            ArSyncMode::OneTokenGlobal => "G1",
            ArSyncMode::ZeroTokenGlobal => "G0",
        }
    }
}

impl fmt::Display for ArSyncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Slipstream-mode feature knobs (§3 and §4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlipstreamConfig {
    /// Which A-R synchronization method to use.
    pub ar_sync: ArSyncMode,
    /// Number of tokens the A-stream may bank beyond the initial allotment.
    /// The paper uses an unbounded counter; we cap it to keep the semantics
    /// of "n sessions ahead" explicit. Large enough to never bind by default.
    pub max_tokens: u32,
    /// Convert skipped shared stores into exclusive prefetches when the
    /// A-stream is in the same session as its R-stream and not inside a
    /// critical section (§3.3).
    pub exclusive_prefetch: bool,
    /// Issue transparent loads when the A-stream is at least one session
    /// ahead or inside a critical section (§4.1).
    pub transparent_loads: bool,
    /// Use transparent loads as future-sharer hints and self-invalidate /
    /// write back flagged lines at R-stream synchronization points (§4.2).
    pub self_invalidation: bool,
    /// Peak rate of self-invalidation processing: one line per this many
    /// cycles (the paper uses 4).
    pub si_interval: u64,
    /// Cost in cycles for the R-stream to kill and refork a deviated
    /// A-stream (task creation model; §3.2).
    pub refork_penalty: u64,
    /// Dynamically select the A-R synchronization method (the paper's §6
    /// future work: "varying the scheme dynamically during program
    /// execution"): each pair samples all four methods for
    /// `adapt_window` sessions apiece, then locks in the fastest.
    pub ar_adaptive: bool,
    /// Sessions per sampling window in adaptive mode.
    pub adapt_window: u64,
}

impl Default for SlipstreamConfig {
    fn default() -> SlipstreamConfig {
        SlipstreamConfig {
            ar_sync: ArSyncMode::OneTokenGlobal,
            max_tokens: u32::MAX,
            exclusive_prefetch: true,
            transparent_loads: false,
            self_invalidation: false,
            si_interval: 4,
            refork_penalty: 2_000,
            ar_adaptive: false,
            adapt_window: 6,
        }
    }
}

impl SlipstreamConfig {
    /// Adaptive A-R selection (§6): sample all four methods, keep the best.
    pub fn adaptive() -> SlipstreamConfig {
        SlipstreamConfig { ar_adaptive: true, ..SlipstreamConfig::default() }
    }
}

impl SlipstreamConfig {
    /// Prefetch-only slipstream (§3): no transparent loads, no SI.
    pub fn prefetch_only(ar_sync: ArSyncMode) -> SlipstreamConfig {
        SlipstreamConfig { ar_sync, ..SlipstreamConfig::default() }
    }

    /// Prefetching plus transparent loads, without SI (§4.3, middle bars).
    pub fn with_transparent(ar_sync: ArSyncMode) -> SlipstreamConfig {
        SlipstreamConfig {
            ar_sync,
            transparent_loads: true,
            ..SlipstreamConfig::default()
        }
    }

    /// The full §4 configuration: prefetching + transparent loads + SI.
    pub fn with_self_invalidation(ar_sync: ArSyncMode) -> SlipstreamConfig {
        SlipstreamConfig {
            ar_sync,
            transparent_loads: true,
            self_invalidation: true,
            ..SlipstreamConfig::default()
        }
    }
}

/// What a limited-pointer directory does when a line gains more sharers
/// than it has pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowPolicy {
    /// Stop tracking precise sharers; a later write broadcasts
    /// invalidations to every node except the writer (Dir_i B in the
    /// classic taxonomy).
    #[default]
    Broadcast,
}

/// Directory sharer-tracking scheme.
///
/// The default [`DirScheme::FullMap`] tracks every sharer precisely and is
/// the protocol every committed result was produced with. The
/// limited-pointer scheme is an opt-in ablation: it intentionally changes
/// protocol traffic (broadcast invalidations once a line overflows its
/// pointer budget), so runs using it are *not* comparable to full-map
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DirScheme {
    /// Precise bit per node (the paper's protocol). Default.
    #[default]
    FullMap,
    /// Track at most `ptrs` sharer pointers per line; on overflow apply
    /// `overflow` (currently always broadcast-on-write).
    LimitedPointer {
        /// Sharer pointers available per directory entry.
        ptrs: u8,
        /// What happens when the pointers run out.
        overflow: OverflowPolicy,
    },
}

impl DirScheme {
    /// A limited-pointer scheme with `ptrs` pointers and broadcast
    /// overflow — shorthand for the ablation figure and tests.
    pub fn limited(ptrs: u8) -> DirScheme {
        DirScheme::LimitedPointer { ptrs, overflow: OverflowPolicy::Broadcast }
    }
}

impl fmt::Display for DirScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirScheme::FullMap => f.write_str("full-map"),
            DirScheme::LimitedPointer { ptrs, overflow: OverflowPolicy::Broadcast } => {
                write!(f, "limited-{ptrs}-bcast")
            }
        }
    }
}

/// How parallel tasks are mapped onto the machine (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One task per CMP; the second processor idles.
    Single,
    /// Two independent parallel tasks per CMP (2n tasks on n CMPs).
    Double,
    /// One task pair per CMP: R-stream on core 0, reduced A-stream on core 1.
    Slipstream,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecMode::Single => "single",
            ExecMode::Double => "double",
            ExecMode::Slipstream => "slipstream",
        })
    }
}

/// Full description of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of CMP nodes.
    pub nodes: u16,
    /// Per-processor L1 data cache (32 KB, 2-way in the paper).
    pub l1: CacheGeometry,
    /// Per-CMP shared unified L2 (1 MB, 4-way; 128 KB for Water).
    pub l2: CacheGeometry,
    /// Latency/occupancy parameters.
    pub lat: Latencies,
    /// Page size used to interleave shared data across home nodes.
    pub page_bytes: u64,
    /// Maximum ops a CPU may execute between globally visible events (bounds
    /// the window in which a batched private L1 hit could miss a concurrent
    /// back-invalidation; see DESIGN.md §7).
    pub quantum_ops: u32,
    /// Directory-side migratory-sharing detection (an extension the paper
    /// names in §1/§5 via Kaxiras & Goodman / Cox & Fowler): after two
    /// consecutive ownership hand-offs, reads of the line are granted
    /// exclusively, saving the reader's subsequent upgrade. Off by default
    /// (the paper's baseline protocol does not include it).
    pub migratory_opt: bool,
    /// Directory sharer-tracking scheme. [`DirScheme::FullMap`] (the
    /// default) is bit-identical to the historical protocol; the
    /// limited-pointer ablation changes traffic.
    pub dir_scheme: DirScheme,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            nodes: 16,
            l1: CacheGeometry { bytes: 32 << 10, ways: 2, line_bytes: 64 },
            l2: CacheGeometry { bytes: 1 << 20, ways: 4, line_bytes: 64 },
            lat: Latencies::default(),
            page_bytes: 4096,
            quantum_ops: 64,
            migratory_opt: false,
            dir_scheme: DirScheme::FullMap,
        }
    }
}

impl MachineConfig {
    /// Paper configuration with `nodes` CMPs.
    pub fn with_nodes(nodes: u16) -> MachineConfig {
        MachineConfig { nodes, ..MachineConfig::default() }
    }

    /// Paper configuration for the Water benchmarks: a 128 KB L2 "to match
    /// its small working set" (Table 1 footnote).
    pub fn water(nodes: u16) -> MachineConfig {
        let mut cfg = MachineConfig::with_nodes(nodes);
        cfg.l2 = CacheGeometry { bytes: 128 << 10, ways: 4, line_bytes: 64 };
        cfg
    }

    /// Cache line size (L1 and L2 share it).
    ///
    /// # Panics
    ///
    /// Panics if the L1 and L2 line sizes disagree.
    pub fn line_bytes(&self) -> u64 {
        assert_eq!(self.l1.line_bytes, self.l2.line_bytes, "L1/L2 line sizes must match");
        self.l1.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_min_latencies() {
        let lat = Latencies::default();
        assert_eq!(lat.min_local_miss(), 170);
        assert_eq!(lat.min_remote_miss(), 290);
    }

    #[test]
    fn geometry_paper_caches() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.l1.sets(), 256); // 32KB / (2 ways * 64B)
        assert_eq!(cfg.l2.sets(), 4096); // 1MB / (4 ways * 64B)
        assert_eq!(cfg.l2.lines(), 16384);
        assert_eq!(cfg.line_bytes(), 64);
    }

    #[test]
    fn water_config_shrinks_l2() {
        let cfg = MachineConfig::water(8);
        assert_eq!(cfg.nodes, 8);
        assert_eq!(cfg.l2.bytes, 128 << 10);
        assert_eq!(cfg.l2.sets(), 512);
    }

    #[test]
    fn ar_sync_semantics() {
        use ArSyncMode::*;
        assert_eq!(OneTokenLocal.initial_tokens(), 1);
        assert_eq!(ZeroTokenGlobal.initial_tokens(), 0);
        assert!(OneTokenLocal.insert_on_entry());
        assert!(ZeroTokenLocal.insert_on_entry());
        assert!(!OneTokenGlobal.insert_on_entry());
        assert!(!ZeroTokenGlobal.insert_on_entry());
        let labels: Vec<_> = ArSyncMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, ["L1", "L0", "G1", "G0"]);
    }

    #[test]
    fn slipstream_config_presets() {
        let p = SlipstreamConfig::prefetch_only(ArSyncMode::ZeroTokenLocal);
        assert!(p.exclusive_prefetch && !p.transparent_loads && !p.self_invalidation);
        let t = SlipstreamConfig::with_transparent(ArSyncMode::OneTokenGlobal);
        assert!(t.transparent_loads && !t.self_invalidation);
        let s = SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal);
        assert!(s.transparent_loads && s.self_invalidation);
        assert_eq!(s.si_interval, 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheGeometry { bytes: 1000, ways: 2, line_bytes: 48 }.sets();
    }

    #[test]
    fn mode_display() {
        assert_eq!(ExecMode::Single.to_string(), "single");
        assert_eq!(ExecMode::Double.to_string(), "double");
        assert_eq!(ExecMode::Slipstream.to_string(), "slipstream");
        assert_eq!(ArSyncMode::OneTokenGlobal.to_string(), "G1");
    }
}
