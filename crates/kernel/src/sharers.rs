//! Compact, growable sharer sets for the directory protocol.
//!
//! The directory tracks which nodes hold a cached copy of each line. A raw
//! `u128` bit-vector is the fastest possible representation but hard-caps
//! the machine at 128 nodes. [`SharerSet`] keeps the single-word fast path
//! for node indices below 128 — the common case for every paper-sized
//! machine — and transparently spills to a multi-word bitset when a node
//! with a larger index joins, so the machine scales to arbitrary node
//! counts with O(words) set operations instead of O(N) per-node loops.
//!
//! Semantics are pure set-of-[`NodeId`]: equality and emptiness are
//! *logical*, independent of which representation the set happens to be
//! in, and iteration is always in ascending node order (the same order the
//! old `trailing_zeros` fan-out loops produced, which keeps message
//! schedules — and therefore whole simulations — bit-identical).

use std::fmt;

use crate::ids::NodeId;

/// Bits per inline word group. The inline arm packs two of these.
const WORD_BITS: usize = 64;
/// Highest node index the inline representation can hold.
const INLINE_BITS: usize = 128;

/// A set of node IDs, stored as a bit-vector.
///
/// Inline (`u128`, no allocation) while every member is below 128;
/// spills to a heap word vector the first time a larger index is
/// inserted. Removal never demotes — a set that spilled stays spilled,
/// which is fine because spilling only happens on machines with more
/// than 128 nodes in the first place.
#[derive(Clone)]
pub struct SharerSet {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Bit per node for indices 0..128.
    Inline(u128),
    /// Bit per node, 64 indices per word, LSB-first.
    Words(Vec<u64>),
}

impl Default for SharerSet {
    fn default() -> SharerSet {
        SharerSet::new()
    }
}

impl SharerSet {
    /// The empty set.
    pub fn new() -> SharerSet {
        SharerSet { repr: Repr::Inline(0) }
    }

    /// The set containing exactly `n`.
    pub fn single(n: NodeId) -> SharerSet {
        let mut s = SharerSet::new();
        s.insert(n);
        s
    }

    /// The set containing `a` and `b` (which may be equal).
    pub fn pair(a: NodeId, b: NodeId) -> SharerSet {
        let mut s = SharerSet::single(a);
        s.insert(b);
        s
    }

    /// A set from a raw 128-bit mask (bit `i` = node `i`). Used by tests
    /// and the trace JSON exporter's compatibility path.
    pub fn from_mask(mask: u128) -> SharerSet {
        SharerSet { repr: Repr::Inline(mask) }
    }

    /// The set as a 128-bit mask, when every member fits (always true for
    /// machines with at most 128 nodes). `None` once a larger index is
    /// present.
    pub fn as_mask(&self) -> Option<u128> {
        match &self.repr {
            Repr::Inline(m) => Some(*m),
            Repr::Words(w) => {
                if w.iter().skip(2).any(|&x| x != 0) {
                    return None;
                }
                let lo = w.first().copied().unwrap_or(0) as u128;
                let hi = w.get(1).copied().unwrap_or(0) as u128;
                Some(lo | (hi << 64))
            }
        }
    }

    /// Adds `n` to the set.
    #[inline]
    pub fn insert(&mut self, n: NodeId) {
        let i = n.idx();
        match &mut self.repr {
            Repr::Inline(m) if i < INLINE_BITS => *m |= 1u128 << i,
            Repr::Inline(_) => {
                self.spill(i / WORD_BITS + 1);
                self.insert(n);
            }
            Repr::Words(w) => {
                let word = i / WORD_BITS;
                if word >= w.len() {
                    w.resize(word + 1, 0);
                }
                w[word] |= 1u64 << (i % WORD_BITS);
            }
        }
    }

    /// Removes `n` from the set (a no-op if absent).
    #[inline]
    pub fn remove(&mut self, n: NodeId) {
        let i = n.idx();
        match &mut self.repr {
            Repr::Inline(m) => {
                if i < INLINE_BITS {
                    *m &= !(1u128 << i);
                }
            }
            Repr::Words(w) => {
                if let Some(word) = w.get_mut(i / WORD_BITS) {
                    *word &= !(1u64 << (i % WORD_BITS));
                }
            }
        }
    }

    /// Whether `n` is in the set.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        let i = n.idx();
        match &self.repr {
            Repr::Inline(m) => i < INLINE_BITS && (*m >> i) & 1 != 0,
            Repr::Words(w) => {
                w.get(i / WORD_BITS).is_some_and(|word| (word >> (i % WORD_BITS)) & 1 != 0)
            }
        }
    }

    /// Number of members.
    #[inline]
    pub fn count(&self) -> u32 {
        match &self.repr {
            Repr::Inline(m) => m.count_ones(),
            Repr::Words(w) => w.iter().map(|x| x.count_ones()).sum(),
        }
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(m) => *m == 0,
            Repr::Words(w) => w.iter().all(|&x| x == 0),
        }
    }

    /// Empties the set (and drops any spilled storage).
    pub fn clear(&mut self) {
        self.repr = Repr::Inline(0);
    }

    /// Whether any member other than `n` is present.
    #[inline]
    pub fn any_except(&self, n: NodeId) -> bool {
        let i = n.idx();
        match &self.repr {
            Repr::Inline(m) => {
                let masked = if i < INLINE_BITS { *m & !(1u128 << i) } else { *m };
                masked != 0
            }
            Repr::Words(w) => w.iter().enumerate().any(|(wi, &x)| {
                let x = if wi == i / WORD_BITS { x & !(1u64 << (i % WORD_BITS)) } else { x };
                x != 0
            }),
        }
    }

    /// Number of members other than `n`.
    #[inline]
    pub fn count_except(&self, n: NodeId) -> u32 {
        self.count() - self.contains(n) as u32
    }

    /// Heap bytes the representation currently owns (0 while inline).
    /// Reported in the directory-scalability notes in docs/performance.md.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Inline(_) => 0,
            Repr::Words(w) => w.capacity() * std::mem::size_of::<u64>(),
        }
    }

    /// Iterates members in ascending node order.
    pub fn iter(&self) -> SharerIter<'_> {
        let (cur, next_word) = match &self.repr {
            Repr::Inline(m) => (*m as u64, 1),
            Repr::Words(w) => (w.first().copied().unwrap_or(0), 1),
        };
        SharerIter { set: self, cur, next_word }
    }

    /// Logical 64-bit word `i` of the bit-vector.
    fn word(&self, i: usize) -> u64 {
        match &self.repr {
            Repr::Inline(m) => {
                if i < 2 {
                    (m >> (i * WORD_BITS)) as u64
                } else {
                    0
                }
            }
            Repr::Words(w) => w.get(i).copied().unwrap_or(0),
        }
    }

    /// Count of logical words that could be nonzero.
    fn word_len(&self) -> usize {
        match &self.repr {
            Repr::Inline(_) => 2,
            Repr::Words(w) => w.len(),
        }
    }

    fn spill(&mut self, min_words: usize) {
        if let Repr::Inline(m) = self.repr {
            let mut w = vec![0u64; min_words.max(2)];
            w[0] = m as u64;
            w[1] = (m >> 64) as u64;
            self.repr = Repr::Words(w);
        }
    }
}

impl PartialEq for SharerSet {
    /// Logical equality: two sets with the same members are equal no
    /// matter which representation each is in.
    fn eq(&self, other: &SharerSet) -> bool {
        let words = self.word_len().max(other.word_len());
        (0..words).all(|i| self.word(i) == other.word(i))
    }
}

impl Eq for SharerSet {}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}", n.0)?;
        }
        f.write_str("}")
    }
}

/// Ascending-order member iterator (see [`SharerSet::iter`]).
pub struct SharerIter<'a> {
    set: &'a SharerSet,
    /// Remaining bits of the word currently being drained.
    cur: u64,
    /// Index of the next logical word to load once `cur` is exhausted.
    next_word: usize,
}

impl Iterator for SharerIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.cur == 0 {
            if self.next_word >= self.set.word_len() {
                return None;
            }
            self.cur = self.set.word(self.next_word);
            self.next_word += 1;
        }
        let bit = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        let idx = (self.next_word - 1) * WORD_BITS + bit;
        Some(NodeId(idx as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn basic_ops_inline() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(n(3));
        s.insert(n(127));
        s.insert(n(3));
        assert_eq!(s.count(), 2);
        assert!(s.contains(n(3)) && s.contains(n(127)) && !s.contains(n(4)));
        assert!(s.any_except(n(3)));
        assert_eq!(s.count_except(n(3)), 1);
        assert_eq!(s.count_except(n(99)), 2);
        s.remove(n(3));
        assert!(!s.contains(n(3)));
        assert_eq!(s.heap_bytes(), 0);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn spills_above_128_and_stays_correct() {
        let mut s = SharerSet::single(n(5));
        s.insert(n(200));
        assert!(s.heap_bytes() > 0);
        assert!(s.contains(n(5)) && s.contains(n(200)));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().map(|x| x.0).collect::<Vec<_>>(), vec![5, 200]);
        assert!(s.any_except(n(200)));
        s.remove(n(5));
        assert!(!s.any_except(n(200)));
        assert_eq!(s.as_mask(), None);
        s.remove(n(200));
        assert!(s.is_empty());
        assert_eq!(s.as_mask(), Some(0));
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut spilled = SharerSet::single(n(7));
        spilled.insert(n(300));
        spilled.remove(n(300));
        let inline = SharerSet::single(n(7));
        assert_eq!(spilled, inline);
        assert_eq!(inline, spilled);
        assert_ne!(spilled, SharerSet::single(n(8)));
        assert_eq!(SharerSet::new(), SharerSet::from_mask(0));
    }

    #[test]
    fn iteration_matches_trailing_zeros_order() {
        let mask: u128 = (1 << 0) | (1 << 9) | (1 << 64) | (1 << 127);
        let s = SharerSet::from_mask(mask);
        let got: Vec<u16> = s.iter().map(|x| x.0).collect();
        // The reference order of the old fan-out loop.
        let mut want = Vec::new();
        let mut rest = mask;
        while rest != 0 {
            want.push(rest.trailing_zeros() as u16);
            rest &= rest - 1;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn pair_and_mask_roundtrip() {
        let s = SharerSet::pair(n(2), n(2));
        assert_eq!(s.count(), 1);
        let s = SharerSet::pair(n(2), n(66));
        assert_eq!(s.as_mask(), Some((1 << 2) | (1 << 66)));
    }

    /// Differential property test: a `SharerSet` driven by a seeded op
    /// sequence agrees with a reference `u128` model on every observable,
    /// for node indices below 128.
    #[test]
    fn differential_vs_u128_model() {
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0x5eed_5e75 ^ seed);
            let mut set = SharerSet::new();
            let mut model: u128 = 0;
            for _ in 0..4000 {
                let node = n(rng.next_below(128) as u16);
                match rng.next_below(4) {
                    0 | 1 => {
                        set.insert(node);
                        model |= 1u128 << node.idx();
                    }
                    2 => {
                        set.remove(node);
                        model &= !(1u128 << node.idx());
                    }
                    _ => {
                        if rng.next_below(64) == 0 {
                            set.clear();
                            model = 0;
                        }
                    }
                }
                let probe = n(rng.next_below(128) as u16);
                assert_eq!(set.contains(probe), (model >> probe.idx()) & 1 != 0);
                assert_eq!(set.count(), model.count_ones());
                assert_eq!(set.is_empty(), model == 0);
                assert_eq!(
                    set.any_except(probe),
                    model & !(1u128 << probe.idx()) != 0
                );
                assert_eq!(
                    set.count_except(probe),
                    (model & !(1u128 << probe.idx())).count_ones()
                );
                assert_eq!(set.as_mask(), Some(model));
                assert_eq!(set, SharerSet::from_mask(model));
            }
            // Iteration order must match the trailing_zeros drain.
            let got: Vec<u16> = set.iter().map(|x| x.0).collect();
            let mut want = Vec::new();
            let mut rest = model;
            while rest != 0 {
                want.push(rest.trailing_zeros() as u16);
                rest &= rest - 1;
            }
            assert_eq!(got, want);
        }
    }

    /// The same differential, but with half the inserts above 128 so the
    /// spilled representation is exercised against a two-word model.
    #[test]
    fn differential_spilled_vs_word_model() {
        let mut rng = SplitMix64::new(0xb16_5e7);
        let mut set = SharerSet::new();
        let mut model = [0u64; 4]; // 256 node indices
        for _ in 0..4000 {
            let i = rng.next_below(256) as usize;
            if rng.next_below(3) < 2 {
                set.insert(n(i as u16));
                model[i / 64] |= 1 << (i % 64);
            } else {
                set.remove(n(i as u16));
                model[i / 64] &= !(1 << (i % 64));
            }
            let p = rng.next_below(256) as usize;
            assert_eq!(set.contains(n(p as u16)), (model[p / 64] >> (p % 64)) & 1 != 0);
            assert_eq!(set.count(), model.iter().map(|w| w.count_ones()).sum::<u32>());
        }
        let got: Vec<u16> = set.iter().map(|x| x.0).collect();
        let want: Vec<u16> = (0..256u16)
            .filter(|&i| (model[i as usize / 64] >> (i % 64)) & 1 != 0)
            .collect();
        assert_eq!(got, want);
    }
}
