/// A tiny, fast, deterministic RNG (SplitMix64).
///
/// Used by workload generators that need pseudo-random but reproducible
/// structure (e.g. the sparse matrix pattern of CG). Deliberately not a
/// cryptographic RNG; determinism across runs and platforms is the only
/// requirement.
///
/// # Example
///
/// ```
/// use slipstream_kernel::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; slight bias is irrelevant
        // for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
