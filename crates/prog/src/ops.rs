use std::fmt;

use slipstream_kernel::Addr;

/// Identifies a barrier object. All tasks of the application participate in
/// every barrier; the same id may be reused (the sync controller counts
/// generations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BarrierId(pub u32);

/// Identifies a lock object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(pub u32);

/// Identifies an event (pairwise flag) object with semaphore semantics:
/// each `EventWait` by a task consumes one `EventPost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId(pub u32);

/// Whether a memory access touches globally shared data or task-private
/// data.
///
/// Private data is never accessed by another task (the A-stream copy of a
/// task gets its *own* private allocation, as in the paper: "each task has
/// its own private data, but shared data are not replicated").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Globally shared data, subject to coherence.
    Shared,
    /// Task-private data, homed at the owning task's node.
    Private,
}

/// One dynamic operation of a task program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Execute for `n` cycles without touching memory (models ALU work and
    /// private accesses that hit in registers/L1).
    Compute(u32),
    /// Load from `addr`.
    Load { addr: Addr, space: Space },
    /// Store to `addr`.
    ///
    /// In slipstream mode, shared stores are squashed in the A-stream and
    /// possibly converted to exclusive prefetches (§3.3 of the paper).
    Store { addr: Addr, space: Space },
    /// Global barrier. A session boundary for A-R synchronization.
    Barrier(BarrierId),
    /// Acquire a lock (enter a critical section).
    Lock(LockId),
    /// Release a lock (leave a critical section).
    Unlock(LockId),
    /// Post (signal) an event.
    EventPost(EventId),
    /// Wait for an event post. A session boundary for A-R synchronization.
    EventWait(EventId),
    /// A global operation with a visible side effect (system call, I/O,
    /// shared allocation). Performed once, by the R-stream; the A-stream
    /// waits for the R-stream's result (§3.2).
    Input,
    /// Marks a point where the A-stream takes a wrong control path for `n`
    /// extra compute cycles (models user-level synchronization the reduced
    /// stream cannot honor). No-op for R-streams and conventional tasks;
    /// used to exercise deviation detection and recovery.
    DivergeInA(u32),
}

impl Op {
    /// Convenience constructor for a shared load.
    #[inline]
    pub fn load_shared(addr: Addr) -> Op {
        Op::Load { addr, space: Space::Shared }
    }

    /// Convenience constructor for a shared store.
    #[inline]
    pub fn store_shared(addr: Addr) -> Op {
        Op::Store { addr, space: Space::Shared }
    }

    /// Convenience constructor for a private load.
    #[inline]
    pub fn load_private(addr: Addr) -> Op {
        Op::Load { addr, space: Space::Private }
    }

    /// Convenience constructor for a private store.
    #[inline]
    pub fn store_private(addr: Addr) -> Op {
        Op::Store { addr, space: Space::Private }
    }

    /// Whether this op is a memory access (load or store).
    #[inline]
    pub fn is_access(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// Whether this op is a synchronization operation.
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::Barrier(_)
                | Op::Lock(_)
                | Op::Unlock(_)
                | Op::EventPost(_)
                | Op::EventWait(_)
        )
    }

    /// Whether this op ends an A-R session (barrier or event-wait, §3.2).
    #[inline]
    pub fn ends_session(&self) -> bool {
        matches!(self, Op::Barrier(_) | Op::EventWait(_))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute(n) => write!(f, "compute({n})"),
            Op::Load { addr, space: Space::Shared } => write!(f, "ld.sh {addr}"),
            Op::Load { addr, space: Space::Private } => write!(f, "ld.pr {addr}"),
            Op::Store { addr, space: Space::Shared } => write!(f, "st.sh {addr}"),
            Op::Store { addr, space: Space::Private } => write!(f, "st.pr {addr}"),
            Op::Barrier(b) => write!(f, "barrier#{}", b.0),
            Op::Lock(l) => write!(f, "lock#{}", l.0),
            Op::Unlock(l) => write!(f, "unlock#{}", l.0),
            Op::EventPost(e) => write!(f, "post#{}", e.0),
            Op::EventWait(e) => write!(f, "wait#{}", e.0),
            Op::Input => write!(f, "input"),
            Op::DivergeInA(n) => write!(f, "diverge({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        let ld = Op::load_shared(Addr(0));
        assert!(ld.is_access() && !ld.is_sync() && !ld.ends_session());
        let bar = Op::Barrier(BarrierId(1));
        assert!(!bar.is_access() && bar.is_sync() && bar.ends_session());
        let ew = Op::EventWait(EventId(1));
        assert!(ew.ends_session());
        let ep = Op::EventPost(EventId(1));
        assert!(ep.is_sync() && !ep.ends_session());
        let lk = Op::Lock(LockId(0));
        assert!(lk.is_sync() && !lk.ends_session());
        assert!(!Op::Compute(3).is_access());
        assert!(!Op::Input.is_sync());
    }

    #[test]
    fn constructors_set_space() {
        assert_eq!(Op::load_private(Addr(8)), Op::Load { addr: Addr(8), space: Space::Private });
        assert_eq!(Op::store_shared(Addr(8)), Op::Store { addr: Addr(8), space: Space::Shared });
    }

    #[test]
    fn display_is_nonempty() {
        for op in [
            Op::Compute(1),
            Op::load_shared(Addr(0)),
            Op::store_private(Addr(0)),
            Op::Barrier(BarrierId(0)),
            Op::Lock(LockId(0)),
            Op::Unlock(LockId(0)),
            Op::EventPost(EventId(0)),
            Op::EventWait(EventId(0)),
            Op::Input,
            Op::DivergeInA(5),
        ] {
            assert!(!op.to_string().is_empty());
        }
    }
}
