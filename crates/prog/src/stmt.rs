use std::fmt;
use std::rc::Rc;

use crate::iter::ProgramIter;
use crate::ops::Op;

/// Loop-index context passed to generator closures.
///
/// Indices are exposed innermost-first: `ctx.i(0)` is the index of the
/// nearest enclosing loop, `ctx.i(1)` the next one out, and so on.
#[derive(Debug)]
pub struct IdxCtx<'a> {
    idx: &'a [u64],
}

impl<'a> IdxCtx<'a> {
    pub(crate) fn new(idx: &'a [u64]) -> IdxCtx<'a> {
        IdxCtx { idx }
    }

    /// Index of the `d`-th enclosing loop (0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not within the current loop nest depth.
    #[inline]
    pub fn i(&self, d: usize) -> u64 {
        let n = self.idx.len();
        assert!(d < n, "loop depth {d} out of range (nest depth {n})");
        self.idx[n - 1 - d]
    }

    /// Current loop nest depth.
    pub fn depth(&self) -> usize {
        self.idx.len()
    }
}

/// Closure yielding a single op from the current loop indices.
pub type GenFn = Rc<dyn Fn(&IdxCtx) -> Op>;
/// Closure emitting a batch of ops (used for hot inner loops where
/// per-op interpretation overhead matters).
pub type BlockFn = Rc<dyn Fn(&IdxCtx, &mut Vec<Op>)>;
/// Closure computing a loop trip count from enclosing indices.
pub type CountFn = Rc<dyn Fn(&IdxCtx) -> u64>;
/// Closure evaluating a condition from the current loop indices.
pub type CondFn = Rc<dyn Fn(&IdxCtx) -> bool>;

/// One node of a program's statement tree.
///
/// Cheap to clone (`Rc` everywhere) so a program can be re-instantiated —
/// e.g. when the R-stream kills and reforks a deviated A-stream.
#[derive(Clone)]
pub enum Stmt {
    /// A constant operation.
    Op(Op),
    /// An operation computed from the loop indices.
    Gen(GenFn),
    /// A batch of operations computed from the loop indices.
    Block(BlockFn),
    /// Sequential composition.
    Seq(Rc<[Stmt]>),
    /// Counted loop; the trip count may depend on enclosing indices.
    For { count: Count, body: Rc<Stmt> },
    /// Conditional on loop indices.
    If { cond: CondFn, then_s: Rc<Stmt>, else_s: Option<Rc<Stmt>> },
}

/// A loop trip count: constant or computed from enclosing loop indices.
#[derive(Clone)]
pub enum Count {
    /// Fixed trip count.
    Const(u64),
    /// Trip count computed from enclosing indices.
    Dyn(CountFn),
}

impl Count {
    pub(crate) fn eval(&self, ctx: &IdxCtx) -> u64 {
        match self {
            Count::Const(n) => *n,
            Count::Dyn(f) => f(ctx),
        }
    }
}

impl fmt::Debug for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Op(op) => write!(f, "Op({op})"),
            Stmt::Gen(_) => write!(f, "Gen(..)"),
            Stmt::Block(_) => write!(f, "Block(..)"),
            Stmt::Seq(v) => f.debug_list().entries(v.iter()).finish(),
            Stmt::For { count, body } => {
                let c = match count {
                    Count::Const(n) => format!("{n}"),
                    Count::Dyn(_) => "dyn".to_string(),
                };
                write!(f, "For[{c}] {body:?}")
            }
            Stmt::If { else_s, .. } => {
                write!(f, "If(..) then .. {}", if else_s.is_some() { "else .." } else { "" })
            }
        }
    }
}

/// A complete task program: a named statement tree.
///
/// `Program` is an immutable description; execution state lives in
/// [`ProgramIter`], so a program can be iterated many times (each A-stream
/// refork starts a fresh iterator).
#[derive(Debug, Clone)]
pub struct Program {
    name: Rc<str>,
    root: Rc<Stmt>,
}

impl Program {
    /// Creates a program from a statement tree.
    pub fn new(name: &str, root: Stmt) -> Program {
        Program { name: name.into(), root: Rc::new(root) }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root statement.
    pub fn root(&self) -> &Rc<Stmt> {
        &self.root
    }

    /// Starts lazy interpretation from the beginning.
    pub fn iter(&self) -> ProgramIter {
        ProgramIter::new(self.clone())
    }

    /// Total number of dynamic ops (walks the whole program; test/debug use).
    pub fn count_ops(&self) -> u64 {
        self.iter().count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_ctx_innermost_first() {
        let idx = [2u64, 5, 9]; // outermost..innermost
        let ctx = IdxCtx::new(&idx);
        assert_eq!(ctx.i(0), 9);
        assert_eq!(ctx.i(1), 5);
        assert_eq!(ctx.i(2), 2);
        assert_eq!(ctx.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn idx_ctx_depth_overflow_panics() {
        let idx = [1u64];
        IdxCtx::new(&idx).i(1);
    }

    #[test]
    fn debug_formats() {
        let s = Stmt::Seq(
            vec![
                Stmt::Op(Op::Compute(1)),
                Stmt::For { count: Count::Const(3), body: Rc::new(Stmt::Op(Op::Compute(2))) },
            ]
            .into(),
        );
        let d = format!("{s:?}");
        assert!(d.contains("For[3]"));
    }
}
