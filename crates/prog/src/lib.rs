//! A small DSL for describing parallel scientific kernels as *access-pattern
//! programs*.
//!
//! The slipstream paper evaluates nine Splash-2/NAS kernels compiled for
//! IRIX and run under SimOS. This workspace reproduces those kernels as
//! programs in this DSL: each task is a lazily-interpreted tree of loops
//! whose leaves are typed operations ([`Op`]) — compute bursts, loads and
//! stores to shared or private memory, and synchronization (barriers, locks,
//! events).
//!
//! Programs are *timing* programs: they carry the address stream and
//! control structure of the kernel, not its arithmetic values. This is
//! faithful to the paper's own argument (§3.1): in SPMD scientific codes,
//! control flow and address generation depend on private data (loop indices,
//! task ids), not on shared values — which is exactly why the reduced
//! A-stream stays accurate.
//!
//! # Example
//!
//! ```
//! use slipstream_prog::{Layout, ProgBuilder, Op, BarrierId};
//!
//! let mut layout = Layout::new();
//! let grid = layout.shared("grid", 1 << 16);
//! let mut b = ProgBuilder::new();
//! b.for_n(4, |b| {
//!     b.gen(move |ctx| Op::load_shared(grid.at(ctx.i(0) * 64)));
//!     b.compute(100);
//! });
//! b.barrier(BarrierId(0));
//! let prog = b.build("demo");
//! let ops: Vec<_> = prog.iter().collect();
//! assert_eq!(ops.len(), 9); // 4 * (load + compute) + barrier
//! ```

mod builder;
mod footprint;
mod iter;
mod layout;
mod ops;
mod stmt;

pub use builder::ProgBuilder;
pub use footprint::OpCounts;
pub use iter::ProgramIter;
pub use layout::{ArrayRef, InstanceId, Layout, RegionInfo, RegionKind};
pub use ops::{BarrierId, EventId, LockId, Op, Space};
pub use stmt::{IdxCtx, Program, Stmt};
