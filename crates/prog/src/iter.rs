use std::collections::VecDeque;
use std::rc::Rc;

use crate::ops::Op;
use crate::stmt::{IdxCtx, Program, Stmt};

/// Lazy interpreter over a [`Program`]'s statement tree.
///
/// Holds an explicit frame stack (no recursion), so arbitrarily deep loop
/// nests and very long programs iterate in constant memory. Implements
/// [`Iterator`] with `Item = Op`.
///
/// # Example
///
/// ```
/// use slipstream_prog::{ProgBuilder, Op};
///
/// let mut b = ProgBuilder::new();
/// b.for_n(3, |b| {
///     b.compute(10);
/// });
/// let prog = b.build("p");
/// assert_eq!(prog.iter().count(), 3);
/// // A second iterator restarts from the beginning (A-stream refork).
/// assert_eq!(prog.iter().next(), Some(Op::Compute(10)));
/// ```
#[derive(Debug, Clone)]
pub struct ProgramIter {
    prog: Program,
    frames: Vec<Frame>,
    /// Loop indices, outermost first.
    idx: Vec<u64>,
    pending: VecDeque<Op>,
    scratch: Vec<Op>,
}

#[derive(Debug, Clone)]
enum Frame {
    Seq { stmts: Rc<[Stmt]>, pos: usize },
    For { body: Rc<Stmt>, n: u64, i: u64 },
}

impl ProgramIter {
    /// Starts interpretation of `prog` from the beginning.
    pub fn new(prog: Program) -> ProgramIter {
        let root = prog.root().clone();
        let mut it = ProgramIter {
            prog,
            frames: Vec::with_capacity(16),
            idx: Vec::with_capacity(8),
            pending: VecDeque::with_capacity(32),
            scratch: Vec::with_capacity(32),
        };
        it.enter(&root);
        it
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.prog
    }

    /// Discards all progress and restarts from the program entry point
    /// (used when a deviated A-stream is killed and reforked).
    pub fn restart(&mut self) {
        self.frames.clear();
        self.idx.clear();
        self.pending.clear();
        let root = self.prog.root().clone();
        self.enter(&root);
    }

    fn enter(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Op(op) => self.pending.push_back(*op),
            Stmt::Gen(f) => {
                let op = f(&IdxCtx::new(&self.idx));
                self.pending.push_back(op);
            }
            Stmt::Block(f) => {
                self.scratch.clear();
                f(&IdxCtx::new(&self.idx), &mut self.scratch);
                self.pending.extend(self.scratch.drain(..));
            }
            Stmt::Seq(stmts) => {
                self.frames.push(Frame::Seq { stmts: stmts.clone(), pos: 0 });
            }
            Stmt::For { count, body } => {
                let n = count.eval(&IdxCtx::new(&self.idx));
                self.idx.push(0);
                self.frames.push(Frame::For { body: body.clone(), n, i: 0 });
            }
            Stmt::If { cond, then_s, else_s } => {
                if cond(&IdxCtx::new(&self.idx)) {
                    let s = then_s.clone();
                    self.enter(&s);
                } else if let Some(e) = else_s {
                    let s = e.clone();
                    self.enter(&s);
                }
            }
        }
    }
}

impl Iterator for ProgramIter {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.pending.pop_front() {
                return Some(op);
            }
            let action = match self.frames.last_mut() {
                None => return None,
                Some(Frame::Seq { stmts, pos }) => {
                    if *pos < stmts.len() {
                        let s = stmts[*pos].clone();
                        *pos += 1;
                        Action::Enter(s)
                    } else {
                        Action::PopSeq
                    }
                }
                Some(Frame::For { body, n, i }) => {
                    if *i < *n {
                        let k = *i;
                        *i += 1;
                        let b = body.clone();
                        Action::Iterate(b, k)
                    } else {
                        Action::PopFor
                    }
                }
            };
            match action {
                Action::Enter(s) => self.enter(&s),
                Action::Iterate(b, k) => {
                    *self.idx.last_mut().expect("For frame always has an index slot") = k;
                    self.enter(&b);
                }
                Action::PopSeq => {
                    self.frames.pop();
                }
                Action::PopFor => {
                    self.frames.pop();
                    self.idx.pop();
                }
            }
        }
    }
}

enum Action {
    Enter(Stmt),
    Iterate(Rc<Stmt>, u64),
    PopSeq,
    PopFor,
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgBuilder;
    use crate::ops::{BarrierId, Op};
    use slipstream_kernel::Addr;

    #[test]
    fn nested_loops_generate_row_major_order() {
        let mut b = ProgBuilder::new();
        b.for_n(2, |b| {
            b.for_n(3, |b| {
                b.gen(|ctx| Op::load_shared(Addr(ctx.i(1) * 100 + ctx.i(0))));
            });
        });
        let addrs: Vec<u64> = b
            .build("nest")
            .iter()
            .map(|op| match op {
                Op::Load { addr, .. } => addr.0,
                _ => panic!("unexpected op"),
            })
            .collect();
        assert_eq!(addrs, [0, 1, 2, 100, 101, 102]);
    }

    #[test]
    fn zero_trip_loop_is_empty() {
        let mut b = ProgBuilder::new();
        b.for_n(0, |b| { b.compute(1); });
        b.compute(9);
        let ops: Vec<_> = b.build("z").iter().collect();
        assert_eq!(ops, [Op::Compute(9)]);
    }

    #[test]
    fn dynamic_count_uses_outer_index() {
        // Triangular loop: for i in 0..4 { for j in 0..i { op } }
        let mut b = ProgBuilder::new();
        b.for_n(4, |b| {
            b.for_dyn(
                |ctx| ctx.i(0),
                |b| { b.compute(1); },
            );
        });
        assert_eq!(b.build("tri").iter().count(), 6); // 0+1+2+3 triangular
    }

    #[test]
    fn if_selects_branch_by_index() {
        let mut b = ProgBuilder::new();
        b.for_n(4, |b| {
            b.if_(
                |ctx| ctx.i(0) % 2 == 0,
                |b| { b.compute(1); },
                Some(|b: &mut ProgBuilder| { b.compute(2); }),
            );
        });
        let ops: Vec<_> = b.build("if").iter().collect();
        assert_eq!(ops, [Op::Compute(1), Op::Compute(2), Op::Compute(1), Op::Compute(2)]);
    }

    #[test]
    fn if_without_else_skips() {
        let mut b = ProgBuilder::new();
        b.for_n(3, |b| {
            b.if_(|ctx| ctx.i(0) == 1, |b| { b.compute(7); }, None::<fn(&mut ProgBuilder)>);
        });
        let ops: Vec<_> = b.build("ifn").iter().collect();
        assert_eq!(ops, [Op::Compute(7)]);
    }

    #[test]
    fn block_emits_batches() {
        let mut b = ProgBuilder::new();
        b.for_n(2, |b| {
            b.block(|ctx, out| {
                for j in 0..3 {
                    out.push(Op::load_shared(Addr(ctx.i(0) * 10 + j)));
                }
            });
        });
        assert_eq!(b.build("blk").iter().count(), 6);
    }

    #[test]
    fn restart_replays_identically() {
        let mut b = ProgBuilder::new();
        b.for_n(5, |b| {
            b.gen(|ctx| Op::load_shared(Addr(ctx.i(0))));
            b.barrier(BarrierId(0));
        });
        let prog = b.build("r");
        let mut it = prog.iter();
        let first: Vec<_> = (&mut it).take(4).collect();
        it.restart();
        let replay: Vec<_> = it.take(4).collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn iterator_is_fused_after_end() {
        let mut b = ProgBuilder::new();
        b.compute(1);
        let prog = b.build("f");
        let mut it = prog.iter();
        assert!(it.next().is_some());
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn deep_nesting_constant_stack() {
        let mut b = ProgBuilder::new();
        fn nest(b: &mut ProgBuilder, d: u32) {
            if d == 0 {
                b.compute(1);
            } else {
                b.for_n(1, |b| nest(b, d - 1));
            }
        }
        nest(&mut b, 100);
        assert_eq!(b.build("deep").iter().count(), 1);
    }
}
