use std::fmt;

use slipstream_kernel::Addr;

/// Identifies one *running stream instance* (an R-stream, an A-stream, or a
/// conventional task). Private regions are owned by an instance, so the
/// A-stream copy of a task gets private storage disjoint from its R-stream's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstanceId(pub u32);

/// Who may touch a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Globally shared; home pages interleaved across nodes.
    Shared,
    /// Globally shared, but predominantly accessed by one task: homed at
    /// that task's node, modeling first-touch page placement on the
    /// paper's Origin-like machine.
    SharedOwned(u32),
    /// Private to one stream instance; homed at that instance's node.
    Private(InstanceId),
}

/// One allocated region of the simulated address space.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Human-readable name (for debugging and reports).
    pub name: String,
    /// First byte address.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
    /// Sharing kind.
    pub kind: RegionKind,
}

impl RegionInfo {
    /// Exclusive end address.
    pub fn end(&self) -> Addr {
        Addr(self.base.0 + self.bytes)
    }
}

/// A lightweight handle to an allocated array, used inside program-builder
/// closures to compute element addresses.
///
/// # Example
///
/// ```
/// use slipstream_prog::Layout;
///
/// let mut layout = Layout::new();
/// let v = layout.shared("v", 1024 * 8).elems(8); // 1024 doubles
/// assert_eq!(v.at(1).0, v.at(0).0 + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayRef {
    base: Addr,
    bytes: u64,
    elem_bytes: u64,
}

impl ArrayRef {
    /// Reinterpret with a different element size.
    pub fn elems(self, elem_bytes: u64) -> ArrayRef {
        assert!(elem_bytes > 0);
        ArrayRef { elem_bytes, ..self }
    }

    /// Byte address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the element is out of bounds.
    #[inline]
    pub fn at(self, i: u64) -> Addr {
        debug_assert!(
            (i + 1) * self.elem_bytes <= self.bytes,
            "array index {i} out of bounds ({} bytes, {}-byte elems)",
            self.bytes,
            self.elem_bytes
        );
        Addr(self.base.0 + i * self.elem_bytes)
    }

    /// Byte address at byte offset `off` (bounds-checked in debug builds).
    #[inline]
    pub fn at_byte(self, off: u64) -> Addr {
        debug_assert!(off < self.bytes);
        Addr(self.base.0 + off)
    }

    /// First byte address.
    pub fn base(self) -> Addr {
        self.base
    }

    /// Region size in bytes.
    pub fn bytes(self) -> u64 {
        self.bytes
    }

    /// Number of elements at the current element size.
    pub fn len(self) -> u64 {
        self.bytes / self.elem_bytes
    }

    /// Whether the array holds no complete element.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

/// The global address-space allocator for one application run.
///
/// Regions are allocated sequentially, each aligned to a page boundary so
/// that home-node interleaving never splits a region's line between
/// unrelated data. The region table is later consumed by the memory system
/// to build its home map.
#[derive(Debug, Clone)]
pub struct Layout {
    page_bytes: u64,
    next: u64,
    regions: Vec<RegionInfo>,
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

impl Layout {
    /// Creates an empty layout with 4 KB pages.
    pub fn new() -> Layout {
        Layout::with_page_size(4096)
    }

    /// Creates an empty layout with a custom page size (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn with_page_size(page_bytes: u64) -> Layout {
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        // Skip page 0 so that Addr(0) is never a valid allocated address.
        Layout { page_bytes, next: page_bytes, regions: Vec::new() }
    }

    /// Allocates a shared region of `bytes` bytes.
    pub fn shared(&mut self, name: &str, bytes: u64) -> ArrayRef {
        self.alloc(name, bytes, RegionKind::Shared)
    }

    /// Allocates a shared region whose pages are homed at task
    /// `owner_task`'s node (first-touch placement for block-partitioned
    /// data).
    pub fn shared_owned(&mut self, name: &str, bytes: u64, owner_task: usize) -> ArrayRef {
        self.alloc(name, bytes, RegionKind::SharedOwned(owner_task as u32))
    }

    /// Allocates a region private to `owner`.
    pub fn private(&mut self, owner: InstanceId, name: &str, bytes: u64) -> ArrayRef {
        self.alloc(name, bytes, RegionKind::Private(owner))
    }

    fn alloc(&mut self, name: &str, bytes: u64, kind: RegionKind) -> ArrayRef {
        assert!(bytes > 0, "cannot allocate an empty region");
        let base = Addr(self.next);
        let padded = bytes.div_ceil(self.page_bytes) * self.page_bytes;
        self.next += padded;
        self.regions.push(RegionInfo { name: name.to_string(), base, bytes: padded, kind });
        ArrayRef { base, bytes, elem_bytes: 1 }
    }

    /// Inserts a region at an explicit base address, bypassing the
    /// sequential allocator — no page alignment, no overlap avoidance.
    ///
    /// The allocating methods can never produce an ill-formed layout, so
    /// tooling that must construct one (the verifier's SC008 selftest
    /// case, layout fault-injection) uses this instead. Simulator
    /// workloads should always allocate through [`Layout::shared`],
    /// [`Layout::shared_owned`], or [`Layout::private`].
    pub fn insert_region_at(
        &mut self,
        name: &str,
        base: Addr,
        bytes: u64,
        kind: RegionKind,
    ) -> ArrayRef {
        assert!(bytes > 0, "cannot allocate an empty region");
        self.regions.push(RegionInfo { name: name.to_string(), base, bytes, kind });
        ArrayRef { base, bytes, elem_bytes: 1 }
    }

    /// The allocated regions, in allocation order.
    pub fn regions(&self) -> &[RegionInfo] {
        &self.regions
    }

    /// Page size used for alignment and home interleaving.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total allocated bytes (including padding).
    pub fn total_bytes(&self) -> u64 {
        self.next - self.page_bytes
    }

    /// Looks up the region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.base <= addr && addr < r.end())
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "layout: {} regions, {} bytes", self.regions.len(), self.total_bytes())?;
        for r in &self.regions {
            writeln!(f, "  {:>10} .. {:>10}  {:?}  {}", r.base.0, r.end().0, r.kind, r.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.shared("a", 100);
        let b = l.private(InstanceId(3), "b", 5000);
        assert_eq!(a.base().0 % 4096, 0);
        assert_eq!(b.base().0 % 4096, 0);
        assert!(b.base().0 >= a.base().0 + 4096);
        assert_eq!(l.regions().len(), 2);
        assert_eq!(l.regions()[1].kind, RegionKind::Private(InstanceId(3)));
    }

    #[test]
    fn addr_zero_is_never_allocated() {
        let mut l = Layout::new();
        let a = l.shared("a", 8);
        assert!(a.base().0 > 0);
        assert!(l.region_of(Addr(0)).is_none());
    }

    #[test]
    fn region_lookup() {
        let mut l = Layout::new();
        let a = l.shared("grid", 8192);
        assert_eq!(l.region_of(a.at_byte(8191)).unwrap().name, "grid");
        assert!(l.region_of(Addr(a.base().0 + 8192)).is_none());
    }

    #[test]
    fn array_indexing() {
        let mut l = Layout::new();
        let v = l.shared("v", 64).elems(8);
        assert_eq!(v.len(), 8);
        assert!(!v.is_empty());
        assert_eq!(v.at(0), v.base());
        assert_eq!(v.at(7).0, v.base().0 + 56);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_oob_panics_in_debug() {
        let mut l = Layout::new();
        let v = l.shared("v", 64).elems(8);
        let _ = v.at(8);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_alloc_panics() {
        Layout::new().shared("x", 0);
    }

    #[test]
    fn display_lists_regions() {
        let mut l = Layout::new();
        l.shared("grid", 128);
        let s = l.to_string();
        assert!(s.contains("grid"));
    }
}
