//! Read-only footprint accessors over a [`Program`]'s op stream.
//!
//! The static sharing analyzer (`slipstream-check`) and the `predict`
//! binary both need per-program summaries — how many accesses, how much
//! compute, where the barrier-phase boundaries fall — without mutating or
//! re-deriving the statement tree. These helpers walk [`Program::iter`]
//! once and are purely observational: they never touch the layout or the
//! simulator.

use crate::ops::{Op, Space};
use crate::stmt::Program;

/// Per-program operation counts, split the way the analyzer bills them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `Load` ops with `Space::Shared`.
    pub shared_loads: u64,
    /// `Store` ops with `Space::Shared`.
    pub shared_stores: u64,
    /// `Load` ops with `Space::Private`.
    pub private_loads: u64,
    /// `Store` ops with `Space::Private`.
    pub private_stores: u64,
    /// Total cycles across `Compute` ops.
    pub compute_cycles: u64,
    /// `Barrier` ops (equals the number of phase boundaries the task sees).
    pub barriers: u64,
    /// `Lock` ops.
    pub locks: u64,
    /// `Unlock` ops.
    pub unlocks: u64,
    /// `EventPost` ops.
    pub event_posts: u64,
    /// `EventWait` ops.
    pub event_waits: u64,
    /// `Input` ops.
    pub inputs: u64,
    /// `DivergeInA` ops (A-stream-only detours; no-ops elsewhere).
    pub diverges: u64,
}

impl OpCounts {
    /// All memory accesses, shared and private.
    pub fn accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores + self.private_loads + self.private_stores
    }

    /// Shared-space accesses only (the ones subject to coherence).
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }

    /// All loads.
    pub fn loads(&self) -> u64 {
        self.shared_loads + self.private_loads
    }

    /// All stores.
    pub fn stores(&self) -> u64 {
        self.shared_stores + self.private_stores
    }
}

impl Program {
    /// Tallies the program's dynamic op stream (one full walk).
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for op in self.iter() {
            match op {
                Op::Load { space: Space::Shared, .. } => c.shared_loads += 1,
                Op::Load { space: Space::Private, .. } => c.private_loads += 1,
                Op::Store { space: Space::Shared, .. } => c.shared_stores += 1,
                Op::Store { space: Space::Private, .. } => c.private_stores += 1,
                Op::Compute(n) => c.compute_cycles += u64::from(n),
                Op::Barrier(_) => c.barriers += 1,
                Op::Lock(_) => c.locks += 1,
                Op::Unlock(_) => c.unlocks += 1,
                Op::EventPost(_) => c.event_posts += 1,
                Op::EventWait(_) => c.event_waits += 1,
                Op::Input => c.inputs += 1,
                Op::DivergeInA(_) => c.diverges += 1,
            }
        }
        c
    }

    /// Walks the op stream with a barrier-phase counter.
    ///
    /// The callback receives `(phase, op_index, op)`: `phase` starts at 0
    /// and increments *after* each `Barrier` op (the barrier itself is
    /// billed to the phase it closes), and `op_index` is the zero-based
    /// dynamic index — the same indexing the verifier's diagnostics use.
    /// Because every task participates in every barrier (the sync
    /// controller's global-barrier semantics), phase `p` of one task is
    /// concurrent only with phase `p` of the others, which is what lets
    /// the analyzer treat the phase id as a cross-task alignment key.
    pub fn walk_phases<F: FnMut(usize, u64, &Op)>(&self, mut f: F) {
        let mut phase = 0usize;
        for (i, op) in self.iter().enumerate() {
            f(phase, i as u64, &op);
            if matches!(op, Op::Barrier(_)) {
                phase += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgBuilder;
    use crate::layout::Layout;
    use crate::ops::BarrierId;

    fn sample() -> (Layout, Program) {
        let mut layout = Layout::new();
        let arr = layout.shared("arr", 4096);
        let mut b = ProgBuilder::new();
        b.for_n(3, |b| {
            b.gen(move |ctx| Op::load_shared(arr.at(ctx.i(0) * 64)));
            b.compute(10);
        });
        b.barrier(BarrierId(0));
        b.gen(move |_| Op::store_shared(arr.at(0)));
        b.barrier(BarrierId(0));
        (layout, b.build("sample"))
    }

    #[test]
    fn op_counts_tally_the_stream() {
        let (_l, p) = sample();
        let c = p.op_counts();
        assert_eq!(c.shared_loads, 3);
        assert_eq!(c.shared_stores, 1);
        assert_eq!(c.compute_cycles, 30);
        assert_eq!(c.barriers, 2);
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.shared_accesses(), 4);
        assert_eq!(c.accesses(), p.iter().filter(|o| o.is_access()).count() as u64);
    }

    #[test]
    fn walk_phases_splits_at_barriers() {
        let (_l, p) = sample();
        let mut per_phase = vec![0u64; 2];
        let mut max_phase = 0;
        p.walk_phases(|phase, _idx, op| {
            max_phase = max_phase.max(phase);
            if op.is_access() {
                per_phase[phase] += 1;
            }
        });
        // The closing barrier bumps the counter after the last op, but no
        // op is ever observed in the empty trailing phase.
        assert_eq!(max_phase, 1);
        assert_eq!(per_phase, vec![3, 1]);
    }
}
