use std::rc::Rc;

use slipstream_kernel::Addr;

use crate::ops::{BarrierId, EventId, LockId, Op, Space};
use crate::stmt::{Count, IdxCtx, Program, Stmt};

/// Incremental builder for task [`Program`]s.
///
/// Nested scopes (loops, branches) take closures that receive a fresh
/// builder for the scope body, so programs read like the loops they model.
///
/// # Example
///
/// ```
/// use slipstream_prog::{ProgBuilder, Op, BarrierId, Layout};
///
/// let mut layout = Layout::new();
/// let grid = layout.shared("grid", 4096).elems(8);
/// let mut b = ProgBuilder::new();
/// b.for_n(2, |b| {
///     b.for_n(8, |b| {
///         b.gen(move |ctx| Op::load_shared(grid.at(ctx.i(1) * 8 + ctx.i(0))));
///         b.compute(12);
///     });
///     b.barrier(BarrierId(0));
/// });
/// let prog = b.build("stencil");
/// assert_eq!(prog.iter().filter(|o| o.is_sync()).count(), 2);
/// ```
#[derive(Default)]
pub struct ProgBuilder {
    stmts: Vec<Stmt>,
}

impl ProgBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgBuilder {
        ProgBuilder { stmts: Vec::new() }
    }

    /// Appends a constant op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.stmts.push(Stmt::Op(op));
        self
    }

    /// Appends `n` cycles of computation (coalesced with a directly
    /// preceding compute op).
    pub fn compute(&mut self, n: u32) -> &mut Self {
        if n == 0 {
            return self;
        }
        if let Some(Stmt::Op(Op::Compute(prev))) = self.stmts.last_mut() {
            if let Some(sum) = prev.checked_add(n) {
                *prev = sum;
                return self;
            }
        }
        self.op(Op::Compute(n))
    }

    /// Appends a load from a fixed shared address.
    pub fn load_shared(&mut self, addr: Addr) -> &mut Self {
        self.op(Op::Load { addr, space: Space::Shared })
    }

    /// Appends a store to a fixed shared address.
    pub fn store_shared(&mut self, addr: Addr) -> &mut Self {
        self.op(Op::Store { addr, space: Space::Shared })
    }

    /// Appends a load from a fixed private address.
    pub fn load_private(&mut self, addr: Addr) -> &mut Self {
        self.op(Op::Load { addr, space: Space::Private })
    }

    /// Appends a store to a fixed private address.
    pub fn store_private(&mut self, addr: Addr) -> &mut Self {
        self.op(Op::Store { addr, space: Space::Private })
    }

    /// Appends a barrier.
    pub fn barrier(&mut self, id: BarrierId) -> &mut Self {
        self.op(Op::Barrier(id))
    }

    /// Appends a lock acquire.
    pub fn lock(&mut self, id: LockId) -> &mut Self {
        self.op(Op::Lock(id))
    }

    /// Appends a lock release.
    pub fn unlock(&mut self, id: LockId) -> &mut Self {
        self.op(Op::Unlock(id))
    }

    /// Appends an event post.
    pub fn post(&mut self, id: EventId) -> &mut Self {
        self.op(Op::EventPost(id))
    }

    /// Appends an event wait.
    pub fn wait(&mut self, id: EventId) -> &mut Self {
        self.op(Op::EventWait(id))
    }

    /// Appends an index-dependent op.
    pub fn gen(&mut self, f: impl Fn(&IdxCtx) -> Op + 'static) -> &mut Self {
        self.stmts.push(Stmt::Gen(Rc::new(f)));
        self
    }

    /// Appends an index-dependent batch of ops (for hot inner loops).
    pub fn block(&mut self, f: impl Fn(&IdxCtx, &mut Vec<Op>) + 'static) -> &mut Self {
        self.stmts.push(Stmt::Block(Rc::new(f)));
        self
    }

    /// Appends a counted loop with a constant trip count.
    pub fn for_n(&mut self, n: u64, body: impl FnOnce(&mut ProgBuilder)) -> &mut Self {
        let mut b = ProgBuilder::new();
        body(&mut b);
        self.stmts.push(Stmt::For { count: Count::Const(n), body: Rc::new(b.into_stmt()) });
        self
    }

    /// Appends a counted loop whose trip count depends on enclosing indices.
    pub fn for_dyn(
        &mut self,
        count: impl Fn(&IdxCtx) -> u64 + 'static,
        body: impl FnOnce(&mut ProgBuilder),
    ) -> &mut Self {
        let mut b = ProgBuilder::new();
        body(&mut b);
        self.stmts.push(Stmt::For { count: Count::Dyn(Rc::new(count)), body: Rc::new(b.into_stmt()) });
        self
    }

    /// Appends a conditional.
    pub fn if_(
        &mut self,
        cond: impl Fn(&IdxCtx) -> bool + 'static,
        then_body: impl FnOnce(&mut ProgBuilder),
        else_body: Option<impl FnOnce(&mut ProgBuilder)>,
    ) -> &mut Self {
        let mut t = ProgBuilder::new();
        then_body(&mut t);
        let else_s = else_body.map(|f| {
            let mut e = ProgBuilder::new();
            f(&mut e);
            Rc::new(e.into_stmt())
        });
        self.stmts.push(Stmt::If {
            cond: Rc::new(cond),
            then_s: Rc::new(t.into_stmt()),
            else_s,
        });
        self
    }

    /// Emits line-granular loads over `[start, start+bytes)` of a region:
    /// one load per cache line touched, plus `compute_per_line` cycles after
    /// each. This is the standard trace reduction used by the workloads:
    /// per-element loads that would hit in L1 anyway are folded into the
    /// compute cost (see DESIGN.md §7).
    pub fn touch_lines(
        &mut self,
        base: Addr,
        bytes: u64,
        line_bytes: u64,
        store: bool,
        space: Space,
        compute_per_line: u32,
    ) -> &mut Self {
        assert!(line_bytes.is_power_of_two());
        let first = base.0 / line_bytes;
        let last = (base.0 + bytes.max(1) - 1) / line_bytes;
        self.block(move |_, out| {
            for l in first..=last {
                let addr = Addr(l * line_bytes);
                out.push(if store { Op::Store { addr, space } } else { Op::Load { addr, space } });
                if compute_per_line > 0 {
                    out.push(Op::Compute(compute_per_line));
                }
            }
        });
        self
    }

    /// Finalizes the program.
    pub fn build(self, name: &str) -> Program {
        Program::new(name, self.into_stmt())
    }

    fn into_stmt(self) -> Stmt {
        if self.stmts.len() == 1 {
            self.stmts.into_iter().next().expect("len checked")
        } else {
            Stmt::Seq(self.stmts.into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_coalesces() {
        let mut b = ProgBuilder::new();
        b.compute(3).compute(4).compute(0);
        let ops: Vec<_> = b.build("c").iter().collect();
        assert_eq!(ops, [Op::Compute(7)]);
    }

    #[test]
    fn compute_does_not_coalesce_across_other_ops() {
        let mut b = ProgBuilder::new();
        b.compute(3).load_shared(Addr(64)).compute(4);
        assert_eq!(b.build("c").iter().count(), 3);
    }

    #[test]
    fn compute_coalesce_saturates_at_u32_max() {
        let mut b = ProgBuilder::new();
        b.compute(u32::MAX).compute(5);
        let ops: Vec<_> = b.build("c").iter().collect();
        assert_eq!(ops, [Op::Compute(u32::MAX), Op::Compute(5)]);
    }

    #[test]
    fn touch_lines_covers_range_once_per_line() {
        let mut b = ProgBuilder::new();
        b.touch_lines(Addr(130), 200, 64, false, Space::Shared, 0);
        let ops: Vec<_> = b.build("t").iter().collect();
        // Bytes 130..330 touch lines 2..=5 (4 lines).
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0], Op::Load { addr: Addr(128), .. }));
        assert!(matches!(ops[3], Op::Load { addr: Addr(320), .. }));
    }

    #[test]
    fn touch_lines_store_and_compute() {
        let mut b = ProgBuilder::new();
        b.touch_lines(Addr(0), 64, 64, true, Space::Private, 9);
        let ops: Vec<_> = b.build("t").iter().collect();
        assert_eq!(ops, [Op::Store { addr: Addr(0), space: Space::Private }, Op::Compute(9)]);
    }

    #[test]
    fn sync_helpers() {
        let mut b = ProgBuilder::new();
        b.lock(LockId(1)).unlock(LockId(1)).post(EventId(2)).wait(EventId(2)).barrier(BarrierId(3));
        let ops: Vec<_> = b.build("s").iter().collect();
        assert_eq!(ops.len(), 5);
        assert!(ops.iter().all(|o| o.is_sync()));
    }

    #[test]
    fn empty_program_yields_nothing() {
        let b = ProgBuilder::new();
        assert_eq!(b.build("e").iter().count(), 0);
    }
}
