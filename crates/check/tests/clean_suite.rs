//! The benchmark suite must lint clean: the paper's A-stream safety
//! argument (§3.2) assumes properly synchronized programs, so every
//! workload's generated task set — conventional and slipstream — has to
//! pass the static verifier with zero error diagnostics.

use slipstream_check::{verify_workload, Severity};
use slipstream_workloads::quick_suite;

fn assert_clean(ntasks: usize, slipstream: bool) {
    for w in quick_suite() {
        let diags = verify_workload(w.as_ref(), ntasks, slipstream);
        let errors: Vec<String> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .collect();
        assert!(
            errors.is_empty(),
            "{} [ntasks={ntasks}, slipstream={slipstream}] has {} error(s):\n{}",
            w.name(),
            errors.len(),
            errors.join("\n")
        );
    }
}

#[test]
fn quick_suite_conventional_two_tasks() {
    assert_clean(2, false);
}

#[test]
fn quick_suite_conventional_four_tasks() {
    assert_clean(4, false);
}

#[test]
fn quick_suite_slipstream_two_tasks() {
    assert_clean(2, true);
}

#[test]
fn quick_suite_slipstream_four_tasks() {
    assert_clean(4, true);
}
