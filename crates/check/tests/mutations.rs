//! Verifier self-validation: every seeded defect in the mutation corpus
//! must be caught, with the right rule id, at its expected severity
//! (`Error` for the `SC*` correctness rules, `Warning` for the `SP*`
//! performance lints).
//!
//! This is the regression net for the verifier itself — if a change to the
//! happens-before machinery silently stops detecting a class of bugs, the
//! corresponding case fails here (and in `check --selftest`).

use slipstream_check::mutations::{mutation_cases, run_case, selftest};
use slipstream_check::Rule;

#[test]
fn every_seeded_defect_is_detected() {
    for case in mutation_cases() {
        let diags = run_case(&case);
        let hit = diags
            .iter()
            .any(|d| d.rule == case.expect && d.severity == case.expect_severity);
        assert!(
            hit,
            "case `{}`: expected {} ({}) to fire, got {:?}",
            case.name,
            case.expect.id(),
            case.expect.name(),
            diags.iter().map(|d| d.rule.id()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn selftest_reports_no_failures() {
    let failures = selftest();
    assert!(failures.is_empty(), "selftest failures: {failures:#?}");
}

#[test]
fn corpus_covers_every_static_rule() {
    // One case per rule keeps the corpus honest: adding a rule without a
    // seeded defect that proves it fires should not pass review.
    let covered: Vec<Rule> = mutation_cases().into_iter().map(|c| c.expect).collect();
    for rule in Rule::ALL {
        assert!(
            covered.contains(&rule),
            "no mutation case exercises {} ({})",
            rule.id(),
            rule.name()
        );
    }
}

#[test]
fn diagnostics_carry_location_and_serialize() {
    // The first diagnostic of each case should serialize to JSON embedding
    // its rule id, so downstream tooling can key on it.
    for case in mutation_cases() {
        let diags = run_case(&case);
        let d = diags
            .iter()
            .find(|d| d.rule == case.expect)
            .unwrap_or_else(|| panic!("case `{}` produced no expected diagnostic", case.name));
        let json = d.to_json();
        assert!(
            json.contains(&format!("\"rule\":\"{}\"", d.rule.id())),
            "case `{}`: JSON missing rule id: {json}",
            case.name
        );
    }
}
