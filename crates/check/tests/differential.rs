//! Checked-mode differential tests: attaching the protocol invariant
//! checker must not perturb the simulation. Every field of [`RunResult`]
//! (cycles, per-stream breakdowns, memory statistics, recoveries) has to
//! be bit-identical with and without the checker — and the checker itself
//! must report zero violations on healthy runs.

use slipstream_check::run_checked;
use slipstream_core::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};
use slipstream_workloads::{by_name, quick_suite};

fn spec_for(mode: &str, nodes: u16) -> RunSpec {
    let (mode, slip) = match mode {
        "single" => (ExecMode::Single, SlipstreamConfig::default()),
        "double" => (ExecMode::Double, SlipstreamConfig::default()),
        "slipstream" => (
            ExecMode::Slipstream,
            SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal),
        ),
        "slipstream+si" => (
            ExecMode::Slipstream,
            SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal),
        ),
        other => panic!("unknown mode {other}"),
    };
    RunSpec::new(nodes, mode).with_slip(slip)
}

fn assert_differential(w: &dyn slipstream_core::Workload, mode: &str, nodes: u16) {
    let spec = spec_for(mode, nodes);
    let plain = run(w, &spec);
    let (checked, report) = run_checked(w, &spec);
    assert!(
        report.ok(),
        "{} {mode} @{nodes}: {} violation(s):\n{}",
        w.name(),
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        plain,
        checked,
        "{} {mode} @{nodes}: checked run diverged from unchecked run",
        w.name()
    );
    assert!(report.counts.fills > 0, "{} {mode}: checker observed no fills", w.name());
}

/// The full quick suite under the paper's headline configuration
/// (slipstream with self-invalidation) — the mode with the most protocol
/// machinery in play.
#[test]
fn quick_suite_slipstream_si_is_unperturbed_and_clean() {
    for w in quick_suite() {
        assert_differential(w.as_ref(), "slipstream+si", 2);
    }
}

/// Every execution mode over a fast, behaviourally diverse subset:
/// CG (locks), MG (multigrid phases), SP (pipelined events), and
/// WATER-SP (small-L2 machine configuration).
#[test]
fn all_modes_are_unperturbed_and_clean() {
    for name in ["CG", "MG", "SP", "WATER-SP"] {
        let w = by_name(name, true).expect("quick workload");
        for mode in ["single", "double", "slipstream", "slipstream+si"] {
            assert_differential(w.as_ref(), mode, 2);
        }
    }
}
