//! Stability of the crate's machine-readable surfaces: diagnostic JSON
//! field order, the rule catalogue (every emitted code must have an
//! `--explain` entry), and a golden validation report.
//!
//! Downstream tooling (the fuzz report schema, CI smoke checks) keys on
//! these exact shapes; changing them is fine but must be deliberate —
//! re-bless the golden with `BLESS=1 cargo test -p slipstream-check
//! --test json_stability`.

use slipstream_check::{cross_validate, Diagnostic, ProtoRule, Rule, Severity};
use slipstream_workloads::by_name;

#[test]
fn diagnostic_json_field_order_is_stable() {
    let d = Diagnostic {
        severity: Severity::Warning,
        rule: Rule::FalseSharing,
        task: Some(3),
        op_index: Some(17),
        addr: Some(4096),
        message: "line 64 has 2 writers".to_string(),
    };
    assert_eq!(
        d.to_json(),
        "{\"severity\":\"warning\",\"rule\":\"SP001\",\"name\":\"false-sharing\",\
         \"task\":3,\"op_index\":17,\"addr\":4096,\
         \"message\":\"line 64 has 2 writers\"}"
    );
}

#[test]
fn rule_catalogue_is_complete() {
    let mut ids: Vec<&str> = Vec::new();
    for r in Rule::ALL {
        let id = r.id();
        assert!(
            (id.starts_with("SC") || id.starts_with("SP"))
                && id.len() == 5
                && id[2..].chars().all(|c| c.is_ascii_digit()),
            "malformed rule id {id}"
        );
        assert!(!r.name().is_empty(), "{id} has no name");
        assert!(r.explain().len() > 80, "{id} explanation is too thin to help");
        ids.push(id);
    }
    for r in ProtoRule::ALL {
        let id = r.id();
        assert!(
            id.starts_with("PC") && id.len() == 5 && id[2..].chars().all(|c| c.is_ascii_digit()),
            "malformed rule id {id}"
        );
        assert!(!r.name().is_empty(), "{id} has no name");
        assert!(r.explain().len() > 80, "{id} explanation is too thin to help");
        ids.push(id);
    }
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate rule ids across catalogues");
}

#[test]
fn validation_report_json_matches_golden() {
    let w = by_name("SOR", true).expect("SOR quick workload");
    let actual = format!("{}\n", cross_validate(w.as_ref(), 2).to_json());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/validation_sor.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &actual).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file (bless with BLESS=1)");
    assert_eq!(
        actual, golden,
        "validation report JSON drifted from the golden; if intended, \
         re-bless with BLESS=1"
    );
}
