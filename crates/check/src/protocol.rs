//! Dynamic coherence-protocol invariant checker.
//!
//! [`ProtocolChecker`] installs a [`MemTracer`] that shadows the
//! directory's permission state and the per-node L2 copy set from the
//! observation hooks alone, and cross-checks the two against the
//! protocol's invariants while a real simulation runs. It never feeds
//! anything back into the simulation (tracers observe only), so a checked
//! run is bit-identical to an unchecked one — which the differential tests
//! assert.
//!
//! Invariants (rule ids `PC001`..`PC009`, see `docs/static-analysis.md`):
//!
//! * **SWMR** — when a node is granted an exclusive (writable) copy, no
//!   other node holds any coherent copy;
//! * the directory's sharing list matches the actually cached copies at
//!   quiescence;
//! * no node holds a coherent shared copy while another holds the line
//!   exclusively;
//! * MSHRs do not leak (every allocation is retired);
//! * future-sharer state and self-invalidation actions originate only from
//!   transparent loads (§4 of the paper), and SI hints target only the
//!   exclusive owner.
//!
//! The checker validates *fills* against the shadowed copy set (the
//! directory's view lags in-flight ownership transfers), and
//! directory-originated messages against the shadowed directory state;
//! exact directory/copy equality is asserted only at quiescence.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use slipstream_core::{RunResult, RunSpec, Workload};
use slipstream_kernel::{Cycle, FxHashMap, LineAddr, NodeId, SharerSet};
use slipstream_mem::{MemTracer, TracePerm};

use crate::diag::json_escape;

/// The dynamic checker's rule catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoRule {
    /// PC001: exclusive grant while another coherent copy exists
    /// (single-writer/multiple-reader violation).
    Swmr,
    /// PC002: at quiescence, the directory's sharing list disagrees with
    /// the actually cached copies.
    SharerSet,
    /// PC003: a coherent shared copy coexists with an exclusive copy at
    /// another node.
    SharedWithOwner,
    /// PC004: MSHR leaked, double-allocated, or freed without allocation.
    MshrLeak,
    /// PC005: self-invalidation state for a line no transparent load ever
    /// touched.
    FutureBits,
    /// PC006: an SI hint sent to a node the directory does not believe is
    /// the exclusive owner.
    SiTarget,
    /// PC007: a directory transition whose observed pre-state disagrees
    /// with the shadow (a missed or misordered hook — checker self-test).
    DirShadow,
    /// PC008: an invalidation or intervention sent to a node that cannot
    /// hold the line per the directory's own state.
    MsgTarget,
    /// PC009: an L2 evict/invalidate/downgrade for a copy the shadow never
    /// saw filled (copy-set divergence).
    CopyShadow,
}

impl ProtoRule {
    /// Stable rule id, e.g. `"PC001"`.
    pub fn id(self) -> &'static str {
        match self {
            ProtoRule::Swmr => "PC001",
            ProtoRule::SharerSet => "PC002",
            ProtoRule::SharedWithOwner => "PC003",
            ProtoRule::MshrLeak => "PC004",
            ProtoRule::FutureBits => "PC005",
            ProtoRule::SiTarget => "PC006",
            ProtoRule::DirShadow => "PC007",
            ProtoRule::MsgTarget => "PC008",
            ProtoRule::CopyShadow => "PC009",
        }
    }

    /// Short kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtoRule::Swmr => "swmr",
            ProtoRule::SharerSet => "sharer-set",
            ProtoRule::SharedWithOwner => "shared-with-owner",
            ProtoRule::MshrLeak => "mshr-leak",
            ProtoRule::FutureBits => "future-bits",
            ProtoRule::SiTarget => "si-target",
            ProtoRule::DirShadow => "dir-shadow",
            ProtoRule::MsgTarget => "msg-target",
            ProtoRule::CopyShadow => "copy-shadow",
        }
    }

    /// Every dynamic rule, in id order (used by `check --explain` coverage).
    pub const ALL: [ProtoRule; 9] = [
        ProtoRule::Swmr,
        ProtoRule::SharerSet,
        ProtoRule::SharedWithOwner,
        ProtoRule::MshrLeak,
        ProtoRule::FutureBits,
        ProtoRule::SiTarget,
        ProtoRule::DirShadow,
        ProtoRule::MsgTarget,
        ProtoRule::CopyShadow,
    ];

    /// One-paragraph catalogue entry for `check --explain`; same text as
    /// `docs/static-analysis.md`.
    pub fn explain(self) -> &'static str {
        match self {
            ProtoRule::Swmr => {
                "An exclusive (writable) copy was granted while another node \
                 still held a coherent copy — a single-writer/multiple-reader \
                 violation, the core invariant of the invalidation protocol."
            }
            ProtoRule::SharerSet => {
                "At quiescence, the directory's sharing list disagrees with \
                 the copies actually cached at the nodes. In flight the \
                 directory's view may lag; once traffic drains, the two must \
                 agree exactly."
            }
            ProtoRule::SharedWithOwner => {
                "A coherent shared copy coexists with an exclusive copy at \
                 another node — readers observing a line someone else may be \
                 writing."
            }
            ProtoRule::MshrLeak => {
                "An MSHR was leaked, double-allocated, or freed without \
                 allocation. Every miss-status register must be retired \
                 exactly once per allocation."
            }
            ProtoRule::FutureBits => {
                "Self-invalidation (future-sharer) state exists for a line no \
                 transparent load ever touched. §4 of the paper derives SI \
                 state only from the A-stream's transparent loads."
            }
            ProtoRule::SiTarget => {
                "A self-invalidation hint was sent to a node the directory \
                 does not believe is the exclusive owner; SI hints must target \
                 only the current owner."
            }
            ProtoRule::DirShadow => {
                "A directory transition's observed pre-state disagrees with \
                 the checker's shadow — a missed or misordered trace hook \
                 (checker self-test rule)."
            }
            ProtoRule::MsgTarget => {
                "An invalidation or intervention was sent to a node that \
                 cannot hold the line per the directory's own state — wasted \
                 or wrong coherence traffic."
            }
            ProtoRule::CopyShadow => {
                "An L2 evict/invalidate/downgrade arrived for a copy the \
                 shadow never saw filled — the checker's copy set and the \
                 simulator's diverged."
            }
        }
    }
}

impl fmt::Display for ProtoRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// One invariant violation observed during a checked run.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant.
    pub rule: ProtoRule,
    /// Cycle the violation was observed at (0 for quiescence checks).
    pub cycle: u64,
    /// Line involved, if any.
    pub line: Option<u64>,
    /// Node involved, if any.
    pub node: Option<u16>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rule)?;
        if self.cycle > 0 {
            write!(f, " @{}", self.cycle)?;
        }
        if let Some(n) = self.node {
            write!(f, " node {n}")?;
        }
        if let Some(l) = self.line {
            write!(f, " line {l:#x}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Violation {
    /// Renders the violation as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"rule\":\"");
        s.push_str(self.rule.id());
        s.push_str("\",\"name\":\"");
        s.push_str(self.rule.name());
        s.push_str(&format!("\",\"cycle\":{}", self.cycle));
        if let Some(l) = self.line {
            s.push_str(&format!(",\"line\":{l}"));
        }
        if let Some(n) = self.node {
            s.push_str(&format!(",\"node\":{n}"));
        }
        s.push_str(",\"message\":\"");
        s.push_str(&json_escape(&self.message));
        s.push_str("\"}");
        s
    }
}

/// Hook-event counts, so a clean report still shows the checker saw a
/// meaningful amount of protocol traffic.
#[derive(Debug, Default, Clone)]
pub struct CheckCounts {
    /// L2 fills observed (coherent + transparent).
    pub fills: u64,
    /// Directory permission transitions observed.
    pub dir_transitions: u64,
    /// Invalidations + interventions observed.
    pub coherence_msgs: u64,
    /// L2 evictions observed.
    pub evictions: u64,
    /// MSHR allocations observed.
    pub mshr_allocs: u64,
    /// Transparent replies/upgrades + SI hints/actions observed.
    pub si_events: u64,
}

/// The outcome of a checked run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Violations, in observation order (quiescence checks last).
    pub violations: Vec<Violation>,
    /// Violations beyond the reporting cap (counted, not stored).
    pub suppressed: u64,
    /// Hook-event counts.
    pub counts: CheckCounts,
    /// Distinct lines the checker tracked.
    pub lines_tracked: usize,
}

impl CheckReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} violation(s) ({} suppressed); tracked {} lines, {} fills, \
             {} dir transitions, {} coherence msgs, {} evictions, {} mshr allocs, {} si events",
            self.violations.len(),
            self.suppressed,
            self.lines_tracked,
            self.counts.fills,
            self.counts.dir_transitions,
            self.counts.coherence_msgs,
            self.counts.evictions,
            self.counts.mshr_allocs,
            self.counts.si_events,
        )
    }
}

/// Per-line shadow of which nodes actually hold copies.
#[derive(Default, Clone)]
struct Copies {
    /// Node holding the line exclusively, if any.
    excl: Option<u16>,
    /// Nodes with coherent shared copies.
    shared: SharerSet,
    /// Nodes with transparent (coherence-invisible) copies. Transparent
    /// fills the L2 drops are still recorded (over-approximation): stale
    /// bits only ever suppress PC009, never create a violation.
    transparent: SharerSet,
}

const MAX_VIOLATIONS: usize = 100;

#[derive(Default)]
struct ProtoState {
    dir: FxHashMap<u64, TracePerm>,
    copies: FxHashMap<u64, Copies>,
    /// Lines with observed transparent activity (never cleared: an
    /// over-approximation that keeps PC005 free of false positives).
    transparent_lines: FxHashMap<u64, ()>,
    /// Outstanding MSHRs as `(node, line)`.
    mshrs: FxHashMap<(u16, u64), ()>,
    violations: Vec<Violation>,
    suppressed: u64,
    counts: CheckCounts,
}

impl ProtoState {
    fn report(
        &mut self,
        rule: ProtoRule,
        now: Cycle,
        line: Option<LineAddr>,
        node: Option<NodeId>,
        message: String,
    ) {
        if self.violations.len() >= MAX_VIOLATIONS {
            self.suppressed += 1;
            return;
        }
        self.violations.push(Violation {
            rule,
            cycle: now.0,
            line: line.map(|l| l.0),
            node: node.map(|n| n.0),
            message,
        });
    }

    fn shadow_dir(&self, line: LineAddr) -> TracePerm {
        self.dir.get(&line.0).cloned().unwrap_or(TracePerm::Uncached)
    }

    fn fill(&mut self, now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool) {
        self.counts.fills += 1;
        let c = self.copies.entry(line.0).or_default();
        if transparent {
            c.transparent.insert(node);
            return;
        }
        if excl {
            let foreign_shared = c.shared.any_except(node);
            let foreign_excl = c.excl.filter(|&o| o != node.0);
            if foreign_shared || foreign_excl.is_some() {
                let msg = format!(
                    "exclusive fill while other coherent copies exist \
                     (excl={:?}, shared={:?})",
                    c.excl, c.shared
                );
                self.report(ProtoRule::Swmr, now, Some(line), Some(node), msg);
                let c = self.copies.entry(line.0).or_default();
                c.shared.clear();
                c.excl = None;
            }
            let c = self.copies.entry(line.0).or_default();
            c.excl = Some(node.0);
            c.shared.remove(node);
            c.transparent.remove(node);
        } else {
            if let Some(o) = c.excl.filter(|&o| o != node.0) {
                self.report(
                    ProtoRule::SharedWithOwner,
                    now,
                    Some(line),
                    Some(node),
                    format!("shared fill while node {o} holds the line exclusively"),
                );
            }
            let c = self.copies.entry(line.0).or_default();
            if c.excl == Some(node.0) {
                c.excl = None; // defensive resync; a hit would not have missed
            }
            c.shared.insert(node);
            c.transparent.remove(node);
        }
    }

    fn l2_evict(&mut self, now: Cycle, node: NodeId, line: LineAddr, dirty: bool, transparent: bool) {
        self.counts.evictions += 1;
        let c = self.copies.entry(line.0).or_default();
        if transparent {
            // Dropped transparent fills leave stale shadow bits, so absence
            // is not reportable; presence is simply cleared.
            c.transparent.remove(node);
            return;
        }
        if c.excl == Some(node.0) {
            c.excl = None;
        } else if c.shared.contains(node) {
            c.shared.remove(node);
            if dirty {
                self.report(
                    ProtoRule::CopyShadow,
                    now,
                    Some(line),
                    Some(node),
                    "dirty writeback evicted from a copy the shadow saw as shared".to_string(),
                );
            }
        } else {
            self.report(
                ProtoRule::CopyShadow,
                now,
                Some(line),
                Some(node),
                "eviction of a coherent copy the shadow never saw filled".to_string(),
            );
        }
    }

    fn l2_invalidate(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        let c = self.copies.entry(line.0).or_default();
        let had =
            c.excl == Some(node.0) || c.shared.contains(node) || c.transparent.contains(node);
        if c.excl == Some(node.0) {
            c.excl = None;
        }
        c.shared.remove(node);
        c.transparent.remove(node);
        if !had {
            self.report(
                ProtoRule::CopyShadow,
                now,
                Some(line),
                Some(node),
                "invalidation dropped a copy the shadow never saw filled".to_string(),
            );
        }
    }

    fn l2_downgrade(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        let c = self.copies.entry(line.0).or_default();
        if c.excl == Some(node.0) {
            c.excl = None;
            c.shared.insert(node);
        } else {
            self.report(
                ProtoRule::CopyShadow,
                now,
                Some(line),
                Some(node),
                "downgrade of a copy the shadow does not see as exclusive".to_string(),
            );
        }
    }

    fn dir_transition(
        &mut self,
        now: Cycle,
        line: LineAddr,
        from: &TracePerm,
        to: &TracePerm,
        requester: NodeId,
    ) {
        self.counts.dir_transitions += 1;
        let shadow = self.shadow_dir(line);
        if shadow != *from {
            self.report(
                ProtoRule::DirShadow,
                now,
                Some(line),
                Some(requester),
                format!("directory pre-state {from:?} disagrees with shadow {shadow:?}"),
            );
        }
        if matches!(to, TracePerm::Uncached) {
            self.dir.remove(&line.0);
        } else {
            self.dir.insert(line.0, to.clone());
        }
    }

    fn invalidation(&mut self, now: Cycle, line: LineAddr, target: NodeId) {
        self.counts.coherence_msgs += 1;
        match self.shadow_dir(line) {
            // Under limited-pointer overflow the directory broadcasts, so
            // any target is legitimate.
            TracePerm::Shared { sharers, overflow } if overflow || sharers.contains(target) => {}
            other => self.report(
                ProtoRule::MsgTarget,
                now,
                Some(line),
                Some(target),
                format!("invalidation sent to a node outside the sharing list ({other:?})"),
            ),
        }
    }

    fn intervention(&mut self, now: Cycle, line: LineAddr, owner: NodeId, requester: NodeId) {
        self.counts.coherence_msgs += 1;
        let _ = requester;
        match self.shadow_dir(line) {
            TracePerm::Excl { owner: o } if o == owner => {}
            other => self.report(
                ProtoRule::MsgTarget,
                now,
                Some(line),
                Some(owner),
                format!("intervention sent to a non-owner ({other:?})"),
            ),
        }
    }

    fn si_hint(&mut self, now: Cycle, line: LineAddr, owner: NodeId) {
        self.counts.si_events += 1;
        match self.shadow_dir(line) {
            TracePerm::Excl { owner: o } if o == owner => {}
            other => self.report(
                ProtoRule::SiTarget,
                now,
                Some(line),
                Some(owner),
                format!("SI hint sent to a node that is not the exclusive owner ({other:?})"),
            ),
        }
        if !self.transparent_lines.contains_key(&line.0) {
            self.report(
                ProtoRule::FutureBits,
                now,
                Some(line),
                Some(owner),
                "SI hint for a line no transparent load ever touched".to_string(),
            );
        }
    }

    fn si_action(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.counts.si_events += 1;
        if !self.transparent_lines.contains_key(&line.0) {
            self.report(
                ProtoRule::FutureBits,
                now,
                Some(line),
                Some(node),
                "self-invalidation of a line no transparent load ever touched".to_string(),
            );
        }
    }

    fn mshr_alloc(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.counts.mshr_allocs += 1;
        if self.mshrs.insert((node.0, line.0), ()).is_some() {
            self.report(
                ProtoRule::MshrLeak,
                now,
                Some(line),
                Some(node),
                "MSHR allocated twice without an intervening retire".to_string(),
            );
        }
    }

    fn mshr_free(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        if self.mshrs.remove(&(node.0, line.0)).is_none() {
            self.report(
                ProtoRule::MshrLeak,
                now,
                Some(line),
                Some(node),
                "MSHR retired that was never observed allocated".to_string(),
            );
        }
    }

    /// Quiescence checks: run after the simulation fully drains.
    fn finish(mut self) -> CheckReport {
        if !self.mshrs.is_empty() {
            let mut sample: Vec<(u16, u64)> = self.mshrs.keys().copied().collect();
            sample.sort_unstable();
            let (node, line) = sample[0];
            let n = sample.len();
            self.report(
                ProtoRule::MshrLeak,
                Cycle(0),
                Some(LineAddr(line)),
                Some(NodeId(node)),
                format!("{n} MSHR(s) still outstanding at quiescence"),
            );
        }
        let mut lines: Vec<u64> = self
            .dir
            .keys()
            .chain(self.copies.keys())
            .copied()
            .collect();
        lines.sort_unstable();
        lines.dedup();
        let lines_tracked = lines.len();
        for l in lines {
            let dir = self.shadow_dir(LineAddr(l));
            let c = self.copies.get(&l).cloned().unwrap_or_default();
            let consistent = match &dir {
                TracePerm::Uncached => c.excl.is_none() && c.shared.is_empty(),
                // An overflowed limited-pointer entry tracks only a subset
                // of the sharers, so exact set equality cannot hold; the
                // invariant that remains is that nobody owns the line.
                TracePerm::Shared { sharers, overflow } => {
                    c.excl.is_none() && (*overflow || c.shared == *sharers)
                }
                TracePerm::Excl { owner } => c.excl == Some(owner.0) && c.shared.is_empty(),
            };
            if !consistent {
                self.report(
                    ProtoRule::SharerSet,
                    Cycle(0),
                    Some(LineAddr(l)),
                    None,
                    format!(
                        "at quiescence directory says {dir:?} but cached copies are \
                         excl={:?} shared={:?}",
                        c.excl, c.shared
                    ),
                );
            }
        }
        CheckReport {
            violations: self.violations,
            suppressed: self.suppressed,
            counts: self.counts,
            lines_tracked,
        }
    }
}

/// The tracer half: forwards every hook into the shared state. Installed
/// into the memory system via [`slipstream_core::run_with_tracer`].
pub struct CheckTracer {
    state: Rc<RefCell<ProtoState>>,
}

impl fmt::Debug for CheckTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CheckTracer")
    }
}

impl MemTracer for CheckTracer {
    // `access` is deliberately not overridden: it is the hottest hook and
    // the invariants are all expressible over fills and protocol messages.
    // Keeping it a no-op holds checked-run overhead under the 10% budget.

    fn fill(&mut self, now: Cycle, node: NodeId, line: LineAddr, excl: bool, transparent: bool) {
        self.state.borrow_mut().fill(now, node, line, excl, transparent);
    }

    fn dir_transition(
        &mut self,
        now: Cycle,
        line: LineAddr,
        from: &TracePerm,
        to: &TracePerm,
        requester: NodeId,
    ) {
        self.state.borrow_mut().dir_transition(now, line, from, to, requester);
    }

    fn intervention(
        &mut self,
        now: Cycle,
        line: LineAddr,
        owner: NodeId,
        requester: NodeId,
        _excl: bool,
    ) {
        self.state.borrow_mut().intervention(now, line, owner, requester);
    }

    fn invalidation(&mut self, now: Cycle, line: LineAddr, target: NodeId) {
        self.state.borrow_mut().invalidation(now, line, target);
    }

    fn si_hint(&mut self, now: Cycle, line: LineAddr, owner: NodeId) {
        self.state.borrow_mut().si_hint(now, line, owner);
    }

    fn si_action(&mut self, now: Cycle, node: NodeId, line: LineAddr, _invalidated: bool) {
        self.state.borrow_mut().si_action(now, node, line);
    }

    fn transparent_upgrade(&mut self, _now: Cycle, line: LineAddr, _from: NodeId) {
        let mut s = self.state.borrow_mut();
        s.counts.si_events += 1;
        s.transparent_lines.insert(line.0, ());
    }

    fn transparent_reply(&mut self, _now: Cycle, line: LineAddr, _from: NodeId) {
        let mut s = self.state.borrow_mut();
        s.counts.si_events += 1;
        s.transparent_lines.insert(line.0, ());
    }

    fn l2_evict(&mut self, now: Cycle, node: NodeId, line: LineAddr, dirty: bool, transparent: bool) {
        self.state.borrow_mut().l2_evict(now, node, line, dirty, transparent);
    }

    fn l2_invalidate(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.state.borrow_mut().l2_invalidate(now, node, line);
    }

    fn l2_downgrade(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.state.borrow_mut().l2_downgrade(now, node, line);
    }

    fn mshr_alloc(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.state.borrow_mut().mshr_alloc(now, node, line);
    }

    fn mshr_free(&mut self, now: Cycle, node: NodeId, line: LineAddr) {
        self.state.borrow_mut().mshr_free(now, node, line);
    }
}

/// The handle half: create with [`ProtocolChecker::new`], install the
/// returned tracer into a run, then call [`ProtocolChecker::finish`].
pub struct ProtocolChecker {
    state: Rc<RefCell<ProtoState>>,
}

impl ProtocolChecker {
    /// Creates a checker and the tracer to install into the run.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (ProtocolChecker, Box<dyn MemTracer>) {
        let state = Rc::new(RefCell::new(ProtoState::default()));
        let tracer = Box::new(CheckTracer { state: Rc::clone(&state) });
        (ProtocolChecker { state }, tracer)
    }

    /// Runs the quiescence checks and returns the report. Call only after
    /// the simulation has completed (the machine asserts quiescence on
    /// teardown).
    pub fn finish(self) -> CheckReport {
        let state = Rc::try_unwrap(self.state)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| rc.borrow().clone_for_report());
        state.finish()
    }
}

impl ProtoState {
    /// Fallback when the tracer is still alive at `finish` time (it never
    /// is in practice: the machine drops its tracer on teardown).
    fn clone_for_report(&self) -> ProtoState {
        ProtoState {
            dir: self.dir.clone(),
            copies: self.copies.clone(),
            transparent_lines: self.transparent_lines.clone(),
            mshrs: self.mshrs.clone(),
            violations: self.violations.clone(),
            suppressed: self.suppressed,
            counts: self.counts.clone(),
        }
    }
}

/// Runs `workload` under `spec` with the protocol checker attached.
/// The [`RunResult`] is bit-identical to an unchecked run.
pub fn run_checked(workload: &dyn Workload, spec: &RunSpec) -> (RunResult, CheckReport) {
    let (checker, tracer) = ProtocolChecker::new();
    let result = slipstream_core::run_with_tracer(workload, spec, tracer);
    (result, checker.finish())
}
