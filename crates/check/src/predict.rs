//! Cross-validation of the static analyzer against dynamic measurement.
//!
//! [`cross_validate`] runs one workload conventionally (single mode, the
//! serial engine) with a [`SharingObserver`] tracer attached, and checks
//! that
//!
//! * every relevant `MemStats` counter lies inside the [`TrafficBounds`]
//!   window the analyzer derived without simulating, and
//! * each layout region's *observed* sharing class (from the per-node
//!   access trace) equals the projection of its *predicted* class
//!   ([`SharingClass::observable`]).
//!
//! Single mode is the validation anchor because the analyzer's node model
//! (task `t` = node `t`, no A-stream, cold caches) is exact there; the
//! slipstream modes add recovery-dependent traffic the bounds do not
//! model. The harness runs over the full quick suite and the fuzz corpus
//! (a `fuzz` pipeline stage), so every generated program differentially
//! tests the analyzer too.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use slipstream_core::{run_with_tracer, ExecMode, RunSpec, Workload};
use slipstream_kernel::config::MachineConfig;
use slipstream_kernel::{CpuId, Cycle, LineAddr};
use slipstream_mem::{AccessKind, AccessOutcome, MemStats, MemTracer, StreamRole};

use crate::analysis::{analyze, AnalysisConfig, CostEstimate, ObservedClass, TrafficBounds};
use crate::{instantiate_workload, json_escape};

/// Shared state behind the [`SharingObserver`] tracer handle.
#[derive(Debug, Default)]
struct ObserverState {
    /// Nodes that accessed each line (line index = byte addr / line size).
    accessors: BTreeMap<u64, BTreeSet<u16>>,
    /// Nodes that wrote each line.
    writers: BTreeMap<u64, BTreeSet<u16>>,
}

/// Observation-only [`MemTracer`] recording which nodes touch and write
/// each cache line. Exact in single mode: the `access` hook fires for
/// every access, hits included, so the observed sets equal the footprint
/// sets the analyzer computes statically.
#[derive(Debug)]
pub struct SharingObserver {
    state: Rc<RefCell<ObserverState>>,
}

impl SharingObserver {
    fn new() -> (SharingObserver, Rc<RefCell<ObserverState>>) {
        let state = Rc::new(RefCell::new(ObserverState::default()));
        (SharingObserver { state: Rc::clone(&state) }, state)
    }
}

impl MemTracer for SharingObserver {
    fn access(
        &mut self,
        _now: Cycle,
        cpu: CpuId,
        _role: StreamRole,
        kind: AccessKind,
        line: LineAddr,
        _outcome: AccessOutcome,
    ) {
        let mut st = self.state.borrow_mut();
        let node = cpu.node().0;
        st.accessors.entry(line.0).or_default().insert(node);
        if kind == AccessKind::Write || kind == AccessKind::ExclPrefetch {
            st.writers.entry(line.0).or_default().insert(node);
        }
    }
}

/// One bound check: `lo <= measured <= hi`.
#[derive(Debug, Clone)]
pub struct BoundCheck {
    /// Stable check name (also the JSON key in fuzz reports).
    pub name: &'static str,
    /// Static lower bound.
    pub lo: u64,
    /// Static upper bound.
    pub hi: u64,
    /// The dynamic measurement.
    pub measured: u64,
    /// Whether the measurement lies inside the window.
    pub ok: bool,
}

impl BoundCheck {
    fn new(name: &'static str, lo: u64, hi: u64, measured: u64) -> BoundCheck {
        BoundCheck { name, lo, hi, measured, ok: lo <= measured && measured <= hi }
    }
}

/// One region's predicted-vs-observed sharing class.
#[derive(Debug, Clone)]
pub struct RegionDelta {
    /// Region name from the layout.
    pub name: String,
    /// The analyzer's class, by name (e.g. `"single-producer"`).
    pub predicted: &'static str,
    /// Its observable projection — what the trace *should* show.
    pub expected: ObservedClass,
    /// What the trace actually showed.
    pub observed: ObservedClass,
    /// `expected == observed`.
    pub ok: bool,
}

/// Full result of cross-validating one workload.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Workload name.
    pub workload: String,
    /// Task (= node) count of the validated run.
    pub ntasks: usize,
    /// The analyzer's traffic bounds.
    pub bounds: TrafficBounds,
    /// The analyzer's cost estimate (reported, not asserted — it is a
    /// heuristic, unlike the bounds).
    pub cost: CostEstimate,
    /// Measured end-to-end cycles (context for the cost estimate).
    pub exec_cycles: u64,
    /// Counter-containment checks, in a fixed order.
    pub checks: Vec<BoundCheck>,
    /// Per-region class comparisons, in layout order.
    pub regions: Vec<RegionDelta>,
    /// Number of `SP*` lints the analyzer emitted (context only).
    pub sp_lints: usize,
    /// Every check and every region comparison passed.
    pub ok: bool,
}

impl ValidationReport {
    /// First failure rendered as a one-line message, if any.
    pub fn first_failure(&self) -> Option<String> {
        if let Some(c) = self.checks.iter().find(|c| !c.ok) {
            return Some(format!(
                "{}: {} = {} outside static bounds [{}, {}]",
                self.workload, c.name, c.measured, c.lo, c.hi
            ));
        }
        self.regions.iter().find(|r| !r.ok).map(|r| {
            format!(
                "{}: region '{}' observed {} but analyzer predicted {} ({})",
                self.workload,
                r.name,
                r.observed.name(),
                r.expected.name(),
                r.predicted
            )
        })
    }

    /// Renders the report as one JSON object (hand-rolled, like the rest
    /// of the workspace). Field order is fixed; `checks` and `regions`
    /// keep their deterministic construction order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"workload\":\"{}\",\"ntasks\":{},\"ok\":{}",
            json_escape(&self.workload),
            self.ntasks,
            self.ok
        ));
        s.push_str(&format!(
            ",\"predicted_cycles\":{},\"exec_cycles\":{},\"sp_lints\":{}",
            self.cost.total_cycles, self.exec_cycles, self.sp_lints
        ));
        s.push_str(",\"checks\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"lo\":{},\"hi\":{},\"measured\":{},\"ok\":{}}}",
                c.name, c.lo, c.hi, c.measured, c.ok
            ));
        }
        s.push_str("],\"regions\":[");
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"predicted\":\"{}\",\"expected\":\"{}\",\
                 \"observed\":\"{}\",\"ok\":{}}}",
                json_escape(&r.name),
                r.predicted,
                r.expected.name(),
                r.observed.name(),
                r.ok
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Builds the counter-containment checks from bounds + measurements.
/// Public for tests; `cross_validate` is the normal entry point.
pub fn bound_checks(b: &TrafficBounds, m: &MemStats) -> Vec<BoundCheck> {
    vec![
        BoundCheck::new("accesses", b.accesses, b.accesses, m.data_accesses()),
        BoundCheck::new("read_txns", 0, b.loads, m.read_txns),
        BoundCheck::new("excl_txns", 0, b.stores, m.excl_txns),
        BoundCheck::new(
            "requests",
            b.first_touches,
            b.accesses,
            m.read_txns + m.excl_txns,
        ),
        BoundCheck::new(
            "classified",
            b.shared_first_touches,
            b.shared_accesses,
            m.classified_total(),
        ),
        BoundCheck::new("invalidations", 0, b.max_invalidations, m.invalidations_sent),
        BoundCheck::new("interventions", 0, b.max_interventions, m.interventions),
        BoundCheck::new("si_events", 0, 0, m.si_events()),
        // No A-stream exists in single mode: all of its machinery must
        // read exactly zero (a sharp cross-check on the mode plumbing).
        BoundCheck::new(
            "a_stream",
            0,
            0,
            m.a_read_txns + m.excl_prefetches + m.transparent_issued + m.class.a_total(),
        ),
    ]
}

/// Cross-validates one workload at `ntasks` tasks under an explicit
/// machine configuration: static analysis vs. an instrumented single-mode
/// serial run.
pub fn cross_validate_with(
    cfg: &MachineConfig,
    workload: &dyn Workload,
    ntasks: usize,
    acfg: &AnalysisConfig,
) -> ValidationReport {
    let set = instantiate_workload(workload, cfg.page_bytes, ntasks, false);
    let analysis = analyze(&set, acfg);

    let spec =
        RunSpec::new(ntasks as u16, ExecMode::Single).with_machine(cfg.clone());
    let (observer, state) = SharingObserver::new();
    let result = run_with_tracer(workload, &spec, Box::new(observer));
    let st = state.borrow();

    let checks = bound_checks(&analysis.bounds, &result.mem);

    let regions: Vec<RegionDelta> = analysis
        .regions
        .iter()
        .map(|rc| {
            let first = rc.base / acfg.line_bytes;
            let last = (rc.base + rc.bytes - 1) / acfg.line_bytes;
            let mut accessors: BTreeSet<u16> = BTreeSet::new();
            let mut writers: BTreeSet<u16> = BTreeSet::new();
            for (_, nodes) in st.accessors.range(first..=last) {
                accessors.extend(nodes);
            }
            for (_, nodes) in st.writers.range(first..=last) {
                writers.extend(nodes);
            }
            let observed = ObservedClass::from_counts(accessors.len(), writers.len());
            let expected = rc.class.observable();
            RegionDelta {
                name: rc.name.clone(),
                predicted: rc.class.name(),
                expected,
                observed,
                ok: expected == observed,
            }
        })
        .collect();

    let ok = checks.iter().all(|c| c.ok) && regions.iter().all(|r| r.ok);
    ValidationReport {
        workload: workload.name().to_string(),
        ntasks,
        bounds: analysis.bounds,
        cost: analysis.cost,
        exec_cycles: result.exec_cycles,
        checks,
        regions,
        sp_lints: analysis.diagnostics.len(),
        ok,
    }
}

/// Cross-validates with the machine configuration the runner would derive
/// (`MachineConfig::water` for small-L2 workloads, the default otherwise)
/// and the default [`AnalysisConfig`] at the machine's line size.
pub fn cross_validate(workload: &dyn Workload, ntasks: usize) -> ValidationReport {
    let nodes = ntasks.max(1) as u16;
    let cfg = if workload.small_l2() {
        MachineConfig::water(nodes)
    } else {
        MachineConfig::with_nodes(nodes)
    };
    let acfg = AnalysisConfig { line_bytes: cfg.l2.line_bytes, ..AnalysisConfig::default() };
    cross_validate_with(&cfg, workload, ntasks, &acfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_checks_flag_out_of_window_counters() {
        let b = TrafficBounds {
            accesses: 10,
            loads: 6,
            stores: 4,
            first_touches: 3,
            shared_first_touches: 2,
            shared_accesses: 8,
            max_invalidations: 1,
            max_interventions: 2,
        };
        // data_accesses == 10: the exact check passes.
        let mut m =
            MemStats { l1_hits: 10, read_txns: 2, excl_txns: 1, ..MemStats::default() };
        let checks = bound_checks(&b, &m);
        assert!(checks.iter().find(|c| c.name == "accesses").unwrap().ok);
        assert!(checks.iter().find(|c| c.name == "requests").unwrap().ok);
        m.read_txns = 7; // exceeds the load count
        let checks = bound_checks(&b, &m);
        assert!(!checks.iter().find(|c| c.name == "read_txns").unwrap().ok);
    }

    #[test]
    fn report_json_has_fixed_field_order() {
        let r = ValidationReport {
            workload: "demo".into(),
            ntasks: 2,
            bounds: TrafficBounds::default(),
            cost: CostEstimate::default(),
            exec_cycles: 123,
            checks: vec![BoundCheck::new("accesses", 1, 1, 1)],
            regions: vec![],
            sp_lints: 0,
            ok: true,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"workload\":\"demo\",\"ntasks\":2,\"ok\":true"));
        assert!(j.contains("\"checks\":[{\"name\":\"accesses\",\"lo\":1,\"hi\":1,"));
    }
}
