//! `check` — lint the workload suite and (optionally) run the dynamic
//! protocol invariant checker.
//!
//! ```text
//! check [--quick] [--bench NAME] [--tasks N,N,...] [--json]   static lint
//! check --selftest                                            verifier self-test
//! check --dynamic [--quick] [--bench NAME] [--nodes N]
//!       [--mode single|double|slipstream|slipstream+si] [--json]
//! check --explain CODE                                        rule catalogue
//! ```
//!
//! The static lint walks every workload's generated programs (conventional
//! and slipstream instantiations at each task count) through the
//! happens-before verifier. `--selftest` runs the seeded-mutation corpus
//! and fails unless every planted defect is caught. `--dynamic` runs real
//! simulations with the coherence invariant checker attached. `--explain`
//! prints the catalogue entry for one rule id — `SCxxx` (static verifier),
//! `SPxxx` (sharing analyzer), or `PCxxx` (protocol checker).
//!
//! Exit status: 0 clean, 1 findings (error-severity diagnostics, selftest
//! failures, or protocol violations), 2 usage error.

use std::process::ExitCode;

use slipstream_check::{has_errors, mutations, run_checked, ProtoRule, Rule, Severity};
use slipstream_core::{ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, Workload};
use slipstream_workloads::{by_name, paper_suite, quick_suite};

struct Cli {
    quick: bool,
    bench: Option<String>,
    tasks: Vec<usize>,
    json: bool,
    selftest: bool,
    dynamic: bool,
    explain: Option<String>,
    nodes: u16,
    mode: String,
}

impl Cli {
    fn parse() -> Result<Cli, String> {
        let mut cli = Cli {
            quick: false,
            bench: None,
            tasks: vec![2, 8],
            json: false,
            selftest: false,
            dynamic: false,
            explain: None,
            nodes: 2,
            mode: "slipstream+si".to_string(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--quick" => cli.quick = true,
                "--json" => cli.json = true,
                "--selftest" => cli.selftest = true,
                "--dynamic" => cli.dynamic = true,
                "--explain" => cli.explain = Some(value("--explain")?),
                "--bench" => cli.bench = Some(value("--bench")?),
                "--nodes" => {
                    cli.nodes = value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?;
                }
                "--mode" => cli.mode = value("--mode")?,
                "--tasks" => {
                    cli.tasks = value("--tasks")?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("--tasks: {e}")))
                        .collect::<Result<_, _>>()?;
                    if cli.tasks.is_empty() {
                        return Err("--tasks needs at least one count".to_string());
                    }
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; supported: --quick --bench NAME --tasks N,N \
                         --json --selftest --dynamic --explain CODE --nodes N --mode MODE"
                    ))
                }
            }
        }
        Ok(cli)
    }

    fn suite(&self) -> Result<Vec<Box<dyn Workload>>, String> {
        match &self.bench {
            Some(name) => by_name(name, self.quick)
                .map(|w| vec![w])
                .ok_or_else(|| format!("unknown benchmark `{name}`")),
            None => Ok(if self.quick { quick_suite() } else { paper_suite() }),
        }
    }
}

fn static_lint(cli: &Cli) -> Result<bool, String> {
    let mut errors = false;
    let mut total = 0usize;
    let mut configs = 0usize;
    for w in cli.suite()? {
        for &ntasks in &cli.tasks {
            for slipstream in [false, true] {
                let label = if slipstream { "slipstream" } else { "conventional" };
                let diags = slipstream_check::verify_workload(w.as_ref(), ntasks, slipstream);
                configs += 1;
                total += diags.len();
                let errs = diags.iter().filter(|d| d.severity == Severity::Error).count();
                if cli.json {
                    for d in &diags {
                        println!(
                            "{{\"bench\":\"{}\",\"ntasks\":{ntasks},\"config\":\"{label}\",\
                             \"diag\":{}}}",
                            w.name(),
                            d.to_json()
                        );
                    }
                } else {
                    for d in &diags {
                        println!("{} [ntasks={ntasks}, {label}] {d}", w.name());
                    }
                }
                if has_errors(&diags) {
                    errors = true;
                }
                if !cli.json {
                    let verdict = if errs > 0 {
                        format!("{errs} error(s)")
                    } else if diags.is_empty() {
                        "ok".to_string()
                    } else {
                        format!("ok ({} warning(s))", diags.len())
                    };
                    println!("{:<10} ntasks={ntasks:<2} {label:<12} {verdict}", w.name());
                }
            }
        }
    }
    if !cli.json {
        println!("checked {configs} workload configs: {total} diagnostic(s)");
    }
    Ok(!errors)
}

fn selftest(cli: &Cli) -> bool {
    let failures = mutations::selftest();
    let cases = mutations::mutation_cases().len();
    for f in &failures {
        eprintln!("selftest FAIL: {f}");
    }
    if !cli.json {
        println!(
            "selftest: {}/{} seeded defects detected",
            cases - failures.len(),
            cases
        );
    }
    failures.is_empty()
}

fn dynamic(cli: &Cli) -> Result<bool, String> {
    let (mode, slip) = match cli.mode.as_str() {
        "single" => (ExecMode::Single, SlipstreamConfig::default()),
        "double" => (ExecMode::Double, SlipstreamConfig::default()),
        "slipstream" => (
            ExecMode::Slipstream,
            SlipstreamConfig::prefetch_only(ArSyncMode::OneTokenGlobal),
        ),
        "slipstream+si" => (
            ExecMode::Slipstream,
            SlipstreamConfig::with_self_invalidation(ArSyncMode::OneTokenGlobal),
        ),
        other => return Err(format!("unknown --mode {other}")),
    };
    let mut clean = true;
    for w in cli.suite()? {
        let spec = RunSpec::new(cli.nodes, mode).with_slip(slip);
        let (result, report) = run_checked(w.as_ref(), &spec);
        if cli.json {
            for v in &report.violations {
                println!("{{\"bench\":\"{}\",\"violation\":{}}}", w.name(), v.to_json());
            }
            println!(
                "{{\"bench\":\"{}\",\"mode\":\"{}\",\"nodes\":{},\"exec_cycles\":{},\
                 \"violations\":{},\"suppressed\":{}}}",
                w.name(),
                cli.mode,
                cli.nodes,
                result.exec_cycles,
                report.violations.len(),
                report.suppressed
            );
        } else {
            for v in &report.violations {
                println!("{} {v}", w.name());
            }
            println!(
                "{:<10} {} nodes={} cycles={}: {}",
                w.name(),
                cli.mode,
                cli.nodes,
                result.exec_cycles,
                report.summary()
            );
        }
        if !report.ok() {
            clean = false;
        }
    }
    Ok(clean)
}

/// Prints the catalogue entry for one rule id (`SC*`/`SP*` from the
/// static passes, `PC*` from the protocol checker). The lookup is
/// case-insensitive; an unknown code is a usage error.
fn explain(cli: &Cli, code: &str) -> Result<bool, String> {
    let want = code.to_ascii_uppercase();
    let entry = Rule::ALL
        .iter()
        .find(|r| r.id() == want)
        .map(|r| (r.id(), r.name(), r.explain()))
        .or_else(|| {
            ProtoRule::ALL
                .iter()
                .find(|r| r.id() == want)
                .map(|r| (r.id(), r.name(), r.explain()))
        });
    match entry {
        Some((id, name, text)) => {
            if cli.json {
                println!(
                    "{{\"rule\":\"{id}\",\"name\":\"{name}\",\"explanation\":\"{}\"}}",
                    slipstream_check::json_escape(text)
                );
            } else {
                println!("{id} ({name})\n\n{text}");
            }
            Ok(true)
        }
        None => Err(format!("unknown rule code `{code}` (expected an SCxxx, SPxxx, or PCxxx id)")),
    }
}

fn main() -> ExitCode {
    let cli = match Cli::parse() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = if let Some(code) = &cli.explain {
        explain(&cli, code)
    } else if cli.selftest {
        Ok(selftest(&cli))
    } else if cli.dynamic {
        dynamic(&cli)
    } else {
        static_lint(&cli)
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("check: {e}");
            ExitCode::from(2)
        }
    }
}
