//! Static sharing-class and communication-bound analyzer.
//!
//! A schedule-independent abstract interpretation over the DSL: it walks
//! each task program's op stream once (no simulation), splits it into
//! barrier phases, and derives
//!
//! 1. a **sharing class** per layout region ([`SharingClass`]) from the
//!    per-task access footprints — private, read-only, single-producer,
//!    migratory, or write-shared;
//! 2. **bounds on coherence traffic** ([`TrafficBounds`]) — sound lower
//!    and upper bounds on the memory-system counters a conventional
//!    single-mode run can produce, plus a cycle-cost estimate
//!    ([`CostEstimate`]); and
//! 3. **performance lints** `SP001`..`SP006` ([`Rule::FalseSharing`] ..
//!    [`Rule::LoadImbalance`]), all `Warning` severity — a program can be
//!    perfectly synchronized (no `SC*` errors) and still share data in a
//!    way the paper's protocol handles badly.
//!
//! The analysis reasons about *tasks*; under the runner's single-mode
//! placement task `t` is node `t`, which is what licenses comparing the
//! static sets against per-node dynamic observations (`predict.rs`
//! cross-validates exactly that, over the quick suite and the fuzz
//! corpus). The analyzer is pure: it never constructs a simulator and
//! never changes `RunResult`.

use std::collections::{BTreeMap, BTreeSet};

use slipstream_prog::{Layout, Op, RegionKind, Space};

use crate::diag::{Diagnostic, Rule};
use crate::verify::TaskProgram;
use crate::TaskSet;

/// Knobs for the analyzer. `Default` matches the default machine.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Cache-line size; must match the machine the program will run on
    /// (every committed `MachineConfig` uses 64-byte lines).
    pub line_bytes: u64,
    /// `Some(p)` models a limited-pointer directory with `p` pointers
    /// (enables `SP005`); `None` is the default fully-mapped directory.
    pub limited_ptrs: Option<u32>,
    /// Static cost charged per memory access when estimating per-phase
    /// task cost (a round remote-miss figure; only ratios matter for
    /// `SP006` and the cost estimate is explicitly a heuristic).
    pub access_cycles: u64,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig { line_bytes: 64, limited_ptrs: None, access_cycles: 50 }
    }
}

/// The analyzer's sharing-class lattice, per layout region.
///
/// Mirrors the taxonomy the paper's Figure 7 discussion leans on: what
/// matters for slipstream is whether a region's lines stay put, migrate
/// owner-to-owner, or ping-pong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingClass {
    /// No task accesses the region.
    Unused,
    /// Exactly one task accesses the region (reads, writes, or both).
    Private,
    /// Two or more tasks access it; nobody writes.
    ReadOnly,
    /// Exactly one task writes; at least one other task reads
    /// (producer/consumer).
    SingleProducer,
    /// Two or more tasks write, every access lock-protected: the
    /// exclusive copy hops from owner to owner.
    Migratory,
    /// Two or more tasks write without a uniform locking discipline —
    /// write-shared, the false-sharing-prone class.
    WriteShared,
}

impl SharingClass {
    /// Short name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SharingClass::Unused => "unused",
            SharingClass::Private => "private",
            SharingClass::ReadOnly => "read-only",
            SharingClass::SingleProducer => "single-producer",
            SharingClass::Migratory => "migratory",
            SharingClass::WriteShared => "write-shared",
        }
    }

    /// Projects the class onto what a per-node dynamic observer can see.
    ///
    /// `Migratory` vs. `WriteShared` differ only in locking discipline,
    /// which a node-level access trace cannot distinguish; both project to
    /// [`ObservedClass::MultiWriter`]. The projection is exact in
    /// single mode (task `t` runs on node `t`), which is what the
    /// cross-validation harness asserts.
    pub fn observable(self) -> ObservedClass {
        match self {
            SharingClass::Unused => ObservedClass::Unused,
            SharingClass::Private => ObservedClass::SingleNode,
            SharingClass::ReadOnly => ObservedClass::ReadShared,
            SharingClass::SingleProducer => ObservedClass::SingleWriter,
            SharingClass::Migratory | SharingClass::WriteShared => ObservedClass::MultiWriter,
        }
    }
}

/// What a per-node access trace can observe about a region's sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedClass {
    /// No accesses.
    Unused,
    /// All accesses from one node.
    SingleNode,
    /// Multiple accessor nodes, no writer.
    ReadShared,
    /// Multiple accessor nodes, exactly one writer node.
    SingleWriter,
    /// Multiple writer nodes.
    MultiWriter,
}

impl ObservedClass {
    /// Short name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ObservedClass::Unused => "unused",
            ObservedClass::SingleNode => "single-node",
            ObservedClass::ReadShared => "read-shared",
            ObservedClass::SingleWriter => "single-writer",
            ObservedClass::MultiWriter => "multi-writer",
        }
    }

    /// Classifies from observed accessor/writer node counts (the same
    /// case split [`SharingClass`] uses over tasks).
    pub fn from_counts(accessors: usize, writers: usize) -> ObservedClass {
        match (accessors, writers) {
            (0, _) => ObservedClass::Unused,
            (1, _) => ObservedClass::SingleNode,
            (_, 0) => ObservedClass::ReadShared,
            (_, 1) => ObservedClass::SingleWriter,
            _ => ObservedClass::MultiWriter,
        }
    }
}

/// One region's predicted sharing behavior.
#[derive(Debug, Clone)]
pub struct RegionClass {
    /// Region name from the layout.
    pub name: String,
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
    /// Whether the region is coherence-visible (`Shared`/`SharedOwned`).
    pub shared: bool,
    /// Predicted sharing class.
    pub class: SharingClass,
    /// Distinct tasks that load from the region.
    pub reader_tasks: usize,
    /// Distinct tasks that store to the region.
    pub writer_tasks: usize,
    /// Total load ops into the region.
    pub loads: u64,
    /// Total store ops into the region.
    pub stores: u64,
}

/// Sound bounds on a conventional **single-mode, cold-cache** run's
/// memory-system counters, derived without simulating.
///
/// Soundness arguments (task `t` = node `t`, caches start empty):
///
/// * every access op resolves as exactly one of L1 hit / L2 hit / miss,
///   so [`MemStats::data_accesses`] equals `accesses` exactly;
/// * a node's **first** access to a line cannot hit (cold start, no
///   prefetching in single mode) and cannot merge (nothing in flight for
///   that line at that node), so it launches a read or exclusive
///   transaction: `read_txns + excl_txns >= first_touches`;
/// * each access op launches at most one transaction, so `read_txns <=
///   loads`, `excl_txns <= stores`, and their sum is at most `accesses`
///   (the migratory optimization can only *remove* upgrades);
/// * a classification record opens only for a shared-line transaction and
///   closes exactly once, so the classified total lies in
///   `[shared_first_touches, shared_accesses]`;
/// * an invalidation targets a current sharer, sharers are accessors, and
///   only exclusive requests invalidate: at most `accessors(L) - 1` per
///   store op to line `L` (all nodes under a limited-pointer overflow);
/// * an intervention requires another node to hold the line exclusively,
///   which in single mode requires a store to that line by some task, and
///   each request triggers at most one intervention;
/// * A-stream machinery is absent: `a_read_txns`, `excl_prefetches`,
///   `transparent_issued`, the classifier's A buckets, and (with SI off)
///   `si_invalidations`/`si_downgrades` are all exactly zero.
///
/// [`MemStats::data_accesses`]: slipstream_mem::MemStats::data_accesses
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficBounds {
    /// Exact number of data accesses (loads + stores, all spaces).
    pub accesses: u64,
    /// Total load ops — upper bound on `read_txns`.
    pub loads: u64,
    /// Total store ops — upper bound on `excl_txns`.
    pub stores: u64,
    /// Distinct `(task, line)` pairs accessed — lower bound on
    /// `read_txns + excl_txns`.
    pub first_touches: u64,
    /// Distinct `(task, shared line)` pairs — lower bound on the
    /// classified-request total.
    pub shared_first_touches: u64,
    /// Shared-space access ops — upper bound on the classified total.
    pub shared_accesses: u64,
    /// Upper bound on `invalidations_sent`.
    pub max_invalidations: u64,
    /// Upper bound on `interventions`.
    pub max_interventions: u64,
}

/// A pre-simulation cycle estimate (the ROADMAP item-1 server's cost
/// model). A *heuristic*, not a bound: per phase, the critical path is
/// the heaviest task (compute cycles plus [`AnalysisConfig::access_cycles`]
/// per access); phases sum because barriers serialize them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostEstimate {
    /// Sum over phases of the heaviest task's compute cycles.
    pub compute_cycles: u64,
    /// Sum over phases of the heaviest task's charged access cycles.
    pub access_cycles: u64,
    /// The two combined: the estimated critical path in cycles.
    pub total_cycles: u64,
}

/// Full analyzer output for one task set.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Number of tasks analyzed.
    pub ntasks: usize,
    /// Number of barrier phases (max over tasks; phase `p` of one task is
    /// concurrent only with phase `p` of the others).
    pub phases: usize,
    /// Per-region sharing classes, in layout order.
    pub regions: Vec<RegionClass>,
    /// Communication bounds for a single-mode run of this task set.
    pub bounds: TrafficBounds,
    /// Heuristic critical-path cost estimate.
    pub cost: CostEstimate,
    /// Performance lints `SP001`..`SP006` (always `Warning` severity).
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// The predicted class for the region containing `addr`, if any.
    pub fn class_of(&self, addr: u64) -> Option<&RegionClass> {
        self.regions.iter().find(|r| addr >= r.base && addr < r.base + r.bytes)
    }
}

/// Per-line footprint accumulated during the walk.
#[derive(Default)]
struct LineFoot {
    readers: BTreeSet<usize>,
    writers: BTreeSet<usize>,
    loads: u64,
    stores: u64,
    shared: bool,
    /// Distinct addresses written, per task (false-sharing evidence).
    written_addrs: BTreeSet<u64>,
    /// Phases in which each task loads from the line.
    read_phases: BTreeMap<usize, BTreeSet<usize>>,
    /// Phases in which any task stores to the line.
    write_phases: BTreeSet<usize>,
    /// Per lock: tasks that load and tasks that store the line while
    /// holding it (migratory-contention evidence).
    lock_readers: BTreeMap<u32, BTreeSet<usize>>,
    lock_writers: BTreeMap<u32, BTreeSet<usize>>,
}

/// Per-region footprint accumulated during the walk.
#[derive(Default)]
struct RegionFoot {
    readers: BTreeSet<usize>,
    writers: BTreeSet<usize>,
    loads: u64,
    stores: u64,
    /// Falsified as soon as any access happens outside every lock.
    all_locked: bool,
    /// Tasks reading / writing the region, per phase (SP002 evidence).
    phase_readers: BTreeMap<usize, BTreeSet<usize>>,
    phase_writers: BTreeMap<usize, BTreeSet<usize>>,
}

/// Analyzes an instantiated task set (conventional set, or the R-stream
/// side of a slipstream set — the A-stream shares the skeleton by SC012,
/// so its sharing classes are identical by construction).
pub fn analyze(set: &TaskSet, cfg: &AnalysisConfig) -> Analysis {
    analyze_tasks(&set.layout, &set.r, cfg)
}

/// Analyzes an explicit `(layout, tasks)` pair. See [`analyze`].
pub fn analyze_tasks(layout: &Layout, tasks: &[TaskProgram], cfg: &AnalysisConfig) -> Analysis {
    assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes > 0);

    let mut lines: BTreeMap<u64, LineFoot> = BTreeMap::new();
    // Regions keyed by base address; initialized so unused regions still
    // appear in the report (class `Unused`).
    let mut regions: BTreeMap<u64, RegionFoot> = BTreeMap::new();
    for r in layout.regions() {
        regions.insert(r.base.0, RegionFoot { all_locked: true, ..RegionFoot::default() });
    }
    // Per-task, per-phase static cost: (compute, accesses).
    let mut phase_cost: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    let mut nphases = 0usize;

    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut shared_accesses = 0u64;

    for tp in tasks {
        let task = tp.task;
        let mut held: BTreeSet<u32> = BTreeSet::new();
        tp.prog.walk_phases(|phase, _idx, op| {
            nphases = nphases.max(phase + 1);
            let cost = phase_cost.entry(phase).or_default();
            if cost.len() <= task {
                cost.resize(task + 1, (0, 0));
            }
            match *op {
                Op::Compute(n) => cost[task].0 += u64::from(n),
                Op::Lock(l) => {
                    held.insert(l.0);
                }
                Op::Unlock(l) => {
                    held.remove(&l.0);
                }
                Op::Load { addr, space } | Op::Store { addr, space } => {
                    cost[task].1 += 1;
                    let is_store = matches!(op, Op::Store { .. });
                    if is_store {
                        stores += 1;
                    } else {
                        loads += 1;
                    }
                    let shared = space == Space::Shared;
                    if shared {
                        shared_accesses += 1;
                    }

                    let line = addr.0 / cfg.line_bytes;
                    let lf = lines.entry(line).or_default();
                    lf.shared |= shared;
                    if is_store {
                        lf.stores += 1;
                        lf.writers.insert(task);
                        lf.written_addrs.insert(addr.0);
                        lf.write_phases.insert(phase);
                        for &l in &held {
                            lf.lock_writers.entry(l).or_default().insert(task);
                        }
                    } else {
                        lf.loads += 1;
                        lf.readers.insert(task);
                        lf.read_phases.entry(task).or_default().insert(phase);
                        for &l in &held {
                            lf.lock_readers.entry(l).or_default().insert(task);
                        }
                    }

                    if let Some(info) = layout.region_of(addr) {
                        let rf = regions.get_mut(&info.base.0).expect("region indexed");
                        rf.all_locked &= !held.is_empty();
                        if is_store {
                            rf.stores += 1;
                            rf.writers.insert(task);
                            rf.phase_writers.entry(phase).or_default().insert(task);
                        } else {
                            rf.loads += 1;
                            rf.readers.insert(task);
                            rf.phase_readers.entry(phase).or_default().insert(task);
                        }
                    }
                    // Unmapped addresses are SC011's problem; the analyzer
                    // just keeps the line-level footprint.
                }
                // Barriers advance the phase inside walk_phases; the
                // remaining ops neither access memory nor hold cost.
                _ => {}
            }
        });
    }

    let ntasks = tasks.len();
    let mut diagnostics = Vec::new();

    // --- Per-region classes + SP002 -------------------------------------
    let region_classes: Vec<RegionClass> = layout
        .regions()
        .iter()
        .map(|info| {
            let rf = &regions[&info.base.0];
            let accessors: BTreeSet<usize> = rf.readers.union(&rf.writers).copied().collect();
            let class = match (accessors.len(), rf.writers.len()) {
                (0, _) => SharingClass::Unused,
                (1, _) => SharingClass::Private,
                (_, 0) => SharingClass::ReadOnly,
                (_, 1) => SharingClass::SingleProducer,
                _ if rf.all_locked => SharingClass::Migratory,
                _ => SharingClass::WriteShared,
            };
            RegionClass {
                name: info.name.clone(),
                base: info.base.0,
                bytes: info.bytes,
                shared: matches!(info.kind, RegionKind::Shared | RegionKind::SharedOwned(_)),
                class,
                reader_tasks: rf.readers.len(),
                writer_tasks: rf.writers.len(),
                loads: rf.loads,
                stores: rf.stores,
            }
        })
        .collect();

    for (info, rc) in layout.regions().iter().zip(&region_classes) {
        if !rc.shared {
            continue;
        }
        let rf = &regions[&info.base.0];
        // SP002: read-mostly region written while others are reading it.
        if rc.stores >= 1 && rc.loads >= 4 * rc.stores && rc.reader_tasks >= 2 {
            let hot = rf.phase_writers.iter().find_map(|(phase, writers)| {
                let readers = rf.phase_readers.get(phase)?;
                writers.iter().find_map(|w| {
                    (readers.iter().filter(|r| *r != w).count() >= 2).then_some((*phase, *w))
                })
            });
            if let Some((phase, writer)) = hot {
                diagnostics.push(
                    Diagnostic::warning(
                        Rule::ReadMostlyWrite,
                        format!(
                            "region '{}' is read-mostly ({} loads vs {} stores, {} reader \
                             tasks) but task {writer} writes it in phase {phase} while >=2 \
                             other tasks read it: one store invalidates every cached copy",
                            rc.name, rc.loads, rc.stores, rc.reader_tasks
                        ),
                    )
                    .at_task(writer)
                    .at_addr(rc.base),
                );
            }
        }
    }

    // --- Per-line lints: SP001, SP003, SP004, SP005 ---------------------
    let mut first_touches = 0u64;
    let mut shared_first_touches = 0u64;
    let mut max_invalidations = 0u64;
    let mut max_interventions = 0u64;

    for (&line, lf) in &lines {
        let accessors: BTreeSet<usize> = lf.readers.union(&lf.writers).copied().collect();
        first_touches += accessors.len() as u64;
        if lf.shared {
            shared_first_touches += accessors.len() as u64;
            if !lf.writers.is_empty() {
                let overflow =
                    cfg.limited_ptrs.is_some_and(|p| accessors.len() > p as usize);
                let per_store =
                    if overflow { ntasks.saturating_sub(1) } else { accessors.len() - 1 };
                max_invalidations += lf.stores * per_store as u64;
                if accessors.len() >= 2 {
                    max_interventions += lf.loads + lf.stores;
                }
                // SP005: limited-pointer overflow on a written line.
                if overflow {
                    diagnostics.push(
                        Diagnostic::warning(
                            Rule::BroadcastOverflow,
                            format!(
                                "line {:#x}: {} accessor tasks exceed the {}-pointer \
                                 directory and the line is written: every invalidation \
                                 becomes a broadcast",
                                line * cfg.line_bytes,
                                accessors.len(),
                                cfg.limited_ptrs.unwrap_or(0),
                            ),
                        )
                        .at_addr(line * cfg.line_bytes),
                    );
                }
            }

            // SP001: >=2 writer tasks, >=2 distinct written words.
            if lf.writers.len() >= 2 && lf.written_addrs.len() >= 2 {
                let tasks: Vec<String> = lf.writers.iter().map(|t| t.to_string()).collect();
                diagnostics.push(
                    Diagnostic::warning(
                        Rule::FalseSharing,
                        format!(
                            "line {:#x}: tasks {} write {} distinct words of the same \
                             cache line (false sharing: the line ping-pongs)",
                            line * cfg.line_bytes,
                            tasks.join(","),
                            lf.written_addrs.len(),
                        ),
                    )
                    .at_addr(line * cfg.line_bytes),
                );
            }

            // SP003: >=3 tasks read-modify-write under one common lock.
            for (lock, writers) in &lf.lock_writers {
                let rmw: BTreeSet<usize> = lf
                    .lock_readers
                    .get(lock)
                    .map(|readers| writers.intersection(readers).copied().collect())
                    .unwrap_or_default();
                if rmw.len() >= 3 {
                    diagnostics.push(
                        Diagnostic::warning(
                            Rule::ContendedMigratory,
                            format!(
                                "line {:#x}: {} tasks read-modify-write it under lock \
                                 {lock} (contended migratory data: the exclusive copy \
                                 serializes behind the lock)",
                                line * cfg.line_bytes,
                                rmw.len(),
                            ),
                        )
                        .at_addr(line * cfg.line_bytes),
                    );
                    break; // one report per line
                }
            }

            // SP004: cross-phase re-read of a multi-task written line with
            // no intervening write — self-invalidation would misfire.
            if accessors.len() >= 2 && !lf.write_phases.is_empty() {
                'sp4: for (task, phases) in &lf.read_phases {
                    let ps: Vec<usize> = phases.iter().copied().collect();
                    for w in ps.windows(2) {
                        let (p, q) = (w[0], w[1]);
                        let written = lf.write_phases.range(p..=q).next().is_some();
                        if !written {
                            diagnostics.push(
                                Diagnostic::warning(
                                    Rule::SiHostile,
                                    format!(
                                        "line {:#x}: task {task} re-reads it in phase \
                                         {q} after phase {p} with no intervening write; \
                                         self-invalidation would discard a still-valid \
                                         copy at the phase boundary",
                                        line * cfg.line_bytes,
                                    ),
                                )
                                .at_task(*task)
                                .at_addr(line * cfg.line_bytes),
                            );
                            break 'sp4; // one report per line
                        }
                    }
                }
            }
        }
    }

    // --- SP006 + cost estimate ------------------------------------------
    let mut cost = CostEstimate::default();
    for (phase, costs) in &phase_cost {
        let cycles =
            |t: &(u64, u64)| t.0 + t.1 * cfg.access_cycles;
        let mut padded = costs.clone();
        padded.resize(ntasks.max(padded.len()), (0, 0));
        let (max_i, max_c) = padded
            .iter()
            .enumerate()
            .map(|(i, t)| (i, cycles(t)))
            .max_by_key(|&(_, c)| c)
            .unwrap_or((0, 0));
        let min_c = padded.iter().map(cycles).min().unwrap_or(0);
        if max_c >= 2 * min_c && max_c - min_c >= 10_000 {
            diagnostics.push(
                Diagnostic::warning(
                    Rule::LoadImbalance,
                    format!(
                        "phase {phase}: task {max_i} costs ~{max_c} cycles vs ~{min_c} \
                         for the lightest task; the barrier makes every task wait for \
                         the heaviest",
                    ),
                )
                .at_task(max_i),
            );
        }
        let heavy = &padded[max_i];
        cost.compute_cycles += heavy.0;
        cost.access_cycles += heavy.1 * cfg.access_cycles;
    }
    cost.total_cycles = cost.compute_cycles + cost.access_cycles;

    // Report rule-major, then address-major: deterministic regardless of
    // discovery order (BTreeMaps already make the walk deterministic, but
    // the contract is part of the JSON-output stability tests).
    diagnostics.sort_by_key(|d| (d.rule.id(), d.addr, d.task, d.op_index));

    Analysis {
        ntasks,
        phases: nphases,
        regions: region_classes,
        bounds: TrafficBounds {
            accesses: loads + stores,
            loads,
            stores,
            first_touches,
            shared_first_touches,
            shared_accesses,
            max_invalidations,
            max_interventions,
        },
        cost,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_kernel::Addr;
    use slipstream_prog::{BarrierId, LockId, ProgBuilder, Program};

    fn task(t: usize, prog: Program) -> TaskProgram {
        TaskProgram { task: t, inst: slipstream_prog::InstanceId(t as u32), prog }
    }

    fn rules(a: &Analysis) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = a.diagnostics.iter().map(|d| d.rule.id()).collect();
        v.dedup();
        v
    }

    /// Layout with one 4 KiB shared region; returns its base.
    fn shared_layout() -> (Layout, Addr) {
        let mut layout = Layout::new();
        let arr = layout.shared("arr", 4096);
        (layout, arr.base())
    }

    #[test]
    fn private_and_read_only_regions_classify_clean() {
        let (layout, base) = shared_layout();
        let mk = |t: usize| {
            let mut b = ProgBuilder::new();
            // Everyone reads word 0; nobody writes.
            b.gen(move |_| Op::load_shared(base));
            b.barrier(BarrierId(0));
            task(t, b.build("ro"))
        };
        let a = analyze_tasks(&layout, &[mk(0), mk(1)], &AnalysisConfig::default());
        assert_eq!(a.regions[0].class, SharingClass::ReadOnly);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.bounds.accesses, 2);
        assert_eq!(a.bounds.first_touches, 2);
        assert_eq!(a.bounds.max_invalidations, 0);
    }

    #[test]
    fn false_sharing_fires_sp001_and_classifies_write_shared() {
        let (layout, base) = shared_layout();
        let mk = |t: usize| {
            let mut b = ProgBuilder::new();
            // Task t writes word t of line 0: distinct words, same line.
            b.gen(move |_| Op::store_shared(Addr(base.0 + t as u64 * 8)));
            b.barrier(BarrierId(0));
            task(t, b.build("fs"))
        };
        let a = analyze_tasks(&layout, &[mk(0), mk(1)], &AnalysisConfig::default());
        assert_eq!(a.regions[0].class, SharingClass::WriteShared);
        assert_eq!(rules(&a), vec!["SP001"]);
        // Two stores, each able to invalidate the other's copy.
        assert_eq!(a.bounds.max_invalidations, 2);
    }

    #[test]
    fn lock_mediated_rmw_classifies_migratory_and_fires_sp003_at_three_tasks() {
        let (layout, base) = shared_layout();
        let mk = |t: usize| {
            let mut b = ProgBuilder::new();
            b.op(Op::Lock(LockId(0)));
            b.gen(move |_| Op::load_shared(base));
            b.gen(move |_| Op::store_shared(base));
            b.op(Op::Unlock(LockId(0)));
            task(t, b.build("mig"))
        };
        let two = analyze_tasks(&layout, &[mk(0), mk(1)], &AnalysisConfig::default());
        assert_eq!(two.regions[0].class, SharingClass::Migratory);
        assert!(two.diagnostics.iter().all(|d| d.rule != Rule::ContendedMigratory));
        let three =
            analyze_tasks(&layout, &[mk(0), mk(1), mk(2)], &AnalysisConfig::default());
        assert!(three.diagnostics.iter().any(|d| d.rule == Rule::ContendedMigratory));
    }

    #[test]
    fn cross_phase_reread_without_write_fires_sp004() {
        let (layout, base) = shared_layout();
        let writer = {
            let mut b = ProgBuilder::new();
            b.gen(move |_| Op::store_shared(base));
            b.barrier(BarrierId(0));
            b.barrier(BarrierId(0));
            b.barrier(BarrierId(0));
            task(0, b.build("w"))
        };
        let reader = {
            let mut b = ProgBuilder::new();
            b.barrier(BarrierId(0));
            b.gen(move |_| Op::load_shared(base));
            b.barrier(BarrierId(0));
            b.gen(move |_| Op::load_shared(base)); // re-read, no write since
            b.barrier(BarrierId(0));
            task(1, b.build("r"))
        };
        let a = analyze_tasks(&layout, &[writer, reader], &AnalysisConfig::default());
        assert!(a.diagnostics.iter().any(|d| d.rule == Rule::SiHostile));
    }

    #[test]
    fn limited_pointer_overflow_fires_sp005() {
        let (layout, base) = shared_layout();
        let mk = |t: usize, write: bool| {
            let mut b = ProgBuilder::new();
            if write {
                b.gen(move |_| Op::store_shared(base));
            } else {
                b.gen(move |_| Op::load_shared(base));
            }
            b.barrier(BarrierId(0));
            task(t, b.build("bc"))
        };
        let tasks = vec![mk(0, true), mk(1, false), mk(2, false), mk(3, false)];
        let full = analyze_tasks(&layout, &tasks, &AnalysisConfig::default());
        assert!(full.diagnostics.iter().all(|d| d.rule != Rule::BroadcastOverflow));
        let cfg = AnalysisConfig { limited_ptrs: Some(2), ..AnalysisConfig::default() };
        let lim = analyze_tasks(&layout, &tasks, &cfg);
        assert!(lim.diagnostics.iter().any(|d| d.rule == Rule::BroadcastOverflow));
        // Overflow widens the invalidation bound to all other nodes.
        assert_eq!(lim.bounds.max_invalidations, 3);
    }

    #[test]
    fn imbalanced_phase_fires_sp006() {
        let (layout, _base) = shared_layout();
        let heavy = {
            let mut b = ProgBuilder::new();
            b.compute(50_000);
            b.barrier(BarrierId(0));
            task(0, b.build("h"))
        };
        let light = {
            let mut b = ProgBuilder::new();
            b.compute(10);
            b.barrier(BarrierId(0));
            task(1, b.build("l"))
        };
        let a = analyze_tasks(&layout, &[heavy, light], &AnalysisConfig::default());
        assert!(a.diagnostics.iter().any(|d| d.rule == Rule::LoadImbalance));
        assert_eq!(a.cost.compute_cycles, 50_000);
    }

    #[test]
    fn all_sp_diagnostics_are_warnings() {
        let (layout, base) = shared_layout();
        let mk = |t: usize| {
            let mut b = ProgBuilder::new();
            b.gen(move |_| Op::store_shared(Addr(base.0 + t as u64 * 8)));
            b.compute(if t == 0 { 60_000 } else { 1 });
            b.barrier(BarrierId(0));
            task(t, b.build("mix"))
        };
        let a = analyze_tasks(&layout, &[mk(0), mk(1)], &AnalysisConfig::default());
        assert!(!a.diagnostics.is_empty());
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.severity == crate::diag::Severity::Warning));
    }
}
